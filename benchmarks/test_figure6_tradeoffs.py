"""Figure 6: copy-reduction / workload-balance trade-off of VC versus OB, RHOP and OP.

The paper's reading of Figure 6:

* against OB and RHOP, VC's speedups come mainly from generating fewer copy
  µops (panels a.1 / a.2), even when its workload balance is no better;
* against OP, VC tends to have the balance advantage while OP keeps copies
  lower (panel a.3 / b.3), which is why OP stays slightly ahead overall.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figure6 import FIGURE6_COMPARISONS, run_figure6
from repro.experiments.report import format_key_values


def test_figure6_copy_and_balance_tradeoff(benchmark, two_cluster_settings, bench_benchmarks):
    """Regenerate the Figure 6 scatter data and its per-panel summaries."""

    def run():
        return run_figure6(two_cluster_settings, benchmarks=bench_benchmarks)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    summaries = {comparison: result.summary(comparison) for comparison in FIGURE6_COMPARISONS}
    # VC speeds up over both software-only schemes on average.
    assert summaries["OB"]["mean_speedup"] > 0.0
    assert summaries["RHOP"]["mean_speedup"] > 0.0
    # Against OB, the win comes with a copy reduction for most traces.
    assert summaries["OB"]["fraction_with_copy_reduction"] >= 0.5
    # Against OP the hybrid scheme is close (mean gap within a few percent).
    assert summaries["OP"]["mean_speedup"] > -6.0

    benchmark.extra_info["figure6_summaries"] = summaries
    print()
    for comparison in FIGURE6_COMPARISONS:
        print(
            format_key_values(
                summaries[comparison], title=f"Figure 6 -- VC vs {comparison} (per-trace scatter summary)"
            )
        )
    # Emit the raw scatter points (speedup, copy reduction, balance improvement)
    # so the series of every panel can be re-plotted from the JSON output.
    benchmark.extra_info["figure6_points"] = [
        {
            "trace": point.trace,
            "comparison": point.comparison,
            "speedup_percent": round(point.speedup_percent, 3),
            "copy_reduction_percent": round(point.copy_reduction_percent, 3),
            "balance_improvement_percent": round(point.balance_improvement_percent, 3),
        }
        for point in result.points
    ]


def test_figure6_correlation_between_copies_and_speedup(benchmark, two_cluster_settings):
    """Check that copy reduction correlates with speedup against software-only steering.

    This is the causal claim of Section 5.3 ("This improvement is due to the
    higher reduction in the number of copy instructions"); a small dedicated
    trace set keeps this benchmark fast enough to run at higher statistical
    quality than the full figure.
    """
    subset = ["164.gzip-1", "176.gcc-1", "181.mcf", "178.galgel", "188.ammp"]

    def run():
        return run_figure6(two_cluster_settings, benchmarks=subset)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    points = result.for_comparison("OB") + result.for_comparison("RHOP")
    speedups = np.array([p.speedup_percent for p in points])
    copy_reductions = np.array([p.copy_reduction_percent for p in points])
    # The relationship only needs to be positive in aggregate: traces that cut
    # more copies should not systematically lose performance.
    gained = speedups[copy_reductions > 0]
    benchmark.extra_info["mean_speedup_when_copies_reduced"] = float(np.mean(gained)) if len(gained) else 0.0
    if len(gained):
        assert float(np.mean(gained)) > -1.0
