"""Shared configuration of the benchmark harness.

Every table and figure of the paper has a corresponding benchmark module in
this directory.  Because the full SPEC CPU2000 sweep (40 traces x 5
configurations x multiple phases) takes a while in pure Python, the harness
runs a representative subset by default and scales up through environment
variables:

``REPRO_BENCH_FULL=1``
    Run the complete trace list (all 26 integer + 14 floating-point traces).
``REPRO_BENCH_SCALE=<float>``
    Multiply the default trace length (2 500 µops per simulation point).
``REPRO_BENCH_PHASES=<int>``
    Number of PinPoints phases per benchmark (default 1).

The reproduced rows are attached to each benchmark's ``extra_info`` so they
appear in ``pytest-benchmark``'s JSON output, and are also printed so that
``pytest benchmarks/ --benchmark-only -s`` shows the same tables the paper
reports.  EXPERIMENTS.md records a full-scale run.
"""

from __future__ import annotations

import os

import pytest

from repro.cluster.config import ClusterConfig
from repro.experiments.runner import ExperimentSettings
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec2000 import all_trace_names, profile_for

#: Default benchmark subset: a spread of regular / branchy / memory-bound
#: integer traces and low- / high-ILP floating-point traces.
DEFAULT_SUBSET = [
    "164.gzip-1",
    "176.gcc-1",
    "181.mcf",
    "186.crafty",
    "197.parser",
    "255.vortex-1",
    "178.galgel",
    "171.swim",
    "188.ammp",
    "200.sixtrack",
]


def resolve_bench_scale() -> float:
    """Trace-length multiplier from ``REPRO_BENCH_SCALE``."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def resolve_bench_phases() -> int:
    """Phases per benchmark from ``REPRO_BENCH_PHASES``."""
    return int(os.environ.get("REPRO_BENCH_PHASES", "1"))


def resolve_bench_full() -> bool:
    """Whether ``REPRO_BENCH_FULL=1`` asks for the full trace list."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def bench_trace_length() -> int:
    """Dynamic µops per simulation point."""
    return max(500, int(2500 * resolve_bench_scale()))


def benchmark_names() -> list[str]:
    """The trace list to evaluate (subset by default, full with REPRO_BENCH_FULL=1)."""
    if resolve_bench_full():
        return all_trace_names("all")
    return list(DEFAULT_SUBSET)


@pytest.fixture(scope="session")
def two_cluster_settings() -> ExperimentSettings:
    """Settings of the paper's base machine (2 clusters, 2 virtual clusters)."""
    return ExperimentSettings(
        num_clusters=2,
        num_virtual_clusters=2,
        trace_length=bench_trace_length(),
        max_phases=resolve_bench_phases(),
    )


@pytest.fixture(scope="session")
def four_cluster_settings() -> ExperimentSettings:
    """Settings of the scalability machine (4 clusters)."""
    return ExperimentSettings(
        num_clusters=4,
        num_virtual_clusters=4,
        trace_length=bench_trace_length(),
        max_phases=resolve_bench_phases(),
    )


@pytest.fixture(scope="session")
def bench_benchmarks() -> list[str]:
    """Trace names evaluated by the figure benchmarks."""
    return benchmark_names()


# -- substrate fixtures shared by the micro-benchmarks ---------------------------
#: Dynamic µops per substrate micro-benchmark trace.
SUBSTRATE_TRACE_LENGTH = 4000


@pytest.fixture(scope="session")
def substrate_trace_length() -> int:
    """Dynamic µops per substrate micro-benchmark trace."""
    return SUBSTRATE_TRACE_LENGTH


@pytest.fixture(scope="session")
def substrate_config() -> ClusterConfig:
    """The 2-cluster Table 2 machine used by the substrate micro-benchmarks."""
    return ClusterConfig(num_clusters=2)


@pytest.fixture(scope="session")
def gzip_trace():
    """Shared ``(program, trace)`` of 164.gzip-1 phase 0 at the substrate length.

    Session-scoped so the simulator-throughput benchmarks measure simulation
    only, not repeated trace synthesis.  Compile-time passes may (re)annotate
    the program freely: annotations never change the µop stream, and every
    policy benchmark annotates or ignores them explicitly.
    """
    generator = WorkloadGenerator(profile_for("164.gzip-1"))
    return generator.generate_trace(SUBSTRATE_TRACE_LENGTH, phase=0)


@pytest.fixture(scope="session")
def gzip_compiled_trace(gzip_trace):
    """The compiled (structure-of-arrays) form of :func:`gzip_trace`.

    Compiled once per session: the simulator-throughput benchmarks measure
    the kernel, not trace compilation (which real runs pay once per phase and
    then reuse from the artifact store).  Benchmarks that change the
    program's annotations must refresh them with ``annotate_from`` before
    running -- the compiled trace snapshots annotations.
    """
    from repro.uops.compiled import compile_trace

    _, trace = gzip_trace
    return compile_trace(trace)


@pytest.fixture(scope="session")
def galgel_program():
    """Shared static program of 178.galgel phase 0 (partitioner benchmarks)."""
    return WorkloadGenerator(profile_for("178.galgel")).generate_program(0)
