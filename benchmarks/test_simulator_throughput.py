"""Micro-benchmarks of the substrate itself (not a paper figure).

These time the main building blocks -- simulator throughput, trace
generation, the compile-time passes -- so performance regressions in the
substrate are visible independently of the figure-level benchmarks.
"""

from __future__ import annotations

from repro.cluster.config import ClusterConfig
from repro.cluster.processor import ClusteredProcessor
from repro.partition.rhop_partitioner import RhopPartitioner
from repro.partition.vc_partitioner import VirtualClusterPartitioner
from repro.steering.occupancy import OccupancyAwareSteering
from repro.steering.virtual_cluster import VirtualClusterSteering
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec2000 import profile_for

TRACE_LENGTH = 4000


def _trace(benchmark_name="164.gzip-1"):
    generator = WorkloadGenerator(profile_for(benchmark_name))
    return generator.generate_trace(TRACE_LENGTH, phase=0)


def test_simulator_throughput_op(benchmark):
    """µop throughput of the cycle simulator under the OP policy."""
    _, trace = _trace()
    config = ClusterConfig(num_clusters=2)

    def run():
        return ClusteredProcessor(config, OccupancyAwareSteering()).run(trace)

    metrics = benchmark(run)
    benchmark.extra_info["uops_per_run"] = len(trace)
    benchmark.extra_info["ipc"] = round(metrics.ipc, 3)
    assert metrics.committed_uops == len(trace)


def test_simulator_throughput_vc(benchmark):
    """µop throughput under the hybrid VC policy (annotated program)."""
    program, trace = _trace()
    VirtualClusterPartitioner(2).annotate_program(program)
    config = ClusterConfig(num_clusters=2)

    def run():
        return ClusteredProcessor(config, VirtualClusterSteering(2)).run(trace)

    metrics = benchmark(run)
    benchmark.extra_info["uops_per_run"] = len(trace)
    assert metrics.committed_uops == len(trace)


def test_trace_generation_throughput(benchmark):
    """Cost of synthesising a 4 000-µop trace from a SPEC profile."""
    generator = WorkloadGenerator(profile_for("176.gcc-1"))

    def run():
        return generator.generate_trace(TRACE_LENGTH, phase=0)

    program, trace = benchmark(run)
    assert len(trace) >= TRACE_LENGTH


def test_vc_partitioner_throughput(benchmark):
    """Cost of the Figure 2 compile-time pass over a whole program."""
    program = WorkloadGenerator(profile_for("178.galgel")).generate_program(0)

    def run():
        return VirtualClusterPartitioner(2).annotate_program(program)

    report = benchmark(run)
    assert report.num_instructions == program.num_instructions


def test_rhop_partitioner_throughput(benchmark):
    """Cost of the RHOP multilevel partitioning pass over a whole program."""
    program = WorkloadGenerator(profile_for("178.galgel")).generate_program(0)

    def run():
        return RhopPartitioner(2).annotate_program(program)

    report = benchmark(run)
    assert report.num_instructions == program.num_instructions
