"""Micro-benchmarks of the substrate itself (not a paper figure).

These time the main building blocks -- simulator throughput, trace
generation/compilation, the compile-time passes, the trace artifact store
and the parallel experiment engine -- so performance regressions in the
substrate are visible independently of the figure-level benchmarks.  Traces,
programs and the machine configuration come from shared session fixtures in
``conftest.py`` (one synthesis, many measurements).

The simulator-throughput benchmarks drive the production path: a
pre-compiled :class:`~repro.uops.compiled.CompiledTrace` (what the engine
loads from the artifact store) through the default (vectorized) kernel.
The ``*_interpreter`` variants pin the µop-object interpreter kernel on the
same trace -- the wall-clock ratio of the two is the kernel-speedup
headline that ``scripts/check_bench_regression.py`` guards.  The
``*_callback`` variants disable the compiled steering tier
(``fused_steering=False``), so the default-vs-callback ratio is the
fused-dispatch headline; the ``*_jit`` variants pin the ``vectorized-jit``
kernel and only run where numba is installed (the jit-vs-callback headline
is skipped-with-note otherwise).  The ``*_uop_objects`` variant keeps the
µop-object entry point timed as well, so the cost of compiling on entry
stays visible.  Every simulator benchmark records ``uops_per_second`` in
``extra_info`` -- the number the DESIGN.md / README throughput claims refer
to, tracked across commits by the CI benchmark job's ``--benchmark-json``
artifact.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.cluster import jitloop
from repro.cluster.processor import ClusteredProcessor
from repro.engine.artifacts import TraceArtifactStore
from repro.experiments.configs import TABLE3_CONFIGURATIONS
from repro.experiments.runner import ExperimentRunner, ExperimentSettings
from repro.partition.rhop_partitioner import RhopPartitioner
from repro.partition.vc_partitioner import VirtualClusterPartitioner
from repro.steering.occupancy import OccupancyAwareSteering
from repro.steering.virtual_cluster import VirtualClusterSteering
from repro.uops.compiled import compile_trace
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec2000 import profile_for


def _record_throughput(benchmark, metrics, num_uops: int) -> None:
    benchmark.extra_info["uops_per_run"] = num_uops
    benchmark.extra_info["ipc"] = round(metrics.ipc, 3)
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["uops_per_second"] = round(num_uops / mean) if mean > 0 else 0


def test_simulator_throughput_op(benchmark, gzip_trace, gzip_compiled_trace, substrate_config):
    """µop throughput of the compiled kernel under the OP policy."""
    program, _ = gzip_trace
    program.clear_annotations()
    gzip_compiled_trace.annotate_from(program)

    def run():
        return ClusteredProcessor(substrate_config, OccupancyAwareSteering()).run(
            gzip_compiled_trace
        )

    metrics = benchmark(run)
    _record_throughput(benchmark, metrics, len(gzip_compiled_trace))
    assert metrics.committed_uops == len(gzip_compiled_trace)


def test_simulator_throughput_vc(benchmark, gzip_trace, gzip_compiled_trace, substrate_config):
    """µop throughput of the compiled kernel under the hybrid VC policy."""
    program, _ = gzip_trace
    VirtualClusterPartitioner(2).annotate_program(program)
    gzip_compiled_trace.annotate_from(program)

    def run():
        return ClusteredProcessor(substrate_config, VirtualClusterSteering(2)).run(
            gzip_compiled_trace
        )

    metrics = benchmark(run)
    _record_throughput(benchmark, metrics, len(gzip_compiled_trace))
    assert metrics.committed_uops == len(gzip_compiled_trace)


def test_simulator_throughput_op_callback(
    benchmark, gzip_trace, gzip_compiled_trace, substrate_config
):
    """The vectorized kernel with the compiled steering tier disabled.

    Same workload as ``test_simulator_throughput_op`` but with
    ``fused_steering=False``, so the OP policy takes the per-µop callback
    path; the ratio of the two is the fused-dispatch speedup headline.
    """
    program, _ = gzip_trace
    program.clear_annotations()
    gzip_compiled_trace.annotate_from(program)

    def run():
        processor = ClusteredProcessor(substrate_config, OccupancyAwareSteering())
        processor.fused_steering = False
        return processor.run(gzip_compiled_trace)

    metrics = benchmark(run)
    _record_throughput(benchmark, metrics, len(gzip_compiled_trace))
    assert metrics.committed_uops == len(gzip_compiled_trace)


def test_simulator_throughput_vc_callback(
    benchmark, gzip_trace, gzip_compiled_trace, substrate_config
):
    """The vectorized kernel, callback path, under the hybrid VC policy."""
    program, _ = gzip_trace
    VirtualClusterPartitioner(2).annotate_program(program)
    gzip_compiled_trace.annotate_from(program)

    def run():
        processor = ClusteredProcessor(substrate_config, VirtualClusterSteering(2))
        processor.fused_steering = False
        return processor.run(gzip_compiled_trace)

    metrics = benchmark(run)
    _record_throughput(benchmark, metrics, len(gzip_compiled_trace))
    assert metrics.committed_uops == len(gzip_compiled_trace)


@pytest.mark.skipif(
    not jitloop.JIT_ENABLED, reason="numba not installed: no jitted inner loop"
)
def test_simulator_throughput_op_jit(
    benchmark, gzip_trace, gzip_compiled_trace, substrate_config
):
    """The numba-jitted inner loop under the OP policy.

    Only collected where numba is installed; the ratio to the ``_callback``
    variant is the jit speedup headline (skipped-with-note when absent).
    The first ``run()`` call pays the jit compilation; pytest-benchmark's
    calibration rounds absorb it before timing starts.
    """
    program, _ = gzip_trace
    program.clear_annotations()
    gzip_compiled_trace.annotate_from(program)

    def run():
        return ClusteredProcessor(
            substrate_config, OccupancyAwareSteering(), kernel="vectorized-jit"
        ).run(gzip_compiled_trace)

    metrics = benchmark(run)
    _record_throughput(benchmark, metrics, len(gzip_compiled_trace))
    assert metrics.committed_uops == len(gzip_compiled_trace)


@pytest.mark.skipif(
    not jitloop.JIT_ENABLED, reason="numba not installed: no jitted inner loop"
)
def test_simulator_throughput_vc_jit(
    benchmark, gzip_trace, gzip_compiled_trace, substrate_config
):
    """The numba-jitted inner loop under the hybrid VC policy."""
    program, _ = gzip_trace
    VirtualClusterPartitioner(2).annotate_program(program)
    gzip_compiled_trace.annotate_from(program)

    def run():
        return ClusteredProcessor(
            substrate_config, VirtualClusterSteering(2), kernel="vectorized-jit"
        ).run(gzip_compiled_trace)

    metrics = benchmark(run)
    _record_throughput(benchmark, metrics, len(gzip_compiled_trace))
    assert metrics.committed_uops == len(gzip_compiled_trace)


def test_simulator_throughput_op_interpreter(
    benchmark, gzip_trace, gzip_compiled_trace, substrate_config
):
    """The interpreter (golden-reference) kernel under the OP policy.

    Identical workload and metrics to ``test_simulator_throughput_op``; the
    wall-clock ratio of the two benchmarks is the vectorized-kernel speedup
    headline enforced by ``scripts/check_bench_regression.py``.
    """
    program, _ = gzip_trace
    program.clear_annotations()
    gzip_compiled_trace.annotate_from(program)

    def run():
        return ClusteredProcessor(
            substrate_config, OccupancyAwareSteering(), kernel="interpreter"
        ).run(gzip_compiled_trace)

    metrics = benchmark(run)
    _record_throughput(benchmark, metrics, len(gzip_compiled_trace))
    assert metrics.committed_uops == len(gzip_compiled_trace)


def test_simulator_throughput_vc_interpreter(
    benchmark, gzip_trace, gzip_compiled_trace, substrate_config
):
    """The interpreter (golden-reference) kernel under the hybrid VC policy."""
    program, _ = gzip_trace
    VirtualClusterPartitioner(2).annotate_program(program)
    gzip_compiled_trace.annotate_from(program)

    def run():
        return ClusteredProcessor(
            substrate_config, VirtualClusterSteering(2), kernel="interpreter"
        ).run(gzip_compiled_trace)

    metrics = benchmark(run)
    _record_throughput(benchmark, metrics, len(gzip_compiled_trace))
    assert metrics.committed_uops == len(gzip_compiled_trace)


def test_simulator_throughput_op_uop_objects(benchmark, gzip_trace, substrate_config):
    """The µop-object entry point: compile-on-entry plus the kernel.

    This is what ad-hoc callers of ``simulate_trace(list, ...)`` pay; the gap
    to ``test_simulator_throughput_op`` is the per-run trace compilation that
    the engine amortises through the artifact store.
    """
    program, trace = gzip_trace
    program.clear_annotations()

    def run():
        return ClusteredProcessor(substrate_config, OccupancyAwareSteering()).run(trace)

    metrics = benchmark(run)
    _record_throughput(benchmark, metrics, len(trace))
    assert metrics.committed_uops == len(trace)


def test_trace_generation_throughput(benchmark, substrate_trace_length):
    """Cost of synthesising a 4 000-µop trace from a SPEC profile."""
    generator = WorkloadGenerator(profile_for("176.gcc-1"))

    def run():
        return generator.generate_trace(substrate_trace_length, phase=0)

    program, trace = benchmark(run)
    assert len(trace) >= substrate_trace_length


def test_compiled_trace_generation_throughput(benchmark, substrate_trace_length):
    """Direct structure-of-arrays emission (no per-µop objects)."""
    generator = WorkloadGenerator(profile_for("176.gcc-1"))

    def run():
        return generator.generate_compiled_trace(substrate_trace_length, phase=0)

    program, compiled = benchmark(run)
    assert len(compiled) >= substrate_trace_length


def test_trace_artifact_load_throughput(benchmark, tmp_path_factory):
    """Loading a stored trace artifact versus regenerating the trace.

    The ratio to ``test_trace_generation_throughput`` is the speedup workers
    see on every warm phase; ``generation_seconds`` is recorded alongside.
    """
    generator = WorkloadGenerator(profile_for("176.gcc-1"))
    start = time.perf_counter()
    program, compiled = generator.generate_compiled_trace(4000, phase=0)
    generation_seconds = time.perf_counter() - start
    store = TraceArtifactStore(tmp_path_factory.mktemp("trace-artifacts"))
    store.put("bench" * 12 + "abcd", program, compiled)

    def run():
        return store.get("bench" * 12 + "abcd")

    loaded = benchmark(run)
    assert loaded is not None and loaded[1].equals(compiled)
    benchmark.extra_info["generation_seconds"] = round(generation_seconds, 4)
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["speedup_vs_generation"] = (
        round(generation_seconds / mean, 1) if mean > 0 else 0.0
    )


def test_trace_compilation_throughput(benchmark, gzip_trace):
    """Cost of compiling an existing µop-object list to the SoA form."""
    _, trace = gzip_trace

    def run():
        return compile_trace(trace)

    compiled = benchmark(run)
    assert len(compiled) == len(trace)


def test_vc_partitioner_throughput(benchmark, galgel_program):
    """Cost of the Figure 2 compile-time pass over a whole program."""

    def run():
        return VirtualClusterPartitioner(2).annotate_program(galgel_program)

    report = benchmark(run)
    assert report.num_instructions == galgel_program.num_instructions


def test_rhop_partitioner_throughput(benchmark, galgel_program):
    """Cost of the RHOP multilevel partitioning pass over a whole program."""

    def run():
        return RhopPartitioner(2).annotate_program(galgel_program)

    report = benchmark(run)
    assert report.num_instructions == galgel_program.num_instructions


def test_engine_parallel_speedup(benchmark):
    """Engine throughput: the same job matrix serial versus process-parallel.

    Benchmarks the parallel path (``jobs=cpu_count``) and records the
    measured serial (``jobs=1``) wall time plus the resulting speedup in
    ``extra_info``, so parallel scaling is tracked in BENCH output across
    machines.  On single-core runners the speedup naturally hovers at or
    below 1 (pool overhead); the number is still worth recording.
    """
    settings = ExperimentSettings(
        num_clusters=2, num_virtual_clusters=2, trace_length=1200, max_phases=1
    )
    benchmarks = ["164.gzip-1", "176.gcc-1", "178.galgel", "171.swim"]
    configurations = [TABLE3_CONFIGURATIONS["OP"], TABLE3_CONFIGURATIONS["VC"]]
    workers = os.cpu_count() or 1

    # Untimed warm-up: populates the parent-process trace memo so the serial
    # baseline is not charged for cold trace generation.  Under the Linux
    # ``fork`` start method workers inherit the warm memo, making the
    # comparison symmetric; under ``spawn`` workers regenerate traces cold,
    # and that cost stays in the parallel number because real parallel runs
    # pay it too.  (Trace artifacts are disabled so this benchmark keeps
    # measuring raw engine scaling; the artifact benchmark above covers the
    # load-instead-of-regenerate path.)
    ExperimentRunner(settings, jobs=1, trace_dir=None).run_suite(benchmarks, configurations)

    start = time.perf_counter()
    serial = ExperimentRunner(settings, jobs=1, trace_dir=None).run_suite(
        benchmarks, configurations
    )
    serial_seconds = time.perf_counter() - start

    def run_parallel():
        return ExperimentRunner(settings, jobs=workers, trace_dir=None).run_suite(
            benchmarks, configurations
        )

    parallel = benchmark.pedantic(run_parallel, rounds=1, iterations=1)
    # Parallel results must match the serial run bit-for-bit.
    for name in benchmarks:
        for configuration in ("OP", "VC"):
            assert (
                serial[name][configuration].cycles == parallel[name][configuration].cycles
            )

    parallel_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["jobs"] = workers
    benchmark.extra_info["num_simulations"] = len(benchmarks) * len(configurations)
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["speedup_vs_serial"] = (
        round(serial_seconds / parallel_seconds, 2) if parallel_seconds > 0 else 0.0
    )
