"""Micro-benchmarks of the substrate itself (not a paper figure).

These time the main building blocks -- simulator throughput, trace
generation, the compile-time passes and the parallel experiment engine -- so
performance regressions in the substrate are visible independently of the
figure-level benchmarks.  Traces, programs and the machine configuration
come from shared session fixtures in ``conftest.py`` (one synthesis, many
measurements).
"""

from __future__ import annotations

import os
import time

from repro.cluster.processor import ClusteredProcessor
from repro.experiments.configs import TABLE3_CONFIGURATIONS
from repro.experiments.runner import ExperimentRunner, ExperimentSettings
from repro.partition.rhop_partitioner import RhopPartitioner
from repro.partition.vc_partitioner import VirtualClusterPartitioner
from repro.steering.occupancy import OccupancyAwareSteering
from repro.steering.virtual_cluster import VirtualClusterSteering
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec2000 import profile_for


def test_simulator_throughput_op(benchmark, gzip_trace, substrate_config):
    """µop throughput of the cycle simulator under the OP policy."""
    program, trace = gzip_trace
    program.clear_annotations()

    def run():
        return ClusteredProcessor(substrate_config, OccupancyAwareSteering()).run(trace)

    metrics = benchmark(run)
    benchmark.extra_info["uops_per_run"] = len(trace)
    benchmark.extra_info["ipc"] = round(metrics.ipc, 3)
    assert metrics.committed_uops == len(trace)


def test_simulator_throughput_vc(benchmark, gzip_trace, substrate_config):
    """µop throughput under the hybrid VC policy (annotated program)."""
    program, trace = gzip_trace
    VirtualClusterPartitioner(2).annotate_program(program)

    def run():
        return ClusteredProcessor(substrate_config, VirtualClusterSteering(2)).run(trace)

    metrics = benchmark(run)
    benchmark.extra_info["uops_per_run"] = len(trace)
    assert metrics.committed_uops == len(trace)


def test_trace_generation_throughput(benchmark, substrate_trace_length):
    """Cost of synthesising a 4 000-µop trace from a SPEC profile."""
    generator = WorkloadGenerator(profile_for("176.gcc-1"))

    def run():
        return generator.generate_trace(substrate_trace_length, phase=0)

    program, trace = benchmark(run)
    assert len(trace) >= substrate_trace_length


def test_vc_partitioner_throughput(benchmark, galgel_program):
    """Cost of the Figure 2 compile-time pass over a whole program."""

    def run():
        return VirtualClusterPartitioner(2).annotate_program(galgel_program)

    report = benchmark(run)
    assert report.num_instructions == galgel_program.num_instructions


def test_rhop_partitioner_throughput(benchmark, galgel_program):
    """Cost of the RHOP multilevel partitioning pass over a whole program."""

    def run():
        return RhopPartitioner(2).annotate_program(galgel_program)

    report = benchmark(run)
    assert report.num_instructions == galgel_program.num_instructions


def test_engine_parallel_speedup(benchmark):
    """Engine throughput: the same job matrix serial versus process-parallel.

    Benchmarks the parallel path (``jobs=cpu_count``) and records the
    measured serial (``jobs=1``) wall time plus the resulting speedup in
    ``extra_info``, so parallel scaling is tracked in BENCH output across
    machines.  On single-core runners the speedup naturally hovers at or
    below 1 (pool overhead); the number is still worth recording.
    """
    settings = ExperimentSettings(
        num_clusters=2, num_virtual_clusters=2, trace_length=1200, max_phases=1
    )
    benchmarks = ["164.gzip-1", "176.gcc-1", "178.galgel", "171.swim"]
    configurations = [TABLE3_CONFIGURATIONS["OP"], TABLE3_CONFIGURATIONS["VC"]]
    workers = os.cpu_count() or 1

    # Untimed warm-up: populates the parent-process trace memo so the serial
    # baseline is not charged for cold trace generation.  Under the Linux
    # ``fork`` start method workers inherit the warm memo, making the
    # comparison symmetric; under ``spawn`` workers regenerate traces cold,
    # and that cost stays in the parallel number because real parallel runs
    # pay it too.
    ExperimentRunner(settings, jobs=1).run_suite(benchmarks, configurations)

    start = time.perf_counter()
    serial = ExperimentRunner(settings, jobs=1).run_suite(benchmarks, configurations)
    serial_seconds = time.perf_counter() - start

    def run_parallel():
        return ExperimentRunner(settings, jobs=workers).run_suite(benchmarks, configurations)

    parallel = benchmark.pedantic(run_parallel, rounds=1, iterations=1)
    # Parallel results must match the serial run bit-for-bit.
    for name in benchmarks:
        for configuration in ("OP", "VC"):
            assert (
                serial[name][configuration].cycles == parallel[name][configuration].cycles
            )

    parallel_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["jobs"] = workers
    benchmark.extra_info["num_simulations"] = len(benchmarks) * len(configurations)
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["speedup_vs_serial"] = (
        round(serial_seconds / parallel_seconds, 2) if parallel_seconds > 0 else 0.0
    )
