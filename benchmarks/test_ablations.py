"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's figures:

* virtual-cluster count sweep (generalising the VC(2) / VC(4) study),
* inter-cluster link latency sweep (how fast copy cost grows),
* compiler-window (region size) sweep (the "bigger window" advantage),
* issue-queue size sweep (how much run-time balance matters).
"""

from __future__ import annotations

from repro.experiments.ablations import (
    sweep_issue_queue_size,
    sweep_link_latency,
    sweep_region_size,
    sweep_virtual_clusters,
)
from repro.experiments.runner import ExperimentSettings

#: Small, fixed settings: ablations multiply the number of simulations, so
#: they use shorter traces than the figure benchmarks.
ABLATION_SETTINGS = ExperimentSettings(
    num_clusters=2, num_virtual_clusters=2, trace_length=1500, max_phases=1
)
ABLATION_BENCHMARKS = ("164.gzip-1", "181.mcf", "178.galgel")


def _points_table(result):
    return [
        {
            "value": point.value,
            "configuration": point.configuration,
            "cycles": round(point.cycles, 1),
            "copies": round(point.copies, 1),
            "slowdown_vs_op": None
            if point.slowdown_vs_op is None
            else round(point.slowdown_vs_op, 2),
        }
        for point in result.points
    ]


def test_ablation_virtual_cluster_count(benchmark):
    """Sweep the number of virtual clusters on the 2-cluster machine."""

    def run():
        return sweep_virtual_clusters(
            counts=(1, 2, 4),
            benchmarks=ABLATION_BENCHMARKS,
            base_settings=ABLATION_SETTINGS,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = _points_table(result)
    # With a single virtual cluster the hybrid scheme degenerates towards
    # one-cluster behaviour whenever remaps are rare; 2 virtual clusters must
    # not be slower than 1 on a 2-cluster machine.
    by_value = {
        value: [p for p in result.for_value(value) if p.configuration.startswith("VC")]
        for value in result.values()
    }
    assert by_value[2][0].cycles <= by_value[1][0].cycles * 1.05


def test_ablation_link_latency(benchmark):
    """Sweep the inter-cluster link latency (VC and RHOP versus OP)."""

    def run():
        return sweep_link_latency(
            latencies=(1, 4),
            benchmarks=ABLATION_BENCHMARKS,
            base_settings=ABLATION_SETTINGS,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = _points_table(result)
    # Every configuration gets slower (or at best equal) when communication
    # cost quadruples.
    for name in ("OP", "RHOP", "VC"):
        cheap = [p for p in result.for_value(1) if p.configuration == name][0]
        expensive = [p for p in result.for_value(4) if p.configuration == name][0]
        assert expensive.cycles >= cheap.cycles * 0.98


def test_ablation_region_size(benchmark):
    """Sweep the compiler window used by the software passes."""

    def run():
        return sweep_region_size(
            sizes=(16, 128),
            benchmarks=ABLATION_BENCHMARKS,
            base_settings=ABLATION_SETTINGS,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = _points_table(result)
    vc_points = [p for p in result.points if p.configuration == "VC"]
    assert len(vc_points) == 2


def test_ablation_issue_queue_size(benchmark):
    """Sweep the per-cluster issue-queue sizes (smaller queues stress balance)."""

    def run():
        return sweep_issue_queue_size(
            sizes=(16, 48),
            benchmarks=ABLATION_BENCHMARKS,
            base_settings=ABLATION_SETTINGS,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = _points_table(result)
    # Shrinking the queues can only hurt (or leave unchanged) the baseline.
    op_small = [p for p in result.for_value(16) if p.configuration == "OP"][0]
    op_large = [p for p in result.for_value(48) if p.configuration == "OP"][0]
    assert op_small.cycles >= op_large.cycles * 0.98
