"""Figure 7: scalability to a 4-cluster machine.

Paper headline (panel c): OB 12.45 %, RHOP 12.69 %, VC(4->4) 12.96 %,
VC(2->4) 3.64 % average slowdown versus OP, and VC(4->4) generates about 28 %
more copies than VC(2->4) (Section 5.4).

Reproduced shape (see EXPERIMENTS.md for the honest discussion): the gap
between the software-only schemes and OP widens relative to the 2-cluster
machine, and VC(2->4) stays within a few percent of OP -- but our synthetic
regions contain enough independent chains that VC(4->4) does not degrade the
way the paper reports, so that specific sub-claim is checked only loosely.
"""

from __future__ import annotations

from repro.experiments.figure7 import run_figure7
from repro.experiments.report import format_table


def test_figure7_four_cluster_slowdowns(benchmark, four_cluster_settings, bench_benchmarks):
    """Regenerate Figure 7 (panels a, b, c) plus the copy comparison of Section 5.4."""

    def run():
        return run_figure7(four_cluster_settings, benchmarks=bench_benchmarks)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    averages = {
        name: result.average(name, "all")
        for name in ("OB", "RHOP", "VC(4->4)", "VC(2->4)")
    }
    # The hybrid scheme with 2 virtual clusters stays close to the
    # hardware-only baseline on the bigger machine...
    assert averages["VC(2->4)"] < 6.0
    # ... and clearly beats both software-only schemes, whose gap to OP is
    # larger than on the 2-cluster machine (the paper's scalability argument).
    assert averages["VC(2->4)"] < averages["OB"]
    assert averages["VC(2->4)"] < averages["RHOP"]
    assert max(averages["OB"], averages["RHOP"]) > 3.0

    benchmark.extra_info["figure7_averages"] = result.averages_table()
    benchmark.extra_info["paper_averages"] = {
        "OB": 12.45,
        "RHOP": 12.69,
        "VC(4->4)": 12.96,
        "VC(2->4)": 3.64,
    }
    benchmark.extra_info["copy_overhead_4to4_vs_2to4_percent"] = result.copy_overhead_4to4_vs_2to4()
    benchmark.extra_info["paper_copy_overhead_percent"] = 28.0

    print()
    print(format_table(result.averages_table(), title="Figure 7(c) -- 4-cluster average slowdown vs OP (%)"))
    print(
        f"VC(4->4) copies relative to VC(2->4): "
        f"{result.copy_overhead_4to4_vs_2to4():+.1f} % (paper: +28 %)\n"
    )
