"""Adaptive-scheduler benchmarks: run savings and scheduler overhead.

Two headlines live here, both checked by
``scripts/check_bench_regression.py`` against the committed
``benchmarks/BENCH_engine.json`` snapshot:

* **Adaptive savings** -- ``test_race_adaptive`` runs the built-in
  ``adaptive-race`` scenario (five Table 3 configurations raced over five
  benchmarks on 16 paired seed-block replications) and records the planned
  and executed simulation-run counts in its ``extra_info``.  The headline is
  the ratio ``planned / executed`` (floor 3.0x; the committed snapshot
  records 5.0x): racing retires clearly-worse configurations after a couple
  of paired replications instead of paying for the whole grid.

* **Adaptivity-off overhead** -- ``test_replicated_exhaustive_scheduler``
  runs the replicated report kind with its stopping rule *disabled* (the
  CLI's ``--no-adaptive``), and ``test_replicated_manual_grid`` runs the
  identical job set the pre-adaptive way (hand-rolled
  :meth:`ExperimentRunner.run_suite` over replicated profiles).  Their
  wall-clock ratio is the no-regression headline (floor 0.9x to absorb CI
  noise; the committed snapshot records >=1.0x): with adaptivity off, the
  scheduling layer must cost nothing.

Regenerate the snapshot with ``pytest benchmarks/test_engine_sweep.py
benchmarks/test_engine_adaptive.py --benchmark-only --benchmark-json
benchmarks/BENCH_engine.json``.
"""

from __future__ import annotations

from repro.engine.parallel import _TRACE_MEMO, ParallelRunner
from repro.experiments.ablations import aggregate_suite
from repro.experiments.runner import ExperimentRunner
from repro.scenarios.adaptive import replicate_profile
from repro.scenarios.builtin import builtin_scenario
from repro.scenarios.runner import run_scenario
from repro.workloads.spec2000 import profile_for

# ---------------------------------------------------------------------------
# Adaptive savings: the racing campaign
# ---------------------------------------------------------------------------


def _run_adaptive_race():
    """One fresh adaptive-race campaign: new engine, cold memo, no caches."""
    _TRACE_MEMO.clear()
    with ParallelRunner(cache=None, trace_root=None) as engine:
        report = run_scenario(builtin_scenario("adaptive-race"), engine)
        return report, dict(engine.adaptive_stats)


def test_race_adaptive(benchmark):
    """The built-in racing campaign; ``extra_info`` carries the run counts
    behind the adaptive-savings headline (planned/executed >= 3.0x)."""
    report, stats = benchmark.pedantic(
        _run_adaptive_race, rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["mode"] = "adaptive race"
    benchmark.extra_info["planned_runs"] = stats["planned"]
    benchmark.extra_info["executed_runs"] = stats["executed"]
    benchmark.extra_info["saved_runs"] = stats["planned"] - stats["executed"]
    assert "Race -- adaptive-race" in report
    assert 0 < stats["executed"] < stats["planned"]


# ---------------------------------------------------------------------------
# Adaptivity-off overhead: scheduler replay vs the hand-rolled grid
# ---------------------------------------------------------------------------

#: The exhaustive-pair campaign: small enough for a benchmark round, shaped
#: like a real replicated estimate (two benchmarks, three configurations,
#: two seed-block replications -> 12 simulation runs either way).
REPLICATED_BENCHMARKS = ("164.gzip-1", "178.galgel")
REPLICATED_REPLICATIONS = 2


def _replicated_spec():
    import dataclasses

    from repro.scenarios.spec import StoppingRule

    spec = builtin_scenario("adaptive-race")
    return dataclasses.replace(
        spec,
        name="replicated-overhead",
        report="replicated",
        benchmarks=REPLICATED_BENCHMARKS,
        configurations=spec.configurations[:3],
        replications=REPLICATED_REPLICATIONS,
        stopping=StoppingRule(mode="ci", enabled=False, rel_precision=0.05),
    )


def _run_replicated_scheduler():
    """The replicated report kind with the rule disabled: the full grid is
    prefetched in one engine call and the stopping decisions replayed."""
    _TRACE_MEMO.clear()
    with ParallelRunner(cache=None, trace_root=None) as engine:
        return run_scenario(_replicated_spec(), engine)


def _run_manual_grid():
    """The identical job set the pre-adaptive way: one run_suite call over
    the replicated profiles, aggregated per configuration and replication."""
    _TRACE_MEMO.clear()
    spec = _replicated_spec()
    profiles = [
        replicate_profile(profile_for(name), rep)
        for rep in range(REPLICATED_REPLICATIONS)
        for name in REPLICATED_BENCHMARKS
    ]
    configurations = list(spec.configurations)
    with ParallelRunner(cache=None, trace_root=None) as engine:
        runner = ExperimentRunner(spec.settings(), engine=engine)
        suite = runner.run_suite(profiles, configurations)
        names = [profile.name for profile in profiles]
        return {
            configuration.name: aggregate_suite(suite, names, configuration.name)
            for configuration in configurations
        }


def test_replicated_exhaustive_scheduler(benchmark):
    """The adaptive machinery with adaptivity off.  The wall-clock ratio
    against ``test_replicated_manual_grid`` is the no-regression headline in
    BENCH_engine.json (>=1.0x target, 0.9x floor)."""
    report = benchmark.pedantic(
        _run_replicated_scheduler, rounds=5, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["mode"] = "replicated exhaustive (scheduler)"
    benchmark.extra_info["replications"] = REPLICATED_REPLICATIONS
    assert "Replicated estimates" in report


def test_replicated_manual_grid(benchmark):
    """The same simulation grid without the scheduling layer."""
    aggregates = benchmark.pedantic(
        _run_manual_grid, rounds=5, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["mode"] = "replicated exhaustive (manual)"
    benchmark.extra_info["replications"] = REPLICATED_REPLICATIONS
    assert len(aggregates) == 3
    assert all(data["cycles"] > 0 for data in aggregates.values())
