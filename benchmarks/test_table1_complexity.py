"""Table 1: steering-unit complexity comparison.

Regenerates the hardware-structure table for the five Table 3 configurations
and checks the paper's qualitative claims (OP needs the dependence check and
the vote unit and is serialised; VC needs neither and is far smaller).
"""

from __future__ import annotations

from repro.cluster.config import ClusterConfig, four_cluster_config
from repro.experiments.report import format_table
from repro.experiments.table1 import paper_table1_claims, run_table1


def test_table1_steering_complexity(benchmark):
    """Reproduce Table 1 on the 2-cluster machine of Table 2."""

    def build():
        return run_table1(ClusterConfig(num_clusters=2), num_virtual_clusters=2)

    rows = benchmark.pedantic(build, rounds=3, iterations=1)
    claims = paper_table1_claims(rows)
    assert all(claims.values()), claims
    benchmark.extra_info["table1"] = rows
    print()
    print(format_table(rows, title="Table 1 -- steering-unit complexity (2-cluster machine)"))


def test_table1_scaling_to_four_clusters(benchmark):
    """Complexity of the same structures on the 4-cluster machine of Section 5.4."""

    def build():
        return run_table1(four_cluster_config(), num_virtual_clusters=4)

    rows = benchmark.pedantic(build, rounds=3, iterations=1)
    by_name = {row["steering algorithm"]: row for row in rows}
    # The hardware-only scheme's storage grows with cluster count; the hybrid
    # scheme's mapping table stays tiny.
    assert by_name["VC"]["storage bits"] < 0.25 * by_name["OP"]["storage bits"]
    benchmark.extra_info["table1_4cluster"] = rows
    print()
    print(format_table(rows, title="Table 1 (extended) -- 4-cluster machine"))
