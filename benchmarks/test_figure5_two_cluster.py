"""Figure 5: 2-cluster slowdown of each configuration with respect to OP.

Paper headline (panel c): one-cluster 12.19 %, OB 6.50 %, RHOP 5.40 %,
VC 2.62 % average slowdown versus the hardware-only occupancy-aware baseline.
The reproduction checks the *ordering* and the magnitude bands, not the
absolute numbers (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.experiments.figure5 import run_figure5
from repro.experiments.report import format_table


def test_figure5_slowdown_vs_op(benchmark, two_cluster_settings, bench_benchmarks):
    """Regenerate Figure 5 (panels a, b and c) on the evaluation subset."""

    def run():
        return run_figure5(two_cluster_settings, benchmarks=bench_benchmarks)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    averages = {
        name: result.average(name, "all") for name in ("one-cluster", "OB", "RHOP", "VC")
    }
    # Paper shape: one-cluster is by far the worst; both software-only schemes
    # lose to OP; the hybrid scheme is the closest to OP and beats both
    # software-only schemes.
    assert max(averages, key=averages.get) == "one-cluster"
    assert averages["VC"] < averages["OB"]
    assert averages["VC"] < averages["RHOP"]
    assert averages["VC"] < 6.0
    assert averages["OB"] > 0.0 and averages["RHOP"] > 0.0

    benchmark.extra_info["figure5_averages"] = result.averages_table()
    benchmark.extra_info["paper_averages"] = {
        "one-cluster": 12.19,
        "OB": 6.50,
        "RHOP": 5.40,
        "VC": 2.62,
    }
    print()
    print(format_table(result.benchmark_rows("int"), title="Figure 5(a) -- SPECint slowdown vs OP (%)"))
    print(format_table(result.benchmark_rows("fp"), title="Figure 5(b) -- SPECfp slowdown vs OP (%)"))
    print(format_table(result.averages_table(), title="Figure 5(c) -- average slowdown vs OP (%)"))
