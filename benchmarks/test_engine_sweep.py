"""Engine scheduling benchmarks: per-job versus batched sweep execution.

The shape every paper figure reduces to -- one phase trace, a wide steering
configuration axis -- is exactly what the batch scheduler amortises.  These
benchmarks run an 8-configuration single-trace sweep through the real
:class:`~repro.engine.parallel.ParallelRunner` in both scheduling modes,
serial and with a worker pool, measuring what a fresh ``--no-cache`` CLI
invocation would pay: each round clears the per-process trace memo and
builds (and tears down) its own runner, so per-job parallel scheduling pays
its characteristic per-worker trace acquisition while batched scheduling
fetches the trace once and keeps it resident.

``benchmarks/BENCH_engine.json`` holds a committed reference snapshot of
this file's numbers (regenerate with ``pytest benchmarks/test_engine_sweep.py
--benchmark-only --benchmark-json benchmarks/BENCH_engine.json``);
``scripts/check_bench_regression.py`` diffs a fresh run against it and warns
on >30 % throughput regressions.  The batched-vs-per-job wall-clock speedup
of the parallel pair is the engine's headline batching win (>=1.5x on the
reference machine).
"""

from __future__ import annotations

from repro.engine.job import SimulationJob
from repro.engine.parallel import _TRACE_MEMO, ParallelRunner
from repro.experiments.configs import TABLE3_CONFIGURATIONS, vc_variant
from repro.workloads.spec2000 import profile_for

#: Dynamic µops of the swept phase trace.
SWEEP_TRACE_LENGTH = 800

#: Worker processes of the parallel pair (a typical ``--jobs`` value; with
#: more workers than batches the batched scheduler runs the single batch
#: inline, which is precisely its point).
SWEEP_WORKERS = 8

#: The swept configuration axis: all five Table 3 schemes plus three pinned
#: virtual-cluster variants of the paper's hybrid -- eight configurations,
#: one trace, the batch scheduler's target shape.
SWEEP_CONFIGURATIONS = [
    TABLE3_CONFIGURATIONS["OP"],
    TABLE3_CONFIGURATIONS["one-cluster"],
    TABLE3_CONFIGURATIONS["OB"],
    TABLE3_CONFIGURATIONS["RHOP"],
    TABLE3_CONFIGURATIONS["VC"],
    vc_variant("VC(1)", 1),
    vc_variant("VC(4)", 4),
    vc_variant("VC(8)", 8),
]


def _sweep_jobs() -> list:
    profile = profile_for("164.gzip-1")
    return [
        SimulationJob(
            profile=profile,
            phase=0,
            configuration=configuration,
            trace_length=SWEEP_TRACE_LENGTH,
            region_size=128,
            num_clusters=2,
            num_virtual_clusters=2,
        )
        for configuration in SWEEP_CONFIGURATIONS
    ]


def _run_sweep(batching: bool, workers: int):
    """One fresh-invocation sweep: new runner, cold memo, no caches."""
    jobs = _sweep_jobs()
    _TRACE_MEMO.clear()
    runner = ParallelRunner(
        max_workers=workers, cache=None, trace_root=None, batching=batching
    )
    try:
        return runner.run(jobs)
    finally:
        runner.shutdown()


def _record(benchmark, results) -> None:
    uops = SWEEP_TRACE_LENGTH * len(SWEEP_CONFIGURATIONS)
    benchmark.extra_info["configurations"] = len(SWEEP_CONFIGURATIONS)
    benchmark.extra_info["trace_length"] = SWEEP_TRACE_LENGTH
    benchmark.extra_info["uops_per_run"] = uops
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["uops_per_second"] = round(uops / mean) if mean > 0 else 0
    assert len(results) == len(SWEEP_CONFIGURATIONS)
    # The generator closes its final block, so a run commits >= trace_length.
    assert all(metrics.committed_uops >= SWEEP_TRACE_LENGTH for metrics in results)


def test_sweep_per_job_serial(benchmark):
    """8-config single-trace sweep, per-job scheduling, no worker pool."""
    results = benchmark.pedantic(
        _run_sweep, args=(False, 1), rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["mode"] = "per-job serial"
    _record(benchmark, results)


def test_sweep_batched_serial(benchmark):
    """Same sweep, batched scheduling, no worker pool."""
    results = benchmark.pedantic(
        _run_sweep, args=(True, 1), rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["mode"] = "batched serial"
    _record(benchmark, results)


def test_sweep_per_job_parallel(benchmark):
    """The sweep under per-job scheduling with a worker pool: every worker
    acquires the trace on its own before simulating its share of the axis."""
    results = benchmark.pedantic(
        _run_sweep, args=(False, SWEEP_WORKERS), rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["mode"] = "per-job parallel"
    benchmark.extra_info["workers"] = SWEEP_WORKERS
    _record(benchmark, results)


def test_sweep_batched_parallel(benchmark):
    """The sweep under batched scheduling: one batch task, one trace fetch,
    eight simulations against the resident compiled trace.  The wall-clock
    ratio against ``test_sweep_per_job_parallel`` is the batching speedup
    recorded in BENCH_engine.json (>=1.5x on the reference machine)."""
    results = benchmark.pedantic(
        _run_sweep, args=(True, SWEEP_WORKERS), rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["mode"] = "batched parallel"
    benchmark.extra_info["workers"] = SWEEP_WORKERS
    _record(benchmark, results)
