"""Engine scheduling benchmarks: per-job, batched and shared-memory sweeps.

The shape every paper figure reduces to -- few phase traces, a wide steering
configuration axis -- is exactly what the batch scheduler amortises.  These
benchmarks run sweeps through the real
:class:`~repro.engine.parallel.ParallelRunner` in its scheduling modes,
serial and with a worker pool, measuring what a fresh ``--no-cache`` CLI
invocation would pay: each round clears the per-process trace memo and
builds (and tears down) its own runner, so per-job parallel scheduling pays
its characteristic per-worker trace acquisition while batched scheduling
fetches the trace once and keeps it resident.

The single-trace quartet below is the PR 4 batching headline (one trace,
eight configurations).  The multi-trace pair is the shared-memory substrate
headline (PR 5): a six-trace, four-configuration sweep executed four times
on one persistent runner -- the recurring-sweep shape of the ablation
studies.  On the pickle path every worker acquires each of its batches'
traces itself, run after run (bounded only by its memo); on the
shared-memory path the parent publishes each trace once, workers attach
zero-copy, and every warm run finds every segment resident.

``benchmarks/BENCH_engine.json`` holds a committed reference snapshot of
this file's numbers (regenerate with ``pytest benchmarks/test_engine_sweep.py
--benchmark-only --benchmark-json benchmarks/BENCH_engine.json``);
``scripts/check_bench_regression.py`` diffs a fresh run against it, warns on
>30 % throughput regressions, and checks both headlines: batched-vs-per-job
(>=1.5x) and shared-memory-vs-pickle on the multi-trace sweep (target: at
least matching, i.e. >=1.0x; the checker's floor is 0.85x so single-core CI
noise does not cry wolf).
"""

from __future__ import annotations

from repro.engine.job import SimulationJob
from repro.engine.parallel import _TRACE_MEMO, ParallelRunner
from repro.experiments.configs import TABLE3_CONFIGURATIONS, vc_variant
from repro.workloads.spec2000 import profile_for

#: Dynamic µops of the swept phase trace.
SWEEP_TRACE_LENGTH = 800

#: Worker processes of the parallel pair (a typical ``--jobs`` value; with
#: more workers than batches the batched scheduler runs the single batch
#: inline, which is precisely its point).
SWEEP_WORKERS = 8

#: The swept configuration axis: all five Table 3 schemes plus three pinned
#: virtual-cluster variants of the paper's hybrid -- eight configurations,
#: one trace, the batch scheduler's target shape.
SWEEP_CONFIGURATIONS = [
    TABLE3_CONFIGURATIONS["OP"],
    TABLE3_CONFIGURATIONS["one-cluster"],
    TABLE3_CONFIGURATIONS["OB"],
    TABLE3_CONFIGURATIONS["RHOP"],
    TABLE3_CONFIGURATIONS["VC"],
    vc_variant("VC(1)", 1),
    vc_variant("VC(4)", 4),
    vc_variant("VC(8)", 8),
]


def _sweep_jobs() -> list:
    profile = profile_for("164.gzip-1")
    return [
        SimulationJob(
            profile=profile,
            phase=0,
            configuration=configuration,
            trace_length=SWEEP_TRACE_LENGTH,
            region_size=128,
            num_clusters=2,
            num_virtual_clusters=2,
        )
        for configuration in SWEEP_CONFIGURATIONS
    ]


def _run_sweep(batching: bool, workers: int):
    """One fresh-invocation sweep: new runner, cold memo, no caches."""
    jobs = _sweep_jobs()
    _TRACE_MEMO.clear()
    runner = ParallelRunner(
        max_workers=workers, cache=None, trace_root=None, batching=batching
    )
    try:
        return runner.run(jobs)
    finally:
        runner.shutdown()


def _record(benchmark, results) -> None:
    uops = SWEEP_TRACE_LENGTH * len(SWEEP_CONFIGURATIONS)
    benchmark.extra_info["configurations"] = len(SWEEP_CONFIGURATIONS)
    benchmark.extra_info["trace_length"] = SWEEP_TRACE_LENGTH
    benchmark.extra_info["uops_per_run"] = uops
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["uops_per_second"] = round(uops / mean) if mean > 0 else 0
    assert len(results) == len(SWEEP_CONFIGURATIONS)
    # The generator closes its final block, so a run commits >= trace_length.
    assert all(metrics.committed_uops >= SWEEP_TRACE_LENGTH for metrics in results)


def test_sweep_per_job_serial(benchmark):
    """8-config single-trace sweep, per-job scheduling, no worker pool."""
    results = benchmark.pedantic(
        _run_sweep, args=(False, 1), rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["mode"] = "per-job serial"
    _record(benchmark, results)


def test_sweep_batched_serial(benchmark):
    """Same sweep, batched scheduling, no worker pool."""
    results = benchmark.pedantic(
        _run_sweep, args=(True, 1), rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["mode"] = "batched serial"
    _record(benchmark, results)


def test_sweep_per_job_parallel(benchmark):
    """The sweep under per-job scheduling with a worker pool: every worker
    acquires the trace on its own before simulating its share of the axis."""
    results = benchmark.pedantic(
        _run_sweep, args=(False, SWEEP_WORKERS), rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["mode"] = "per-job parallel"
    benchmark.extra_info["workers"] = SWEEP_WORKERS
    _record(benchmark, results)


def test_sweep_batched_parallel(benchmark):
    """The sweep under batched scheduling: one batch task, one trace fetch,
    eight simulations against the resident compiled trace.  The wall-clock
    ratio against ``test_sweep_per_job_parallel`` is the batching speedup
    recorded in BENCH_engine.json (>=1.5x on the reference machine)."""
    results = benchmark.pedantic(
        _run_sweep, args=(True, SWEEP_WORKERS), rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["mode"] = "batched parallel"
    benchmark.extra_info["workers"] = SWEEP_WORKERS
    _record(benchmark, results)


# ---------------------------------------------------------------------------
# Multi-trace recurring sweep: pickle path vs shared-memory substrate
# ---------------------------------------------------------------------------

#: Phase traces per benchmark profile of the multi-trace sweep (each profile
#: really has three PinPoints phases; two profiles -> six batches per run).
MULTI_TRACE_PHASES = 3

#: Benchmark profiles contributing traces (one SPECint, one SPECfp).
MULTI_TRACE_BENCHMARKS = ("164.gzip-1", "178.galgel")

#: Dynamic µops per phase trace.
MULTI_TRACE_LENGTH = 600

#: Worker processes of the multi-trace pair.
MULTI_WORKERS = 2

#: The swept configuration axis (four schemes x six traces = 24 points/run).
MULTI_CONFIGURATIONS = [
    TABLE3_CONFIGURATIONS["OP"],
    TABLE3_CONFIGURATIONS["VC"],
    TABLE3_CONFIGURATIONS["OB"],
    vc_variant("VC(4)", 4),
]


def _multi_trace_jobs() -> list:
    return [
        SimulationJob(
            profile=profile_for(benchmark),
            phase=phase,
            configuration=configuration,
            trace_length=MULTI_TRACE_LENGTH,
            region_size=128,
            num_clusters=2,
            num_virtual_clusters=2,
        )
        for benchmark in MULTI_TRACE_BENCHMARKS
        for phase in range(MULTI_TRACE_PHASES)
        for configuration in MULTI_CONFIGURATIONS
    ]


#: Consecutive runs per round: one cold, the rest warm.  Recurring sweeps
#: re-execute the same trace set over and over (the ablation-study shape),
#: which is exactly where trace residency pays: a warm pickle-path run still
#: regenerates whatever landed on a different worker than last time or fell
#: out of the bounded memo, a warm shm run finds every segment resident.
MULTI_RUNS = 4


def _run_multi_trace_sweep(shared_memory: bool):
    """``MULTI_RUNS`` consecutive sweeps on one persistent runner.

    No caches and no artifact store anywhere: the only thing that can make
    the later runs cheaper is the substrate itself -- resident shared-memory
    segments (shm mode) versus each worker's bounded trace memo (pickle
    mode).
    """
    jobs = _multi_trace_jobs()
    _TRACE_MEMO.clear()
    with ParallelRunner(
        max_workers=MULTI_WORKERS,
        cache=None,
        trace_root=None,
        shared_memory=shared_memory,
    ) as runner:
        return [runner.run(jobs) for _ in range(MULTI_RUNS)]


def _record_multi(benchmark, results) -> None:
    first = results[0]
    uops = MULTI_TRACE_LENGTH * len(first) * MULTI_RUNS
    benchmark.extra_info["traces"] = MULTI_TRACE_PHASES * len(MULTI_TRACE_BENCHMARKS)
    benchmark.extra_info["configurations"] = len(MULTI_CONFIGURATIONS)
    benchmark.extra_info["runs_per_round"] = MULTI_RUNS
    benchmark.extra_info["workers"] = MULTI_WORKERS
    benchmark.extra_info["uops_per_run"] = uops
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["uops_per_second"] = round(uops / mean) if mean > 0 else 0
    reference = [m.to_dict() for m in first]
    assert len(first) == len(_multi_trace_jobs())
    for rerun in results[1:]:
        assert [m.to_dict() for m in rerun] == reference


def test_multi_trace_sweep_pickle(benchmark):
    """The 6-trace recurring sweep on the pickle path (the PR 4 batched
    baseline): workers acquire traces themselves, and warm reruns still
    regenerate whatever moved workers or fell out of their memos."""
    results = benchmark.pedantic(
        _run_multi_trace_sweep, args=(False,), rounds=5, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["mode"] = "multi-trace batched pickle"
    _record_multi(benchmark, results)


def test_multi_trace_sweep_shm(benchmark):
    """The same recurring sweep on the shared-memory substrate: each trace is
    published once, workers attach zero-copy, and warm runs find every
    segment resident.  The wall-clock ratio against
    ``test_multi_trace_sweep_pickle`` is the substrate speedup recorded in
    BENCH_engine.json (>=1.0x floor: matching at worst)."""
    results = benchmark.pedantic(
        _run_multi_trace_sweep, args=(True,), rounds=5, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["mode"] = "multi-trace batched shm"
    _record_multi(benchmark, results)
