"""Run-time steering policies (the hardware half of steering).

A steering policy decides, at dispatch time, which physical cluster each µop
is sent to.  The policies mirror the configurations of Table 3:

* :class:`~repro.steering.occupancy.OccupancyAwareSteering` -- ``OP``, the
  state-of-the-art hardware-only baseline: sequential dependence-based
  steering with occupancy-aware stalling.
* :class:`~repro.steering.one_cluster.OneClusterSteering` -- ``one-cluster``.
* :class:`~repro.steering.static_follow.StaticAssignmentSteering` -- follows
  the physical-cluster binding produced by a software-only pass (``OB`` and
  ``RHOP``).
* :class:`~repro.steering.virtual_cluster.VirtualClusterSteering` -- ``VC``,
  the paper's hybrid scheme: a tiny mapping table plus workload counters,
  updated only at chain leaders (Figure 4).
* :mod:`repro.steering.baselines` -- extra hardware-only baselines
  (round-robin, load-only, dependence-only) used by the ablation studies.

Each policy also declares which hardware structures it needs
(:class:`~repro.steering.base.SteeringHardware`), feeding the Table 1
complexity comparison.
"""

from repro.steering.base import (
    STALL,
    SteeringContext,
    SteeringHardware,
    SteeringPolicy,
)
from repro.steering.baselines import (
    DependenceOnlySteering,
    LoadBalanceSteering,
    RoundRobinSteering,
)
from repro.steering.occupancy import OccupancyAwareSteering
from repro.steering.one_cluster import OneClusterSteering
from repro.steering.static_follow import StaticAssignmentSteering
from repro.steering.virtual_cluster import VirtualClusterSteering

__all__ = [
    "STALL",
    "SteeringContext",
    "SteeringHardware",
    "SteeringPolicy",
    "OccupancyAwareSteering",
    "OneClusterSteering",
    "StaticAssignmentSteering",
    "VirtualClusterSteering",
    "RoundRobinSteering",
    "LoadBalanceSteering",
    "DependenceOnlySteering",
]
