"""``OP``: occupancy-aware hardware-only steering (the paper's baseline).

The policy follows the description in Sections 2.1 and 3.1:

* **dependence-based**: each µop is steered to the cluster holding most of
  its source operands.  The register locations are read from the rename
  table *sequentially* -- the location updates performed by earlier µops of
  the same dispatch group are visible (the expensive serialisation the paper
  wants to remove from the hardware).
* **occupancy-aware tie-breaking**: ties go to the least loaded cluster.
* **occupancy-aware stalling** (per [15]): if the preferred cluster cannot
  accept the µop because its issue queue is full, the front end *stalls*
  rather than spraying the µop to another cluster -- unless some other
  cluster is clearly idle (occupancy below ``idle_fraction`` of the preferred
  cluster's), in which case the µop is diverted there.

This is the highest-complexity, highest-performance scheme: it needs the
dependence-check table, the workload counters, the vote unit and the copy
generator (all four rows of Table 1).
"""

from __future__ import annotations

from typing import Optional

from repro.scenarios.registry import register_policy
from repro.steering.base import (
    STALL,
    CompiledSteeringSpec,
    SteeringContext,
    SteeringHardware,
    SteeringPolicy,
)
from repro.uops.uop import DynamicUop


class OccupancyAwareSteering(SteeringPolicy):
    """Sequential dependence + occupancy steering with stalling.

    Parameters
    ----------
    idle_fraction:
        A non-preferred cluster counts as "not busy" (and may receive the µop
        when the preferred cluster is full) if its occupancy is below this
        fraction of the preferred cluster's occupancy.
    """

    name = "OP"

    def __init__(self, idle_fraction: float = 0.5) -> None:
        if not 0.0 <= idle_fraction <= 1.0:
            raise ValueError("idle_fraction must be in [0, 1]")
        self.idle_fraction = float(idle_fraction)

    def pick_cluster(self, uop: DynamicUop, context: SteeringContext) -> Optional[int]:
        """Steer ``uop`` using source locations, occupancy, and stalling.

        This is the hottest policy callback of the simulator (it runs once
        per dispatched µop), so the selection is written as explicit loops;
        every choice (argmax over source counts, occupancy tie-breaks with
        the lowest index winning, the idle-diversion filter) is identical to
        the straightforward ``max``/``min``-with-key formulation.
        """
        num_clusters = context.num_clusters
        clusters = range(num_clusters)
        # Count how many source operands each cluster already holds.
        source_counts = [0] * num_clusters
        mask_of = context.register_location_mask
        for reg in uop.srcs:
            mask = mask_of(reg)
            if mask:
                for cluster in clusters:
                    if mask >> cluster & 1:
                        source_counts[cluster] += 1
        # Preferred cluster: most located sources, ties to the least loaded
        # (lowest index wins further ties).  A best count of zero degenerates
        # to pure workload balance over all clusters -- every cluster ties at
        # zero, which is exactly ``least_loaded_cluster()``.
        occupancy_of = context.cluster_occupancy
        best_count = -1
        preferred = 0
        preferred_occupancy = 0
        for cluster in clusters:
            count = source_counts[cluster]
            if count > best_count:
                best_count = count
                preferred = cluster
                preferred_occupancy = occupancy_of(cluster)
            elif count == best_count:
                occupancy = occupancy_of(cluster)
                if occupancy < preferred_occupancy:
                    preferred = cluster
                    preferred_occupancy = occupancy
        # Occupancy-aware stalling: if the preferred cluster cannot take the
        # µop, only divert it when some other cluster is clearly idle.
        queue = uop.queue
        queue_free = context.queue_free
        if queue_free(preferred, queue) > 0:
            return preferred
        threshold = preferred_occupancy * self.idle_fraction
        diverted = -1
        diverted_occupancy = 0
        for cluster in clusters:
            if cluster == preferred or queue_free(cluster, queue) <= 0:
                continue
            occupancy = occupancy_of(cluster)
            if occupancy <= threshold and (diverted < 0 or occupancy < diverted_occupancy):
                diverted = cluster
                diverted_occupancy = occupancy
        return diverted if diverted >= 0 else STALL

    def compiled_spec(self) -> Optional[CompiledSteeringSpec]:
        """Lower to the ``occupancy-stall`` form.

        The form replicates the full selection verbatim -- per-cluster
        located-source counts (duplicates preserved), occupancy tie-breaks
        with the lowest index winning, queue-full stalling and the
        idle-diversion filter -- including the STALL outcome, which the
        kernels account as a steering stall exactly like the callback path.
        """
        return CompiledSteeringSpec(
            form="occupancy-stall", idle_fraction=self.idle_fraction
        )

    def hardware(self) -> SteeringHardware:
        """OP needs every structure of Table 1."""
        return SteeringHardware(
            dependence_check=True,
            workload_counters=True,
            vote_unit=True,
            copy_generator=True,
        )


@register_policy("OP")
def _build_op(num_clusters: int, num_virtual_clusters: int, **params) -> OccupancyAwareSteering:
    """Registry builder for the ``OP`` baseline (accepts ``idle_fraction``)."""
    return OccupancyAwareSteering(**params)
