"""``OP``: occupancy-aware hardware-only steering (the paper's baseline).

The policy follows the description in Sections 2.1 and 3.1:

* **dependence-based**: each µop is steered to the cluster holding most of
  its source operands.  The register locations are read from the rename
  table *sequentially* -- the location updates performed by earlier µops of
  the same dispatch group are visible (the expensive serialisation the paper
  wants to remove from the hardware).
* **occupancy-aware tie-breaking**: ties go to the least loaded cluster.
* **occupancy-aware stalling** (per [15]): if the preferred cluster cannot
  accept the µop because its issue queue is full, the front end *stalls*
  rather than spraying the µop to another cluster -- unless some other
  cluster is clearly idle (occupancy below ``idle_fraction`` of the preferred
  cluster's), in which case the µop is diverted there.

This is the highest-complexity, highest-performance scheme: it needs the
dependence-check table, the workload counters, the vote unit and the copy
generator (all four rows of Table 1).
"""

from __future__ import annotations

from typing import Optional

from repro.scenarios.registry import register_policy
from repro.steering.base import STALL, SteeringContext, SteeringHardware, SteeringPolicy
from repro.uops.uop import DynamicUop


class OccupancyAwareSteering(SteeringPolicy):
    """Sequential dependence + occupancy steering with stalling.

    Parameters
    ----------
    idle_fraction:
        A non-preferred cluster counts as "not busy" (and may receive the µop
        when the preferred cluster is full) if its occupancy is below this
        fraction of the preferred cluster's occupancy.
    """

    name = "OP"

    def __init__(self, idle_fraction: float = 0.5) -> None:
        if not 0.0 <= idle_fraction <= 1.0:
            raise ValueError("idle_fraction must be in [0, 1]")
        self.idle_fraction = float(idle_fraction)

    def pick_cluster(self, uop: DynamicUop, context: SteeringContext) -> Optional[int]:
        """Steer ``uop`` using source locations, occupancy, and stalling."""
        num_clusters = context.num_clusters
        # Count how many source operands each cluster already holds.
        source_counts = [0] * num_clusters
        for reg in uop.srcs:
            mask = context.register_location_mask(reg)
            if mask == 0:
                continue
            for cluster in range(num_clusters):
                if mask & (1 << cluster):
                    source_counts[cluster] += 1
        best_count = max(source_counts) if source_counts else 0
        if best_count == 0:
            # No located source: pure workload balance.
            preferred = context.least_loaded_cluster()
        else:
            candidates = [c for c in range(num_clusters) if source_counts[c] == best_count]
            preferred = min(candidates, key=lambda c: (context.cluster_occupancy(c), c))
        # Occupancy-aware stalling: if the preferred cluster cannot take the
        # µop, only divert it when some other cluster is clearly idle.
        if context.queue_free(preferred, uop.queue) > 0:
            return preferred
        preferred_occupancy = context.cluster_occupancy(preferred)
        idle_candidates = [
            c
            for c in range(num_clusters)
            if c != preferred
            and context.queue_free(c, uop.queue) > 0
            and context.cluster_occupancy(c) <= preferred_occupancy * self.idle_fraction
        ]
        if idle_candidates:
            return min(idle_candidates, key=lambda c: (context.cluster_occupancy(c), c))
        return STALL

    def hardware(self) -> SteeringHardware:
        """OP needs every structure of Table 1."""
        return SteeringHardware(
            dependence_check=True,
            workload_counters=True,
            vote_unit=True,
            copy_generator=True,
        )


@register_policy("OP")
def _build_op(num_clusters: int, num_virtual_clusters: int, **params) -> OccupancyAwareSteering:
    """Registry builder for the ``OP`` baseline (accepts ``idle_fraction``)."""
    return OccupancyAwareSteering(**params)
