"""``VC``: the paper's hybrid virtual-cluster steering (Figure 4).

The hardware half of the hybrid scheme is deliberately tiny:

* a **mapping table** with one entry per virtual cluster, holding the
  physical cluster each virtual cluster is currently mapped to, and
* the **workload balance counters** (one per physical cluster minus one in
  the paper's implementation; we model them as per-cluster in-flight
  counters, which carry the same information).

At decode, a µop carrying the chain-leader mark triggers a table update: its
virtual cluster is re-mapped to the least loaded physical cluster.  Every
other µop simply reads the table and follows the mapping of its virtual
cluster.  Copy generation happens afterwards exactly as in the traditional
design (the copy generator is the only other piece of hardware kept).

There is no dependence-check table and no vote unit, and -- crucially -- no
serialisation: the mapping lookup of µop *i* does not depend on the steering
decision of µop *i-1* in the same dispatch group.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.scenarios.registry import register_policy
from repro.steering.base import (
    CompiledSteeringSpec,
    SteeringContext,
    SteeringHardware,
    SteeringPolicy,
)
from repro.uops.uop import DynamicUop


class VirtualClusterSteering(SteeringPolicy):
    """Map virtual clusters to physical clusters at run time.

    Parameters
    ----------
    num_virtual_clusters:
        Number of virtual clusters the ISA exposes (the size of the mapping
        table).  Must match (or exceed) the value used by the compile-time
        :class:`~repro.partition.vc_partitioner.VirtualClusterPartitioner`.
    fallback_balance:
        Where to send µops with no virtual-cluster annotation: ``True`` sends
        them to the least loaded cluster, ``False`` to cluster 0.
    """

    name = "VC"

    def __init__(self, num_virtual_clusters: int = 2, fallback_balance: bool = True) -> None:
        if num_virtual_clusters < 1:
            raise ValueError("num_virtual_clusters must be positive")
        self.num_virtual_clusters = int(num_virtual_clusters)
        self.fallback_balance = bool(fallback_balance)
        self._mapping: Dict[int, int] = {}
        #: Number of mapping-table updates performed (chain remaps); exposed
        #: for the analysis in Section 5.4.
        self.remap_count = 0

    def reset(self, num_clusters: int) -> None:
        super().reset(num_clusters)
        # Initial mapping: virtual cluster v -> physical cluster v mod N,
        # which is what a trivial power-on state would give.
        self._mapping = {
            vc: vc % num_clusters for vc in range(self.num_virtual_clusters)
        }
        self.remap_count = 0

    @property
    def mapping(self) -> Dict[int, int]:
        """Current virtual-to-physical mapping (copy; for inspection and tests)."""
        return dict(self._mapping)

    def pick_cluster(self, uop: DynamicUop, context: SteeringContext) -> Optional[int]:
        """Figure 4: remap at chain leaders, follow the table otherwise."""
        vc = uop.vc_id
        if vc is None:
            # Un-annotated µop (e.g. code outside the compiler's view).
            if self.fallback_balance:
                return context.least_loaded_cluster()
            return 0
        vc = int(vc) % self.num_virtual_clusters
        if uop.chain_leader:
            target = context.least_loaded_cluster()
            if self._mapping.get(vc) != target:
                self.remap_count += 1
            self._mapping[vc] = target
            return target
        return self._mapping.get(vc, vc % context.num_clusters)

    def compiled_spec(self) -> Optional[CompiledSteeringSpec]:
        """Lower to the ``mapping-table`` form.

        The mapping table is exactly a flat int array indexed by virtual
        cluster (``reset`` populates every entry and ``pick_cluster``
        normalises ids into range before lookup), so the whole policy state
        ships as a tuple snapshot; the final mapping and the remap count come
        back through :meth:`sync_compiled_state`.
        """
        return CompiledSteeringSpec(
            form="mapping-table",
            num_virtual_clusters=self.num_virtual_clusters,
            fallback_balance=self.fallback_balance,
            mapping=tuple(
                self._mapping[vc] for vc in range(self.num_virtual_clusters)
            ),
        )

    def sync_compiled_state(self, state: Mapping[str, object]) -> None:
        """Adopt the fused run's final mapping table and remap count."""
        self._mapping = dict(enumerate(state["mapping"]))
        self.remap_count = int(state["remap_count"])

    def hardware(self) -> SteeringHardware:
        """Workload counters, the tiny mapping table, and the copy generator."""
        return SteeringHardware(
            dependence_check=False,
            workload_counters=True,
            vote_unit=False,
            copy_generator=True,
            mapping_table_entries=self.num_virtual_clusters,
        )


@register_policy("VC")
def _build_vc(num_clusters: int, num_virtual_clusters: int, **params) -> VirtualClusterSteering:
    """Registry builder for ``VC``: the mapping-table size follows the machine
    geometry unless the configuration pins it via ``num_virtual_clusters``."""
    params.setdefault("num_virtual_clusters", num_virtual_clusters)
    return VirtualClusterSteering(**params)
