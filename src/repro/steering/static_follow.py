"""Steering that follows a compile-time physical-cluster binding (OB and RHOP).

The software-only schemes of the paper (OB/SPDI and RHOP) bind every static
instruction to a physical cluster at compile time; the hardware simply obeys.
The only hardware the scheme needs is the copy generator -- no dependence
check, no vote unit, no workload counters -- which is why software-only
steering is so attractive complexity-wise, and why it loses performance when
the static workload estimate turns out to be wrong at run time.

µops without a binding (library code the compiler did not see, or copies) go
to a configurable default cluster.
"""

from __future__ import annotations

from typing import Optional

from repro.scenarios.registry import register_policy
from repro.steering.base import (
    CompiledSteeringSpec,
    SteeringContext,
    SteeringHardware,
    SteeringPolicy,
)
from repro.uops.uop import DynamicUop


class StaticAssignmentSteering(SteeringPolicy):
    """Obey the ``static_cluster`` annotation written by a software-only pass.

    Parameters
    ----------
    name:
        Report name; the experiment harness instantiates this class as
        ``"OB"`` or ``"RHOP"`` depending on which compile-time pass annotated
        the program.
    default_cluster:
        Cluster used for µops that carry no static binding.
    """

    def __init__(self, name: str = "static", default_cluster: int = 0) -> None:
        self.name = name
        if default_cluster < 0:
            raise ValueError("default_cluster must be non-negative")
        self.default_cluster = int(default_cluster)

    def pick_cluster(self, uop: DynamicUop, context: SteeringContext) -> Optional[int]:
        """Return the compile-time binding (modulo the machine's cluster count)."""
        target = uop.static_cluster
        if target is None:
            target = self.default_cluster
        # A program compiled for more clusters than the machine has folds onto
        # the available ones; this also keeps the policy robust to mismatched
        # configurations in ablation studies.
        return int(target) % context.num_clusters

    def compiled_spec(self) -> Optional[CompiledSteeringSpec]:
        """Lower to the ``static-table`` form.

        The kernel builds the per-µop choice table from the trace's
        ``static_cluster`` column at run start (annotations are re-read every
        run), substituting ``default_cluster`` for unbound µops and folding
        with the same modulo ``pick_cluster`` applies.
        """
        return CompiledSteeringSpec(
            form="static-table", default_cluster=self.default_cluster
        )

    def hardware(self) -> SteeringHardware:
        """Only the copy generator remains in hardware."""
        return SteeringHardware(copy_generator=True)


@register_policy("static")
def _build_static(
    num_clusters: int, num_virtual_clusters: int, **params
) -> StaticAssignmentSteering:
    """Registry builder for compiler-bound steering (``name`` selects the report
    label, e.g. ``"OB"`` or ``"RHOP"``; accepts ``default_cluster``)."""
    return StaticAssignmentSteering(**params)
