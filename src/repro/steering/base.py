"""Steering policy interface and hardware-structure declarations.

The dispatch stage of the simulator consults a :class:`SteeringPolicy` for
every µop it dispatches.  The policy sees the µop (including its compiler
annotations, i.e. the ISA extension) and a :class:`SteeringContext` exposing
exactly the information a real steering unit could observe:

* the current per-cluster workload (in-flight µop counters),
* the free entries of each per-cluster issue queue, and
* the register-location information maintained by the rename table
  (which clusters hold, or will produce, each architectural register).

Policies must not reach into any other simulator state -- that discipline is
what makes the Table 1 complexity comparison meaningful: a policy that never
calls :meth:`SteeringContext.register_location_mask` genuinely does not need
the dependence-check table.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.uops.opcodes import IssueQueueKind
from repro.uops.uop import DynamicUop

#: Sentinel returned by a policy that decides to stall the front end this cycle.
STALL: Optional[int] = None

#: Decision forms a :class:`CompiledSteeringSpec` may declare.  Every form is
#: a pure function of observables the :class:`SteeringContext` already scopes
#: (per-cluster occupancy, queue free counts, register-location masks) plus
#: the µop's own dispatch metadata -- nothing a real steering unit could not
#: observe, and nothing outside the context discipline documented above.
SPEC_FORMS = (
    # pick_cluster == target_cluster (one-cluster).
    "constant",
    # pick_cluster == (static_cluster[i] if annotated else default) % N
    # (software-only OB/RHOP steering).
    "static-table",
    # pick_cluster == counter; counter = (counter + 1) % N on every pick,
    # including picks whose dispatch is subsequently stalled (round-robin).
    "modulo",
    # pick_cluster == argmin over cluster occupancy, lowest index wins ties
    # (load-balance).
    "least-loaded",
    # pick_cluster == argmax over per-cluster located-source counts
    # (duplicates preserved), 0 when no source is located (dependence-only).
    "dependence-count",
    # The paper's OP baseline: argmax located sources with occupancy
    # tie-breaks, then queue-full stalling with idle diversion.  May STALL.
    "occupancy-stall",
    # The paper's VC scheme: a flat virtual-to-physical mapping table,
    # remapped to the least loaded cluster at chain leaders.
    "mapping-table",
)


@dataclass(frozen=True)
class CompiledSteeringSpec:
    """Declarative lowering of a steering policy's decision function.

    A policy that can express :meth:`SteeringPolicy.pick_cluster` as one of
    the closed :data:`SPEC_FORMS` returns a spec from
    :meth:`SteeringPolicy.compiled_spec`; the vectorized kernel then runs the
    decision *inside* the array tier -- no per-µop Python frames -- and the
    ``vectorized-jit`` kernel compiles it into the jitted inner loop.  The
    spec must reproduce ``pick_cluster`` bit-for-bit: the parity suites run
    every lowered policy through both tiers and compare metrics
    field-for-field.

    Specs are snapshots: the kernel requests a fresh one per run, after the
    policy's ``reset``, so stateful forms embed their post-reset state
    (``mapping``) and receive the final state back through
    :meth:`SteeringPolicy.sync_compiled_state` when the run completes.
    """

    #: One of :data:`SPEC_FORMS`.
    form: str
    #: ``constant``: the fixed target cluster.
    target_cluster: int = 0
    #: ``static-table``: cluster for µops without a static binding.
    default_cluster: int = 0
    #: ``occupancy-stall``: idle-diversion threshold fraction.
    idle_fraction: float = 0.5
    #: ``mapping-table``: number of virtual clusters (mapping-table entries).
    num_virtual_clusters: int = 1
    #: ``mapping-table``: send unannotated µops to the least loaded cluster
    #: (``True``) or to cluster 0 (``False``).
    fallback_balance: bool = True
    #: ``mapping-table``: initial virtual-to-physical mapping, index = vc.
    mapping: Tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.form not in SPEC_FORMS:
            raise ValueError(
                f"unknown compiled-steering form {self.form!r}; "
                f"expected one of {SPEC_FORMS}"
            )


@dataclass(frozen=True)
class SteeringHardware:
    """Hardware structures a steering scheme needs (the rows of Table 1)."""

    dependence_check: bool = False
    workload_counters: bool = False
    vote_unit: bool = False
    copy_generator: bool = False
    mapping_table_entries: int = 0

    def as_dict(self) -> dict:
        """Flat dictionary used by the complexity model and reports."""
        return {
            "dependence_check": self.dependence_check,
            "workload_balance_management": self.workload_counters,
            "vote_unit": self.vote_unit,
            "copy_generator": self.copy_generator,
            "mapping_table_entries": self.mapping_table_entries,
        }


class SteeringContext(abc.ABC):
    """What the steering unit can observe about the machine at dispatch time."""

    @property
    @abc.abstractmethod
    def num_clusters(self) -> int:
        """Number of physical clusters."""

    @abc.abstractmethod
    def cluster_occupancy(self, cluster: int) -> int:
        """Number of in-flight µops currently assigned to ``cluster``."""

    @abc.abstractmethod
    def queue_free(self, cluster: int, kind: IssueQueueKind) -> int:
        """Free entries in the ``kind`` issue queue of ``cluster``."""

    @abc.abstractmethod
    def register_location_mask(self, reg: int) -> int:
        """Bitmask of clusters holding (or about to produce) register ``reg``.

        Bit ``c`` is set when the current value of the architectural register
        is available in cluster ``c`` or will be produced there by an
        in-flight µop.  A zero mask means the location is unknown (treated as
        "anywhere" by the policies).
        """

    # -- convenience helpers shared by several policies --------------------------
    def least_loaded_cluster(self) -> int:
        """Cluster with the fewest in-flight µops (lowest index wins ties)."""
        occupancy_of = self.cluster_occupancy
        best = 0
        best_occupancy = occupancy_of(0)
        for cluster in range(1, self.num_clusters):
            occupancy = occupancy_of(cluster)
            if occupancy < best_occupancy:
                best = cluster
                best_occupancy = occupancy
        return best


class SteeringPolicy(abc.ABC):
    """Base class of run-time steering policies."""

    #: Short name used in reports and experiment configs.
    name = "base"

    def reset(self, num_clusters: int) -> None:
        """Prepare internal state for a new simulation with ``num_clusters`` clusters."""
        self._num_clusters = int(num_clusters)

    @abc.abstractmethod
    def pick_cluster(self, uop: DynamicUop, context: SteeringContext) -> Optional[int]:
        """Return the destination cluster of ``uop``, or :data:`STALL`.

        Returning :data:`STALL` keeps the µop (and everything younger) in the
        dispatch buffer for this cycle; the simulator accounts it as a
        steering stall.
        """

    def hardware(self) -> SteeringHardware:
        """Hardware structures needed by the policy (Table 1 row)."""
        return SteeringHardware()

    # -- optional declarative lowering (the compiled steering tier) ---------------
    def compiled_spec(self) -> Optional[CompiledSteeringSpec]:
        """Declarative lowering of :meth:`pick_cluster`, or ``None``.

        Policies whose decision is a pure function of the context observables
        (one of :data:`SPEC_FORMS`) may return a :class:`CompiledSteeringSpec`
        so the vectorized kernels run the decision inside the array tier.
        The spec must be bit-identical to ``pick_cluster`` -- the lowered
        parity suite compares both paths field-for-field on every metric.
        Returning ``None`` (the default) keeps the policy on the per-µop
        callback path, which observes every acting cycle in dispatch order.

        Called once per run, *after* :meth:`reset`, so stateful forms embed
        their post-reset state in the spec (and adopt the final state back
        via :meth:`sync_compiled_state`).
        """
        return None

    def sync_compiled_state(self, state: Mapping[str, object]) -> None:
        """Adopt the final run state of a fused (lowered) execution.

        Called exactly once at the end of a run that executed this policy's
        :meth:`compiled_spec` instead of ``pick_cluster``.  ``state`` carries
        the form's run-time state (``modulo``: ``{"next": int}``;
        ``mapping-table``: ``{"mapping": tuple, "remap_count": int}``;
        stateless forms: ``{}``), so post-run introspection -- e.g. the
        ``vc_remaps`` metric -- matches the callback path exactly.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
