"""Steering policy interface and hardware-structure declarations.

The dispatch stage of the simulator consults a :class:`SteeringPolicy` for
every µop it dispatches.  The policy sees the µop (including its compiler
annotations, i.e. the ISA extension) and a :class:`SteeringContext` exposing
exactly the information a real steering unit could observe:

* the current per-cluster workload (in-flight µop counters),
* the free entries of each per-cluster issue queue, and
* the register-location information maintained by the rename table
  (which clusters hold, or will produce, each architectural register).

Policies must not reach into any other simulator state -- that discipline is
what makes the Table 1 complexity comparison meaningful: a policy that never
calls :meth:`SteeringContext.register_location_mask` genuinely does not need
the dependence-check table.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.uops.opcodes import IssueQueueKind
from repro.uops.uop import DynamicUop

#: Sentinel returned by a policy that decides to stall the front end this cycle.
STALL: Optional[int] = None


@dataclass(frozen=True)
class SteeringHardware:
    """Hardware structures a steering scheme needs (the rows of Table 1)."""

    dependence_check: bool = False
    workload_counters: bool = False
    vote_unit: bool = False
    copy_generator: bool = False
    mapping_table_entries: int = 0

    def as_dict(self) -> dict:
        """Flat dictionary used by the complexity model and reports."""
        return {
            "dependence_check": self.dependence_check,
            "workload_balance_management": self.workload_counters,
            "vote_unit": self.vote_unit,
            "copy_generator": self.copy_generator,
            "mapping_table_entries": self.mapping_table_entries,
        }


class SteeringContext(abc.ABC):
    """What the steering unit can observe about the machine at dispatch time."""

    @property
    @abc.abstractmethod
    def num_clusters(self) -> int:
        """Number of physical clusters."""

    @abc.abstractmethod
    def cluster_occupancy(self, cluster: int) -> int:
        """Number of in-flight µops currently assigned to ``cluster``."""

    @abc.abstractmethod
    def queue_free(self, cluster: int, kind: IssueQueueKind) -> int:
        """Free entries in the ``kind`` issue queue of ``cluster``."""

    @abc.abstractmethod
    def register_location_mask(self, reg: int) -> int:
        """Bitmask of clusters holding (or about to produce) register ``reg``.

        Bit ``c`` is set when the current value of the architectural register
        is available in cluster ``c`` or will be produced there by an
        in-flight µop.  A zero mask means the location is unknown (treated as
        "anywhere" by the policies).
        """

    # -- convenience helpers shared by several policies --------------------------
    def least_loaded_cluster(self) -> int:
        """Cluster with the fewest in-flight µops (lowest index wins ties)."""
        occupancy_of = self.cluster_occupancy
        best = 0
        best_occupancy = occupancy_of(0)
        for cluster in range(1, self.num_clusters):
            occupancy = occupancy_of(cluster)
            if occupancy < best_occupancy:
                best = cluster
                best_occupancy = occupancy
        return best


class SteeringPolicy(abc.ABC):
    """Base class of run-time steering policies."""

    #: Short name used in reports and experiment configs.
    name = "base"

    def reset(self, num_clusters: int) -> None:
        """Prepare internal state for a new simulation with ``num_clusters`` clusters."""
        self._num_clusters = int(num_clusters)

    @abc.abstractmethod
    def pick_cluster(self, uop: DynamicUop, context: SteeringContext) -> Optional[int]:
        """Return the destination cluster of ``uop``, or :data:`STALL`.

        Returning :data:`STALL` keeps the µop (and everything younger) in the
        dispatch buffer for this cycle; the simulator accounts it as a
        steering stall.
        """

    def hardware(self) -> SteeringHardware:
        """Hardware structures needed by the policy (Table 1 row)."""
        return SteeringHardware()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
