"""Extra hardware-only steering baselines used in ablation studies.

These are not part of the paper's Table 3 but are standard points of
comparison in the clustered-microarchitecture literature (e.g. Baniasadi &
Moshovos' Mod-N and load-balance heuristics) and help characterise where the
hybrid scheme's benefit comes from:

* :class:`RoundRobinSteering` ignores both dependences and occupancy,
* :class:`LoadBalanceSteering` uses only the workload counters,
* :class:`DependenceOnlySteering` uses only the register-location table.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.scenarios.registry import register_policy
from repro.steering.base import (
    CompiledSteeringSpec,
    SteeringContext,
    SteeringHardware,
    SteeringPolicy,
)
from repro.uops.uop import DynamicUop


class RoundRobinSteering(SteeringPolicy):
    """Send consecutive µops to consecutive clusters (Mod-1)."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def reset(self, num_clusters: int) -> None:
        super().reset(num_clusters)
        self._next = 0

    def pick_cluster(self, uop: DynamicUop, context: SteeringContext) -> Optional[int]:
        """Rotate over the clusters regardless of anything else."""
        cluster = self._next
        self._next = (self._next + 1) % context.num_clusters
        return cluster

    def compiled_spec(self) -> Optional[CompiledSteeringSpec]:
        """Lower to the ``modulo`` form.

        The counter advances on every *pick* -- including picks whose
        dispatch is then stalled by a resource check -- and the fused path
        replicates exactly that (the pick point is identical in both tiers),
        so :meth:`sync_compiled_state` restores the same ``_next`` the
        callback path would have left behind.
        """
        return CompiledSteeringSpec(form="modulo")

    def sync_compiled_state(self, state: Mapping[str, object]) -> None:
        """Adopt the fused run's final counter."""
        self._next = int(state["next"])

    def hardware(self) -> SteeringHardware:
        """Just a modulo counter plus the copy generator."""
        return SteeringHardware(copy_generator=True)


class LoadBalanceSteering(SteeringPolicy):
    """Always pick the least loaded cluster (balance-only heuristic)."""

    name = "load-balance"

    def pick_cluster(self, uop: DynamicUop, context: SteeringContext) -> Optional[int]:
        """Least-loaded cluster, ignoring operand locations."""
        return context.least_loaded_cluster()

    def compiled_spec(self) -> Optional[CompiledSteeringSpec]:
        """Lower to the ``least-loaded`` form (argmin occupancy, lowest index wins)."""
        return CompiledSteeringSpec(form="least-loaded")

    def hardware(self) -> SteeringHardware:
        """Workload counters plus the copy generator."""
        return SteeringHardware(workload_counters=True, copy_generator=True)


class DependenceOnlySteering(SteeringPolicy):
    """Follow the operands, ignoring occupancy (dependence-only heuristic)."""

    name = "dependence-only"

    def pick_cluster(self, uop: DynamicUop, context: SteeringContext) -> Optional[int]:
        """Cluster holding most sources; cluster 0 when nothing is located."""
        num_clusters = context.num_clusters
        counts = [0] * num_clusters
        for reg in uop.srcs:
            mask = context.register_location_mask(reg)
            for cluster in range(num_clusters):
                if mask & (1 << cluster):
                    counts[cluster] += 1
        best = max(counts) if counts else 0
        if best == 0:
            return 0
        return counts.index(best)

    def compiled_spec(self) -> Optional[CompiledSteeringSpec]:
        """Lower to the ``dependence-count`` form (argmax located sources,
        duplicates preserved, cluster 0 when nothing is located)."""
        return CompiledSteeringSpec(form="dependence-count")

    def hardware(self) -> SteeringHardware:
        """Dependence-check table plus the copy generator."""
        return SteeringHardware(dependence_check=True, copy_generator=True)


@register_policy("round-robin")
def _build_round_robin(num_clusters: int, num_virtual_clusters: int, **params) -> RoundRobinSteering:
    return RoundRobinSteering(**params)


@register_policy("load-balance")
def _build_load_balance(num_clusters: int, num_virtual_clusters: int, **params) -> LoadBalanceSteering:
    return LoadBalanceSteering(**params)


@register_policy("dependence-only")
def _build_dependence_only(
    num_clusters: int, num_virtual_clusters: int, **params
) -> DependenceOnlySteering:
    return DependenceOnlySteering(**params)
