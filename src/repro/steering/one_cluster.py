"""The ``one-cluster`` configuration: every µop goes to the same cluster.

The paper evaluates this naive scheme to show how much performance is on the
table: it never generates copies (all values stay local) but uses only one
cluster's worth of issue bandwidth, queue capacity and functional units.
"""

from __future__ import annotations

from typing import Optional

from repro.scenarios.registry import register_policy
from repro.steering.base import (
    CompiledSteeringSpec,
    SteeringContext,
    SteeringHardware,
    SteeringPolicy,
)
from repro.uops.uop import DynamicUop


class OneClusterSteering(SteeringPolicy):
    """Send every µop to a fixed cluster (cluster 0 by default)."""

    name = "one-cluster"

    def __init__(self, target_cluster: int = 0) -> None:
        if target_cluster < 0:
            raise ValueError("target_cluster must be non-negative")
        self.target_cluster = int(target_cluster)

    def reset(self, num_clusters: int) -> None:
        super().reset(num_clusters)
        if self.target_cluster >= num_clusters:
            raise ValueError(
                f"target cluster {self.target_cluster} does not exist in a "
                f"{num_clusters}-cluster machine"
            )

    def pick_cluster(self, uop: DynamicUop, context: SteeringContext) -> Optional[int]:
        """Always the configured cluster."""
        return self.target_cluster

    def compiled_spec(self) -> Optional[CompiledSteeringSpec]:
        """Lower to the ``constant`` form (``reset`` validated the target)."""
        return CompiledSteeringSpec(form="constant", target_cluster=self.target_cluster)

    def hardware(self) -> SteeringHardware:
        """No steering hardware at all (and no copies are ever needed)."""
        return SteeringHardware()


@register_policy("one-cluster")
def _build_one_cluster(num_clusters: int, num_virtual_clusters: int, **params) -> OneClusterSteering:
    """Registry builder for ``one-cluster`` (accepts ``target_cluster``)."""
    return OneClusterSteering(**params)
