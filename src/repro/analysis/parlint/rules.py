"""parlint: cross-implementation consistency of the kernel twins (PAR2xx).

The bit-identity contract is implemented three times: the interpreter, the
vectorized kernel's fused dispatch (``cluster/kernel.py``) and the jitted
inner loop (``cluster/jitloop.py``).  All three are driven by the closed
lowering vocabulary ``SPEC_FORMS`` (``steering/base.py``) and by the
structure-of-arrays IR (``uops/compiled.py``).  Each of those couplings is a
*convention*, not an import: adding a steering form, a trace column or a
``dispatch_meta`` field requires edits in several files that nothing forces
to happen together.  The PR 7 ride-along IndexError and the PR 8 ``_FORM_*``
fan-out both came from exactly this kind of silent drift.

parlint checks the couplings at the AST level, cross-file:

* **PAR201** every ``SPEC_FORMS`` entry has a ``_FORM_* = _FORM_CODES[...]``
  constant in ``cluster.kernel`` (and every ``_FORM_CODES`` key is a real
  form).
* **PAR202** the fused steering dispatch chain -- in ``cluster.kernel`` and
  in ``cluster.jitloop`` -- has a branch (or the single trailing ``else``)
  for every non-callback ``_FORM_*`` constant.
* **PAR203** every ``CompiledSteeringSpec(form="...")`` literal, anywhere,
  names a ``SPEC_FORMS`` member.
* **PAR204** the ``dispatch_meta()`` producer packs exactly as many fields
  as the kernel's tuple unpack consumes.
* **PAR205** detlint's ``TRACE_COLUMN_ATTRS`` equals
  ``CompiledTrace.STORED_FIELDS`` (``stored_columns()`` iterates
  ``STORED_FIELDS`` directly, so the pair covers all three views).
* **PAR206** per steering form, the jit twin's branch has the same
  control-flow skeleton (loop/branch/break/continue counts) as the pure
  twin's, modulo the documented numba-only idiom allowlist below.

Modules are recognized by dotted-name *suffix* (``cluster.kernel`` etc.), so
fixture trees exercise the same code paths as the real repo.  Cross-file
rules only fire when the modules they reconcile were part of the scan; the
CI strict job scans the whole tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.framework import (
    AnalysisPass,
    Finding,
    PassScanner,
    Rule,
    register_pass,
)

__all__ = [
    "PARLINT_PASS",
    "RULES",
    "RULES_BY_ID",
    "SKELETON_ALLOWLIST",
    "extract_models",
]

RULES: Tuple[Rule, ...] = (
    Rule(
        "PAR201",
        "spec-form-constant",
        "a SPEC_FORMS entry without a matching `_FORM_* = _FORM_CODES[...]` "
        "constant in cluster.kernel (or a `_FORM_CODES` key that is not a "
        "form) means the lowered dispatch silently cannot reach that form",
    ),
    Rule(
        "PAR202",
        "dispatch-branch-coverage",
        "the fused steering dispatch chain must branch on every non-callback "
        "`_FORM_*` constant (one form may ride the trailing `else`); a "
        "missing branch sends that form down another form's code path",
    ),
    Rule(
        "PAR203",
        "unknown-spec-form",
        "a `CompiledSteeringSpec(form=...)` literal outside SPEC_FORMS "
        "fails at runtime only when that policy is first lowered; the "
        "vocabulary is closed and checked here instead",
    ),
    Rule(
        "PAR204",
        "dispatch-meta-arity",
        "dispatch_meta() packs per-µop tuples that the kernel unpacks "
        "positionally; adding a field to one side without the other "
        "misaligns every field after it",
    ),
    Rule(
        "PAR205",
        "trace-column-table-drift",
        "detlint's TRACE_COLUMN_ATTRS must equal CompiledTrace."
        "STORED_FIELDS or DET109 stops guarding new columns (the PR 7 "
        "sync test, promoted to a rule)",
    ),
    Rule(
        "PAR206",
        "twin-skeleton-drift",
        "per steering form, the jitted twin's branch must keep the pure "
        "twin's control-flow skeleton (loops/branches/breaks/continues); "
        "a shape change is a transcription divergence unless it is on the "
        "documented numba-idiom allowlist",
    ),
)

RULES_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in RULES}

#: Documented numba-only transcription idioms (PAR206): per matched branch
#: label, the allowed (loops, branches, breaks, continues) delta of the jit
#: twin relative to the pure twin.
#:
#: * ``_FORM_DEP`` (the trailing ``else`` of both chains): the pure twin
#:   selects the best cluster with ``list.index(best_count)``; numba has no
#:   ``list.index`` over reflected lists, so the jit twin lowers it to a
#:   linear scan -- one extra For, one extra If, one extra Break.
SKELETON_ALLOWLIST: Dict[str, Tuple[int, int, int, int]] = {
    "_FORM_DEP": (1, 1, 1, 0),
}

#: Module-name suffixes of the twins parlint reconciles.
_ROLE_SPEC = "steering.base"
_ROLE_KERNEL = "cluster.kernel"
_ROLE_JIT = "cluster.jitloop"
_ROLE_COMPILED = "uops.compiled"
_ROLE_COLUMN_TABLE = "analysis.detlint.rules"


# ---------------------------------------------------------------------------
# Extracted models (what each twin declares)
# ---------------------------------------------------------------------------


@dataclass
class Skeleton:
    """Control-flow shape of one dispatch branch."""

    loops: int = 0
    branches: int = 0
    breaks: int = 0
    continues: int = 0

    def delta(self, other: "Skeleton") -> Tuple[int, int, int, int]:
        return (
            self.loops - other.loops,
            self.branches - other.branches,
            self.breaks - other.breaks,
            self.continues - other.continues,
        )

    def render(self) -> str:
        return (
            f"loops={self.loops} branches={self.branches} "
            f"breaks={self.breaks} continues={self.continues}"
        )


@dataclass
class ChainModel:
    """One ``if form == _FORM_X: ... elif ...: ... else:`` dispatch chain."""

    path: str
    line: int
    #: ``[(constant name, line, skeleton), ...]`` in chain order.
    branches: List[Tuple[str, int, Skeleton]] = field(default_factory=list)
    else_line: Optional[int] = None
    else_skeleton: Optional[Skeleton] = None

    @property
    def handled(self) -> frozenset:
        return frozenset(name for name, _, _ in self.branches)


@dataclass
class SpecFormsModel:
    path: str
    line: int
    forms: Tuple[str, ...]


@dataclass
class KernelModel:
    path: str
    #: ``_FORM_X -> form name`` from ``_FORM_X = _FORM_CODES["name"]``
    #: assignments; the integer-literal callback constant maps to ``None``.
    constants: Dict[str, Optional[str]] = field(default_factory=dict)
    constants_line: int = 1
    chain: Optional[ChainModel] = None
    unpack_line: Optional[int] = None
    unpack_arity: Optional[int] = None


@dataclass
class JitModel:
    path: str
    #: ``_FORM_*`` names imported from the kernel (the jit twin's vocabulary).
    imported: Tuple[str, ...] = ()
    import_line: int = 1
    chain: Optional[ChainModel] = None


@dataclass
class CompiledModel:
    path: str
    stored_fields: Tuple[str, ...] = ()
    stored_line: int = 1
    zip_line: Optional[int] = None
    zip_arity: Optional[int] = None


@dataclass
class ColumnTableModel:
    path: str
    attrs: frozenset = frozenset()
    line: int = 1


@dataclass
class SpecUse:
    """One ``CompiledSteeringSpec(form="...")`` literal."""

    path: str
    line: int
    form: str


@dataclass
class Models:
    """Everything one scan's modules declared, ready for reconciliation."""

    spec: Optional[SpecFormsModel] = None
    kernel: Optional[KernelModel] = None
    jit: Optional[JitModel] = None
    compiled: Optional[CompiledModel] = None
    column_table: Optional[ColumnTableModel] = None
    uses: List[SpecUse] = field(default_factory=list)


# ---------------------------------------------------------------------------
# AST extraction
# ---------------------------------------------------------------------------


def _str_tuple(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """The string elements of a literal tuple/list/set, else ``None``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        # frozenset({...}) / tuple((...)) wrappers
        if node.func.id in {"frozenset", "tuple", "set", "list"} and node.args:
            return _str_tuple(node.args[0])
        return None
    if not isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return None
    values: List[str] = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        values.append(elt.value)
    return tuple(values)


def _assign_targets(node: ast.AST) -> List[Tuple[str, ast.AST]]:
    """``(name, value)`` pairs for simple Assign/AnnAssign statements."""
    pairs: List[Tuple[str, ast.AST]] = []
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                pairs.append((target.id, node.value))
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        if isinstance(node.target, ast.Name):
            pairs.append((node.target.id, node.value))
    return pairs


def _match_form_test(test: ast.AST) -> Optional[str]:
    """``_FORM_X`` when ``test`` is ``form == _FORM_X`` (either side)."""
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Eq)
    ):
        return None
    left, right = test.left, test.comparators[0]
    for a, b in ((left, right), (right, left)):
        if (
            isinstance(a, ast.Name)
            and a.id == "form"
            and isinstance(b, ast.Name)
            and b.id.startswith("_FORM_")
        ):
            return b.id
    return None


def _skeleton(stmts: List[ast.stmt]) -> Skeleton:
    """Loop/branch/break/continue counts of a branch body.

    ``IfExp`` counts as a branch so the pure twin's conditional expressions
    and the jit twin's if/else statements (numba-friendlier) compare equal.
    """
    skel = Skeleton()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                skel.loops += 1
            elif isinstance(node, (ast.If, ast.IfExp)):
                skel.branches += 1
            elif isinstance(node, ast.Break):
                skel.breaks += 1
            elif isinstance(node, ast.Continue):
                skel.continues += 1
    return skel


def _extract_chains(tree: ast.Module, path: str) -> List[ChainModel]:
    """Every ``form == _FORM_*`` if/elif chain in the module, heads only."""
    elif_continuations: List[ast.If] = []
    heads: List[ast.If] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.If) and _match_form_test(node.test)):
            continue
        if (
            len(node.orelse) == 1
            and isinstance(node.orelse[0], ast.If)
            and _match_form_test(node.orelse[0].test)
        ):
            elif_continuations.append(node.orelse[0])
        if not any(existing is node for existing in heads):
            heads.append(node)
    chains: List[ChainModel] = []
    for head in heads:
        if any(cont is head for cont in elif_continuations):
            continue
        chain = ChainModel(path=path, line=head.lineno)
        node: ast.If = head
        while True:
            const = _match_form_test(node.test)
            chain.branches.append((const, node.lineno, _skeleton(node.body)))
            orelse = node.orelse
            if (
                len(orelse) == 1
                and isinstance(orelse[0], ast.If)
                and _match_form_test(orelse[0].test)
            ):
                node = orelse[0]
                continue
            if orelse:
                chain.else_line = orelse[0].lineno
                chain.else_skeleton = _skeleton(orelse)
            break
        chains.append(chain)
    return chains


def _dispatch_chain(tree: ast.Module, path: str) -> Optional[ChainModel]:
    """The fused dispatch chain: the longest ``form ==`` chain in the module.

    Both kernel files also contain short per-form precomputation and
    validation chains; the dispatch chain dominates them by branch count.
    """
    chains = _extract_chains(tree, path)
    if not chains:
        return None
    return max(chains, key=lambda c: (len(c.branches), -c.line))


def _extract_spec(tree: ast.Module, path: str) -> Optional[SpecFormsModel]:
    for node in ast.walk(tree):
        for name, value in _assign_targets(node):
            if name == "SPEC_FORMS":
                forms = _str_tuple(value)
                if forms:
                    return SpecFormsModel(path=path, line=node.lineno, forms=forms)
    return None


def _extract_kernel(tree: ast.Module, path: str) -> KernelModel:
    model = KernelModel(path=path)
    for node in ast.walk(tree):
        for name, value in _assign_targets(node):
            if not name.startswith("_FORM_") or name == "_FORM_CODES":
                continue
            if (
                isinstance(value, ast.Subscript)
                and isinstance(value.value, ast.Name)
                and value.value.id == "_FORM_CODES"
                and isinstance(value.slice, ast.Constant)
                and isinstance(value.slice.value, str)
            ):
                model.constants[name] = value.slice.value
                model.constants_line = node.lineno
            elif isinstance(value, ast.Constant) and isinstance(value.value, int):
                model.constants[name] = None  # the callback sentinel
        # The fused dispatch metadata unpack: a wide tuple assigned from a
        # subscript of the cached meta list.
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Tuple)
                and len(target.elts) >= 6
                and all(isinstance(e, ast.Name) for e in target.elts)
                and isinstance(node.value, ast.Subscript)
            ):
                if model.unpack_arity is None or len(target.elts) > model.unpack_arity:
                    model.unpack_arity = len(target.elts)
                    model.unpack_line = node.lineno
    model.chain = _dispatch_chain(tree, path)
    return model


def _extract_jit(tree: ast.Module, path: str) -> JitModel:
    model = JitModel(path=path)
    imported: List[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name.startswith("_FORM_"):
                    imported.append(alias.asname or alias.name)
                    model.import_line = node.lineno
    model.imported = tuple(imported)
    model.chain = _dispatch_chain(tree, path)
    return model


def _extract_compiled(tree: ast.Module, path: str) -> CompiledModel:
    model = CompiledModel(path=path)
    for node in ast.walk(tree):
        for name, value in _assign_targets(node):
            if name == "STORED_FIELDS":
                fields = _str_tuple(value)
                if fields:
                    model.stored_fields = fields
                    model.stored_line = node.lineno
        if isinstance(node, ast.FunctionDef) and node.name == "dispatch_meta":
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "zip"
                ):
                    model.zip_arity = len(sub.args)
                    model.zip_line = sub.lineno
    return model


def _extract_column_table(tree: ast.Module, path: str) -> ColumnTableModel:
    model = ColumnTableModel(path=path)
    for node in ast.walk(tree):
        for name, value in _assign_targets(node):
            if name == "TRACE_COLUMN_ATTRS":
                attrs = _str_tuple(value)
                if attrs:
                    model.attrs = frozenset(attrs)
                    model.line = node.lineno
    return model


def _extract_spec_uses(tree: ast.Module, path: str) -> List[SpecUse]:
    uses: List[SpecUse] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "CompiledSteeringSpec":
            continue
        for keyword in node.keywords:
            if (
                keyword.arg == "form"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, str)
            ):
                uses.append(SpecUse(path=path, line=node.lineno, form=keyword.value.value))
    return uses


def extract_models(
    tree: ast.Module, path: str, module_name: str, models: Optional[Models] = None
) -> Models:
    """Fold one module's declarations into ``models`` (parlint's world view)."""
    models = models if models is not None else Models()
    if module_name.endswith(_ROLE_SPEC):
        models.spec = _extract_spec(tree, path) or models.spec
    if module_name.endswith(_ROLE_KERNEL):
        models.kernel = _extract_kernel(tree, path)
    if module_name.endswith(_ROLE_JIT):
        models.jit = _extract_jit(tree, path)
    if module_name.endswith(_ROLE_COMPILED):
        models.compiled = _extract_compiled(tree, path)
    if module_name.endswith(_ROLE_COLUMN_TABLE):
        models.column_table = _extract_column_table(tree, path)
    models.uses.extend(_extract_spec_uses(tree, path))
    return models


# ---------------------------------------------------------------------------
# Reconciliation (the cross-file checks)
# ---------------------------------------------------------------------------


def _check_spec_constants(models: Models) -> List[Finding]:
    findings: List[Finding] = []
    spec, kernel = models.spec, models.kernel
    if spec is None or kernel is None:
        return findings
    lowered = {form for form in kernel.constants.values() if form is not None}
    missing = [form for form in spec.forms if form not in lowered]
    if missing:
        findings.append(
            Finding(
                "PAR201",
                kernel.path,
                kernel.constants_line,
                "SPEC_FORMS entries with no `_FORM_* = _FORM_CODES[...]` "
                f"constant: {', '.join(missing)}",
            )
        )
    unknown = sorted(lowered - set(spec.forms))
    if unknown:
        findings.append(
            Finding(
                "PAR201",
                kernel.path,
                kernel.constants_line,
                f"`_FORM_CODES` keys that are not SPEC_FORMS entries: "
                f"{', '.join(unknown)}",
            )
        )
    return findings


def _check_chain_coverage(
    chain: Optional[ChainModel], expected: frozenset, path: str, default_line: int
) -> List[Finding]:
    if not expected:
        return []
    if chain is None:
        return [
            Finding(
                "PAR202",
                path,
                default_line,
                "no `form == _FORM_*` dispatch chain found, but "
                f"{len(expected)} form constants are in scope",
            )
        ]
    handled = {name for name in chain.handled if name != "_FORM_CALLBACK"}
    missing = sorted(expected - handled)
    allowed = 1 if chain.else_skeleton is not None else 0
    if len(missing) > allowed:
        return [
            Finding(
                "PAR202",
                chain.path,
                chain.line,
                f"dispatch chain covers {len(handled)} of {len(expected)} "
                "non-callback `_FORM_*` forms; no branch "
                f"{'(and only one may ride the else) ' if allowed else '(and no else fallback) '}"
                f"for: {', '.join(missing)}",
            )
        ]
    return []


def _check_dispatch_coverage(models: Models) -> List[Finding]:
    findings: List[Finding] = []
    if models.kernel is not None:
        expected = frozenset(
            name
            for name, form in models.kernel.constants.items()
            if form is not None
        )
        findings.extend(
            _check_chain_coverage(
                models.kernel.chain, expected, models.kernel.path,
                models.kernel.constants_line,
            )
        )
    if models.jit is not None:
        # The jit twin's vocabulary is whatever it imports from the kernel:
        # deleting a branch while the import stays is exactly the drift.
        expected = frozenset(models.jit.imported)
        findings.extend(
            _check_chain_coverage(
                models.jit.chain, expected, models.jit.path,
                models.jit.import_line,
            )
        )
    return findings


def _check_spec_uses(models: Models) -> List[Finding]:
    if models.spec is None:
        return []
    forms = set(models.spec.forms)
    return [
        Finding(
            "PAR203",
            use.path,
            use.line,
            f"CompiledSteeringSpec(form={use.form!r}) is not a SPEC_FORMS "
            f"entry; the lowering vocabulary is closed: {models.spec.forms}",
        )
        for use in models.uses
        if use.form not in forms
    ]


def _check_meta_arity(models: Models) -> List[Finding]:
    kernel, compiled = models.kernel, models.compiled
    if (
        kernel is None
        or compiled is None
        or kernel.unpack_arity is None
        or compiled.zip_arity is None
    ):
        return []
    if kernel.unpack_arity != compiled.zip_arity:
        return [
            Finding(
                "PAR204",
                kernel.path,
                kernel.unpack_line or 1,
                f"dispatch_meta() packs {compiled.zip_arity} fields "
                f"(uops/compiled.py:{compiled.zip_line}) but the kernel "
                f"unpacks {kernel.unpack_arity}; every field after the "
                "mismatch is misaligned",
            )
        ]
    return []


def _check_column_table(models: Models) -> List[Finding]:
    table, compiled = models.column_table, models.compiled
    if table is None or compiled is None or not compiled.stored_fields:
        return []
    stored = frozenset(compiled.stored_fields)
    if table.attrs == stored:
        return []
    missing = sorted(stored - table.attrs)
    extra = sorted(table.attrs - stored)
    detail = []
    if missing:
        detail.append(f"missing from TRACE_COLUMN_ATTRS: {', '.join(missing)}")
    if extra:
        detail.append(f"not in STORED_FIELDS: {', '.join(extra)}")
    return [
        Finding(
            "PAR205",
            table.path,
            table.line,
            "TRACE_COLUMN_ATTRS != CompiledTrace.STORED_FIELDS "
            f"({'; '.join(detail)}); DET109 no longer guards the drifted "
            "columns",
        )
    ]


def _check_twin_skeletons(models: Models) -> List[Finding]:
    findings: List[Finding] = []
    kernel, jit = models.kernel, models.jit
    if kernel is None or jit is None or kernel.chain is None or jit.chain is None:
        return findings
    pure = {
        name: (line, skel)
        for name, line, skel in kernel.chain.branches
        if name != "_FORM_CALLBACK"
    }
    jitted = dict()
    for name, line, skel in jit.chain.branches:
        jitted[name] = (line, skel)
    pairs: List[Tuple[str, Tuple[int, Skeleton], Tuple[int, Skeleton]]] = [
        (name, pure[name], jitted[name]) for name in pure if name in jitted
    ]
    # Both chains end in a single else fallback covering the same form (the
    # one constant with no explicit branch); compare those under that label.
    if kernel.chain.else_skeleton is not None and jit.chain.else_skeleton is not None:
        expected = frozenset(
            name for name, form in kernel.constants.items() if form is not None
        )
        fallback = sorted(expected - set(pure) - {"_FORM_CALLBACK"})
        label = fallback[0] if len(fallback) == 1 else "<else>"
        pairs.append(
            (
                label,
                (kernel.chain.else_line or 1, kernel.chain.else_skeleton),
                (jit.chain.else_line or 1, jit.chain.else_skeleton),
            )
        )
    for label, (pure_line, pure_skel), (jit_line, jit_skel) in pairs:
        delta = jit_skel.delta(pure_skel)
        allowed = SKELETON_ALLOWLIST.get(label, (0, 0, 0, 0))
        if delta != (0, 0, 0, 0) and delta != allowed:
            findings.append(
                Finding(
                    "PAR206",
                    jit.path,
                    jit_line,
                    f"{label} branch skeleton drifted from the pure twin: "
                    f"jit ({jit_skel.render()}) vs pure ({pure_skel.render()}) "
                    f"at {kernel.path}:{pure_line}; delta {delta} is not on "
                    "the numba-idiom allowlist",
                )
            )
    return findings


def check_models(models: Models) -> List[Finding]:
    """All cross-file findings for one scan's extracted models."""
    findings: List[Finding] = []
    findings.extend(_check_spec_constants(models))
    findings.extend(_check_dispatch_coverage(models))
    findings.extend(_check_spec_uses(models))
    findings.extend(_check_meta_arity(models))
    findings.extend(_check_column_table(models))
    findings.extend(_check_twin_skeletons(models))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


class _Scanner(PassScanner):
    def __init__(self) -> None:
        self.models = Models()

    def check(
        self, tree: ast.Module, source: str, path: str, module_name: str
    ) -> List[Finding]:
        extract_models(tree, path, module_name, self.models)
        return []

    def finish(self) -> List[Finding]:
        return check_models(self.models)


PARLINT_PASS = register_pass(
    AnalysisPass(
        name="parlint",
        description=(
            "cross-implementation drift between the kernel twins: SPEC_FORMS "
            "lowering coverage, dispatch branch fan-out, dispatch_meta "
            "arity, trace-column tables, twin branch skeletons"
        ),
        rules=RULES,
        scanner=_Scanner,
    )
)
