"""parlint: kernel-twin / lowering-contract consistency checks (PAR2xx).

Registered as an analysis-framework pass; run it via ``repro analyze --pass
parlint`` (or ``python -m repro.analysis --pass parlint``).  See
:mod:`repro.analysis.parlint.rules` for the rule catalogue and the model
extraction it performs, and DESIGN.md §7 for the framework.
"""

from repro.analysis.parlint.rules import (
    PARLINT_PASS,
    RULES,
    RULES_BY_ID,
    SKELETON_ALLOWLIST,
    extract_models,
)

__all__ = [
    "PARLINT_PASS",
    "RULES",
    "RULES_BY_ID",
    "SKELETON_ALLOWLIST",
    "extract_models",
]
