"""Compiler analyses used by the compile-time partitioners.

* :mod:`repro.analysis.criticality` -- depth, height and criticality of every
  DDG node (Figure 2, step 1: "Computation of critical paths").
* :mod:`repro.analysis.slack` -- slack of nodes and edges, the weighting
  information used by RHOP's multilevel partitioner.
* :mod:`repro.analysis.completion_time` -- the completion-time estimator the
  VC partitioner uses to evaluate the benefit of placing an instruction on a
  given virtual cluster ("based on the dependences, the latencies, and the
  resource contention in the intended cluster").
* :mod:`repro.analysis.stats` -- descriptive statistics of DDGs and programs
  used by reports, tests and the workload generator's self-checks.
* :mod:`repro.analysis.framework` -- the static-analysis framework: shared
  findings, suppressions, fingerprint baseline and CLI for the repo-wide
  lint passes (DESIGN.md §7).  Run them as ``python -m repro.analysis`` or
  ``repro analyze --pass <name>``:

  - :mod:`repro.analysis.detlint` (DET1xx) -- determinism hazards that
    break the bit-identity contract.
  - :mod:`repro.analysis.parlint` (PAR2xx) -- kernel-twin / lowering
    consistency across the fused dispatch, the jit twin and ``SPEC_FORMS``.
  - :mod:`repro.analysis.lifelint` (RES3xx) -- resource lifecycles in the
    shm/pool substrate.

  None of these are imported eagerly here so the numeric analyses stay
  side-effect free.
"""

from repro.analysis.completion_time import CompletionTimeEstimator
from repro.analysis.criticality import CriticalityInfo, compute_criticality
from repro.analysis.slack import SlackInfo, compute_slack
from repro.analysis.stats import DDGStats, ddg_statistics, program_statistics

__all__ = [
    "CriticalityInfo",
    "compute_criticality",
    "SlackInfo",
    "compute_slack",
    "CompletionTimeEstimator",
    "DDGStats",
    "ddg_statistics",
    "program_statistics",
]
