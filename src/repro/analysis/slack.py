"""Slack analysis used by RHOP's multilevel partitioner.

RHOP (Chu, Fan, Mahlke, PLDI 2003) weights DDG nodes and edges using slack
information computed from static latencies: operations (and dependences) with
little slack are on or near the critical path and should be kept together
during coarsening; operations with large slack are cheap to move between
clusters during refinement.

Definitions (relative to the critical-path length ``L`` of the DDG):

* ``slack(n)   = L - criticality(n)`` -- how much node ``n`` can be delayed
  without lengthening the schedule.
* ``slack(u,v) = L - (depth(u) + latency(u) + height(v))`` -- slack of the
  dependence edge ``u -> v``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.criticality import CriticalityInfo, compute_criticality
from repro.program.ddg import DataDependenceGraph


@dataclass(frozen=True)
class SlackInfo:
    """Result of :func:`compute_slack` for one DDG."""

    node_slack: Tuple[int, ...]
    edge_slack: Dict[Tuple[int, int], int]
    criticality: CriticalityInfo

    def edge_weight(self, edge: Tuple[int, int], max_weight: int = 16) -> int:
        """RHOP-style edge weight: tighter (lower-slack) edges weigh more.

        Weights are clamped to ``[1, max_weight]`` so a zero-slack edge is
        ``max_weight`` times as attractive to coarsen as a very slack edge.
        """
        slack = self.edge_slack[edge]
        length = max(1, self.criticality.critical_path_length)
        # Normalise slack to [0, 1] then invert.
        normalized = min(1.0, slack / length)
        return max(1, int(round(max_weight * (1.0 - normalized))))

    def node_weight(self, node: int) -> int:
        """RHOP-style node weight: unit resource usage per operation.

        RHOP weights nodes by their resource usage estimate; with the
        homogeneous functional units of Table 2 every operation occupies one
        issue slot, so the weight is 1.  Subclasses of the partitioner may
        override this with latency-based weights for sensitivity studies.
        """
        return 1

    def is_edge_critical(self, edge: Tuple[int, int]) -> bool:
        """True when the edge lies on a critical path (zero slack)."""
        return self.edge_slack[edge] == 0


def compute_slack(ddg: DataDependenceGraph) -> SlackInfo:
    """Compute node and edge slack for ``ddg``.

    Returns
    -------
    SlackInfo
        Per-node slack, per-edge slack and the underlying criticality info.
    """
    crit = compute_criticality(ddg)
    length = crit.critical_path_length
    node_slack = tuple(length - c for c in crit.criticality)
    edge_slack: Dict[Tuple[int, int], int] = {}
    for (u, v), latency in ddg.edge_latency.items():
        through = crit.depth[u] + latency + crit.height[v]
        edge_slack[(u, v)] = max(0, length - through)
    return SlackInfo(node_slack=node_slack, edge_slack=edge_slack, criticality=crit)
