"""The multi-pass static-analysis framework behind ``repro analyze``.

One engine, many passes.  A pass (:class:`AnalysisPass`) owns a rule
catalogue and a scanner; the framework owns everything the passes share
(DESIGN.md §7):

* **Scanning**: walk files/directories, parse each ``.py`` file once, feed
  the tree to every selected pass, and classify each finding as **fresh**,
  **suppressed** (an inline ``# <pass>: ok <RULE>`` comment on the offending
  line) or **baselined** (its fingerprint appears in the committed baseline).
* **Suppression** is line-scoped, rule-scoped and pass-tagged: ``# detlint:
  ok DET102 (reason)`` mutes detlint on that line only; parlint and lifelint
  read ``# parlint: ok`` / ``# lifelint: ok``.  Strict mode additionally
  requires a non-empty rationale -- a suppression without one does not
  suppress.
* **Fingerprints** hash the *content* of the offending line, not its number,
  so unrelated edits above a grandfathered finding do not resurrect it; a
  per-content occurrence index keeps duplicate lines distinct.
* **Baseline hygiene**: entries whose fingerprint no longer matches any
  finding are reported as *stale* (they would otherwise silently accumulate)
  and ``--prune-baseline`` rewrites the file without them.
* **Exit codes**: ``0`` no fresh findings, ``1`` fresh findings, ``2`` usage
  or scan errors.  Strict mode disables the baseline entirely; CI runs every
  pass strict, which is the end state this repo maintains.

The three built-in passes are *detlint* (determinism hazards, DET1xx),
*parlint* (kernel-twin/lowering consistency, PAR2xx) and *lifelint*
(resource lifecycles, RES3xx); :func:`load_builtin_passes` registers them.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
)

__all__ = [
    "AnalysisPass",
    "Baseline",
    "ClassifiedFinding",
    "Finding",
    "Rule",
    "ScanResult",
    "Suppression",
    "all_passes",
    "build_parser",
    "fingerprint",
    "find_default_baseline",
    "get_pass",
    "load_builtin_passes",
    "main",
    "parse_suppression",
    "register_pass",
    "render_report",
    "run",
    "scan_paths",
]


# ---------------------------------------------------------------------------
# Shared vocabulary: findings, rules, passes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Rule:
    """Static description of one lint rule (the check lives in the scanner)."""

    rule_id: str
    name: str
    hazard: str


class PassScanner:
    """Per-scan state for one pass; subclasses override :meth:`check`.

    ``check`` sees every scanned module; ``finish`` runs once at the end so
    cross-file passes (parlint) can reconcile what the modules declared.
    """

    def check(
        self, tree: ast.Module, source: str, path: str, module_name: str
    ) -> List[Finding]:
        raise NotImplementedError

    def finish(self) -> List[Finding]:
        return []


@dataclass(frozen=True)
class AnalysisPass:
    """One registered analyzer: a name (the suppression tag), rules, scanner."""

    name: str
    description: str
    rules: Tuple[Rule, ...]
    scanner: Callable[[], PassScanner]

    @property
    def rules_by_id(self) -> Dict[str, Rule]:
        return {rule.rule_id: rule for rule in self.rules}


_PASSES: Dict[str, AnalysisPass] = {}

#: The built-in pass modules, imported on demand (registration happens at
#: their import).  Tuple order is the canonical report order -- registration
#: order cannot be trusted for it, because anything may import a single pass
#: module directly before :func:`load_builtin_passes` runs.
_BUILTIN_PASS_MODULES = (
    "repro.analysis.detlint.rules",
    "repro.analysis.parlint.rules",
    "repro.analysis.lifelint.rules",
)

_BUILTIN_PASS_ORDER = ("detlint", "parlint", "lifelint")


def register_pass(analysis_pass: AnalysisPass) -> AnalysisPass:
    """Register (or re-register) a pass under its name; returns it."""
    _PASSES[analysis_pass.name] = analysis_pass
    return analysis_pass


def load_builtin_passes() -> None:
    """Import the built-in pass modules so they self-register."""
    import importlib

    for module in _BUILTIN_PASS_MODULES:
        importlib.import_module(module)


def all_passes() -> Tuple[AnalysisPass, ...]:
    """Every registered pass, built-ins first in canonical order."""
    load_builtin_passes()
    ordered = [_PASSES[name] for name in _BUILTIN_PASS_ORDER if name in _PASSES]
    ordered.extend(
        analysis_pass
        for name, analysis_pass in _PASSES.items()
        if name not in _BUILTIN_PASS_ORDER
    )
    return tuple(ordered)


def get_pass(name: str) -> AnalysisPass:
    load_builtin_passes()
    try:
        return _PASSES[name]
    except KeyError:
        raise KeyError(
            f"unknown analysis pass {name!r}; registered: {sorted(_PASSES)}"
        ) from None


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Suppression:
    """One inline suppression: the named rules (empty = all) and rationale."""

    rules: frozenset
    rationale: str

    def covers(self, rule_id: str) -> bool:
        return not self.rules or rule_id in self.rules


_RULE_TOKEN_RE = re.compile(r"[A-Z]+\d+$")

_SUPPRESS_RES: Dict[str, re.Pattern] = {}


def _suppress_re(tag: str) -> re.Pattern:
    pattern = _SUPPRESS_RES.get(tag)
    if pattern is None:
        pattern = re.compile(rf"#\s*{re.escape(tag)}:\s*ok(?P<rest>[^\n]*)")
        _SUPPRESS_RES[tag] = pattern
    return pattern


def parse_suppression(line: str, tag: str = "detlint") -> Optional[Suppression]:
    """The ``# <tag>: ok [RULES...] (rationale)`` suppression on ``line``.

    Returns ``None`` when the line carries no suppression for ``tag``.  The
    rule list is empty for a bare ``ok`` (suppress every rule of the pass);
    everything after the rule tokens is the rationale (strict mode requires
    it to be non-empty).
    """
    match = _suppress_re(tag).search(line)
    if match is None:
        return None
    tokens = match.group("rest").replace(",", " ").split()
    names: List[str] = []
    for token in tokens:
        if not _RULE_TOKEN_RE.match(token):
            break  # rationale text starts here
        names.append(token)
    rationale = " ".join(tokens[len(names):]).strip(" ()-:;")
    return Suppression(rules=frozenset(names), rationale=rationale)


# ---------------------------------------------------------------------------
# Fingerprints and the baseline
# ---------------------------------------------------------------------------

#: Baseline file schema version.
BASELINE_VERSION = 1

#: Default baseline filename, looked up at each scan root's top level.  One
#: file serves every pass: rule ids are globally unique, so fingerprints
#: cannot collide across passes.
BASELINE_FILENAME = "detlint-baseline.json"


def fingerprint(path: str, rule: str, line_text: str, occurrence: int) -> str:
    """Stable identity of a finding: content-addressed, line-number-free."""
    normalized = " ".join(line_text.split())
    payload = f"{path}::{rule}::{normalized}::{occurrence}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:20]


@dataclass
class Baseline:
    """The committed set of grandfathered finding fingerprints."""

    path: Optional[Path] = None
    fingerprints: frozenset = frozenset()
    #: The normalized entry dicts as loaded, for stale-pruning rewrites.
    entries: Tuple[dict, ...] = ()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or int(data.get("version", -1)) != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} has unsupported schema "
                f"(expected version {BASELINE_VERSION})"
            )
        raw_entries = data.get("entries", [])
        if not isinstance(raw_entries, list):
            raise ValueError(f"baseline {path}: 'entries' must be a list")
        entries: List[dict] = []
        for index, entry in enumerate(raw_entries):
            if isinstance(entry, str):
                entries.append({"fingerprint": entry})
            elif isinstance(entry, dict) and isinstance(entry.get("fingerprint"), str):
                entries.append(dict(entry))
            else:
                # Malformed entries used to slip through silently (and then
                # never match anything -- a permanently stale accept).
                raise ValueError(
                    f"baseline {path}: entry {index} has no string 'fingerprint'"
                )
        prints = frozenset(entry["fingerprint"] for entry in entries)
        return cls(path=path, fingerprints=prints, entries=tuple(entries))

    @staticmethod
    def write(path: Path, findings: Sequence["ClassifiedFinding"]) -> None:
        """Persist ``findings`` as the new baseline (sorted, reviewable)."""
        entries = [
            {
                "rule": item.finding.rule,
                "path": item.finding.path,
                "fingerprint": item.fingerprint,
            }
            for item in findings
        ]
        Baseline.write_entries(path, entries)

    @staticmethod
    def write_entries(path: Path, entries: Sequence[dict]) -> None:
        ordered = sorted(
            entries,
            key=lambda entry: (
                entry.get("path", ""),
                entry.get("rule", ""),
                entry["fingerprint"],
            ),
        )
        payload = {"version": BASELINE_VERSION, "entries": ordered}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def find_default_baseline(paths: Sequence[Path]) -> Optional[Path]:
    """The nearest committed baseline for ``paths``: cwd, then parents of each path."""
    candidates = [Path.cwd() / BASELINE_FILENAME]
    for path in paths:
        resolved = Path(path).resolve()
        for parent in [resolved, *resolved.parents]:
            candidates.append(parent / BASELINE_FILENAME)
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None


# ---------------------------------------------------------------------------
# Scanning and classification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClassifiedFinding:
    """A finding plus its disposition (fresh / suppressed / baselined)."""

    finding: Finding
    fingerprint: str
    status: str  # "fresh" | "suppressed" | "baselined"
    line_text: str = ""
    pass_name: str = "detlint"


@dataclass
class ScanResult:
    """Everything one scan produced, ready for reporting and exit codes."""

    findings: List[ClassifiedFinding] = field(default_factory=list)
    files_scanned: int = 0
    errors: List[str] = field(default_factory=list)
    #: Names of the passes that ran, in report order.
    passes: Tuple[str, ...] = ("detlint",)
    #: Baseline fingerprints that matched no finding this scan (hygiene).
    stale_fingerprints: List[str] = field(default_factory=list)

    @property
    def fresh(self) -> List[ClassifiedFinding]:
        return [item for item in self.findings if item.status == "fresh"]

    @property
    def suppressed(self) -> List[ClassifiedFinding]:
        return [item for item in self.findings if item.status == "suppressed"]

    @property
    def baselined(self) -> List[ClassifiedFinding]:
        return [item for item in self.findings if item.status == "baselined"]

    def counts(self) -> Dict[str, int]:
        return {
            "files": self.files_scanned,
            "findings": len(self.findings),
            "fresh": len(self.fresh),
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "errors": len(self.errors),
            "stale": len(self.stale_fingerprints),
        }

    def pass_counts(self, pass_name: str) -> Dict[str, int]:
        subset = [item for item in self.findings if item.pass_name == pass_name]
        return {
            "files": self.files_scanned,
            "findings": len(subset),
            "fresh": sum(1 for item in subset if item.status == "fresh"),
            "suppressed": sum(1 for item in subset if item.status == "suppressed"),
            "baselined": sum(1 for item in subset if item.status == "baselined"),
        }


def _iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def _module_name(file_path: Path) -> str:
    """Best-effort dotted module name (for package-aware rules)."""
    parts = list(file_path.with_suffix("").parts)
    for marker in ("src",):
        if marker in parts:
            parts = parts[parts.index(marker) + 1:]
            break
    return ".".join(parts)


def _relative(path: Path) -> str:
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


class _Classifier:
    """Shared per-scan classification state (occurrences, baseline matches)."""

    def __init__(self, baseline: Optional[Baseline], strict: bool) -> None:
        self.baseline_prints = (
            baseline.fingerprints if baseline is not None else frozenset()
        )
        self.strict = strict
        self.matched_prints: set = set()
        self._occurrences: Dict[Tuple[str, str, str], int] = {}

    def classify(
        self,
        analysis_pass: AnalysisPass,
        finding: Finding,
        lines: Sequence[str],
    ) -> Optional[ClassifiedFinding]:
        if finding.rule not in analysis_pass.rules_by_id:  # pragma: no cover
            return None  # rule-table drift guard
        line_text = (
            lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        )
        normalized = " ".join(line_text.split())
        occ_key = (finding.path, finding.rule, normalized)
        occurrence = self._occurrences.get(occ_key, 0)
        self._occurrences[occ_key] = occurrence + 1
        print_ = fingerprint(finding.path, finding.rule, line_text, occurrence)
        if print_ in self.baseline_prints:
            self.matched_prints.add(print_)
        suppression = parse_suppression(line_text, tag=analysis_pass.name)
        if suppression is not None and suppression.covers(finding.rule):
            if self.strict and not suppression.rationale:
                finding = Finding(
                    finding.rule,
                    finding.path,
                    finding.line,
                    finding.message
                    + f" [suppression has no rationale; strict mode requires "
                    f"`# {analysis_pass.name}: ok {finding.rule} (reason)`]",
                )
                status = "fresh"
            else:
                status = "suppressed"
        elif print_ in self.baseline_prints:
            status = "baselined"
        else:
            status = "fresh"
        return ClassifiedFinding(
            finding,
            print_,
            status,
            line_text=line_text.strip(),
            pass_name=analysis_pass.name,
        )


def scan_paths(
    paths: Sequence[Path],
    passes: Optional[Sequence[AnalysisPass]] = None,
    baseline: Optional[Baseline] = None,
    strict: bool = False,
) -> ScanResult:
    """Scan ``paths`` (files and/or directory trees) with ``passes``.

    ``strict`` disables the baseline (grandfathered findings are classified
    as fresh) and requires every inline suppression to carry a rationale --
    suppressions remain visible, reviewed decisions at the offending line,
    never a side file.  ``passes`` defaults to every registered pass.
    """
    selected = tuple(passes) if passes is not None else all_passes()
    result = ScanResult(passes=tuple(p.name for p in selected))
    effective = None if strict else baseline
    classifier = _Classifier(effective, strict)
    scanners = [(p, p.scanner()) for p in selected]
    lines_by_path: Dict[str, List[str]] = {}
    for file_path in _iter_python_files([Path(p) for p in paths]):
        rel = _relative(file_path)
        result.files_scanned += 1
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=rel)
        except (OSError, SyntaxError, ValueError) as exc:
            result.errors.append(f"{rel}: {exc}")
            continue
        lines = source.splitlines()
        lines_by_path[rel] = lines
        module = _module_name(file_path)
        for analysis_pass, scanner in scanners:
            for finding in scanner.check(tree, source, rel, module):
                item = classifier.classify(analysis_pass, finding, lines)
                if item is not None:
                    result.findings.append(item)
    for analysis_pass, scanner in scanners:
        for finding in scanner.finish():
            lines = lines_by_path.get(finding.path, [])
            item = classifier.classify(analysis_pass, finding, lines)
            if item is not None:
                result.findings.append(item)
    if effective is not None:
        result.stale_fingerprints = sorted(
            effective.fingerprints - classifier.matched_prints
        )
    return result


def scan_file(
    file_path: Path,
    passes: Optional[Sequence[AnalysisPass]] = None,
    baseline: Optional[Baseline] = None,
) -> Tuple[List[ClassifiedFinding], Optional[str]]:
    """Scan one file; returns ``(classified findings, error message or None)``."""
    result = scan_paths([file_path], passes=passes, baseline=baseline)
    return result.findings, (result.errors[0] if result.errors else None)


def exit_code(result: ScanResult) -> int:
    """The shared exit-code model: 2 errors, 1 fresh findings, 0 clean."""
    if result.errors:
        return 2
    return 1 if result.fresh else 0


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


def render_report(result: ScanResult, fmt: str, out: TextIO) -> None:
    """Write the findings report (text / json / github) for ``result``."""
    if fmt == "json":
        payload = {
            "counts": result.counts(),
            "passes": {name: result.pass_counts(name) for name in result.passes},
            "findings": [
                {
                    "pass": item.pass_name,
                    "rule": item.finding.rule,
                    "path": item.finding.path,
                    "line": item.finding.line,
                    "status": item.status,
                    "fingerprint": item.fingerprint,
                    "message": item.finding.message,
                }
                for item in result.findings
            ],
            "errors": result.errors,
            "stale": result.stale_fingerprints,
        }
        out.write(json.dumps(payload, indent=2) + "\n")
        return
    if fmt == "github":
        # GitHub Actions workflow commands: strict CI failures annotate the
        # PR diff at the offending file/line.
        for item in result.fresh:
            out.write(
                "::error file={path},line={line},title={rule}::{message}\n".format(
                    path=item.finding.path,
                    line=item.finding.line,
                    rule=item.finding.rule,
                    message=item.finding.message,
                )
            )
        for error in result.errors:
            out.write(f"::error::{error}\n")
        for print_ in result.stale_fingerprints:
            out.write(
                f"::warning::stale baseline entry {print_} matches no finding "
                "(run --prune-baseline)\n"
            )
        _render_footers(result, out)
        return
    for item in result.fresh:
        out.write(item.finding.render() + "\n")
        if item.line_text:
            out.write(f"    {item.line_text}\n")
    for error in result.errors:
        out.write(f"error: {error}\n")
    if result.stale_fingerprints:
        out.write(
            f"[analyze] baseline: {len(result.stale_fingerprints)} stale "
            "entries match no finding (run --prune-baseline to drop them)\n"
        )
    _render_footers(result, out)


def _render_footers(result: ScanResult, out: TextIO) -> None:
    for name in result.passes:
        counts = result.pass_counts(name)
        out.write(
            "[{name}] files={files} findings={findings} fresh={fresh} "
            "suppressed={suppressed} baselined={baselined}\n".format(
                name=name, **counts
            )
        )


# ---------------------------------------------------------------------------
# CLI (``repro analyze`` / ``python -m repro.analysis``)
# ---------------------------------------------------------------------------


def build_parser(prog: str = "repro-analyze") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Static-analysis passes for the bit-identity contract: detlint "
            "(determinism hazards), parlint (kernel-twin/lowering drift) and "
            "lifelint (shared-memory and executor lifecycles)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directory trees to scan (default: src)",
    )
    parser.add_argument(
        "--pass",
        dest="pass_name",
        choices=("detlint", "parlint", "lifelint", "all"),
        default="all",
        help="which analyzer to run (default: all)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="ignore the baseline and require suppression rationales: every "
        "unsuppressed finding fails (CI mode)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline file of grandfathered findings "
        f"(default: nearest {BASELINE_FILENAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="do not load any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather every current finding, "
        "then exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="rewrite the baseline without stale entries (fingerprints that "
        "no longer match any finding), then exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue of the selected passes and exit",
    )
    return parser


def _selected_passes(pass_name: str) -> Tuple[AnalysisPass, ...]:
    if pass_name == "all":
        return all_passes()
    return (get_pass(pass_name),)


def run(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    """Parse ``argv``, scan, report to ``out`` (default stdout); return exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    selected = _selected_passes(args.pass_name)

    if args.list_rules:
        for analysis_pass in selected:
            out.write(f"[{analysis_pass.name}] {analysis_pass.description}\n")
            for rule in analysis_pass.rules:
                out.write(f"{rule.rule_id}  {rule.name}\n    {rule.hazard}\n")
        return 0

    paths: List[Path] = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        out.write(f"error: no such path: {', '.join(missing)}\n")
        return 2

    baseline: Optional[Baseline] = None
    if not args.no_baseline:
        baseline_path = (
            Path(args.baseline) if args.baseline else find_default_baseline(paths)
        )
        if args.baseline and not Path(args.baseline).is_file():
            out.write(f"error: baseline file {args.baseline} does not exist\n")
            return 2
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
                out.write(f"error: cannot load baseline {baseline_path}: {exc}\n")
                return 2

    result = scan_paths(paths, passes=selected, baseline=baseline, strict=args.strict)

    if args.write_baseline:
        target = (
            Path(args.baseline)
            if args.baseline
            else (
                baseline.path
                if baseline and baseline.path
                else Path(BASELINE_FILENAME)
            )
        )
        # Grandfather everything that is not inline-suppressed.
        Baseline.write(
            target,
            [item for item in result.findings if item.status != "suppressed"],
        )
        out.write(
            f"[analyze] wrote baseline {target} ({len(result.findings)} findings)\n"
        )
        return 0

    if args.prune_baseline:
        if baseline is None or baseline.path is None:
            out.write("error: --prune-baseline needs a baseline file to prune\n")
            return 2
        stale = set(result.stale_fingerprints)
        kept = [e for e in baseline.entries if e["fingerprint"] not in stale]
        Baseline.write_entries(baseline.path, kept)
        out.write(
            f"[analyze] pruned {len(stale)} stale entries from {baseline.path} "
            f"({len(kept)} kept)\n"
        )
        return 0

    render_report(result, args.format, out)
    return exit_code(result)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point (kept separate so tests can call :func:`run`)."""
    return run(argv)
