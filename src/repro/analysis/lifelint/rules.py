"""lifelint: resource-lifecycle checks for the shm/pool substrate (RES3xx).

The parallel engine's substrate acquires resources whose leaks outlive the
process: ``multiprocessing.shared_memory`` segments persist in ``/dev/shm``
until unlinked, executors hold worker processes, and payloads crossing the
process boundary must pickle.  The runtime defenses (refcounted
``SegmentRegistry``, finalizer backstops, the post-suite ``/dev/shm`` sweep)
catch leaks only on the interleavings the tests happen to run; these rules
check the *acquire/release shape* of every function statically.

The rules are flow-aware but deliberately local (one function at a time,
names only -- no aliasing across calls, no inter-procedural paths):

* **RES301** a ``SharedMemory(create=True, ...)`` binding must be followed
  by a ``try`` whose handler/finally releases it (``.close()`` /
  ``.unlink()``), an inline release, or an immediate ownership handoff
  (returned / passed to a call / stored on an object) before any other use
  -- otherwise an exception between creation and handoff leaks the segment.
* **RES302** ``unlink()`` through an attaching (non-owner) mapping --
  ``SharedMemory(name=...)`` without ``create=True`` or ``*.attach(...)`` --
  destroys a segment the caller does not own.
* **RES303** subscript writes through an attached mapping's buffer (or a
  view built over it) mutate shared state; attach-side views are read-only
  by contract.
* **RES304** a locally bound executor (``WorkerPool`` /
  ``ProcessPoolExecutor`` / ``ThreadPoolExecutor``) with no ``with``, no
  ``.shutdown()`` and no ownership handoff leaks its workers.
* **RES305** submitting a lambda or a locally defined function/class across
  the process boundary (``.submit`` / ``.map`` / ``.apply_async``) fails to
  pickle at runtime; payloads must be module-level.
* **RES306** a ``.acquire(...)`` statement in a function with no
  ``.release(`` anywhere leaks the refcount on every path.

Sanctioned idioms these rules stay silent on (see ``engine/shm.py`` and
``engine/parallel.py``): create-then-``try`` with a ``BaseException``
handler that closes and unlinks; ``self._pool = WorkerPool(...)`` (the
owner object's ``shutdown`` releases it); ``registry.acquire`` bracketed by
release calls in ``except``/``finally``; module-level worker functions.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.framework import (
    AnalysisPass,
    Finding,
    PassScanner,
    Rule,
    register_pass,
)

__all__ = ["LIFELINT_PASS", "RULES", "RULES_BY_ID", "check_module"]

RULES: Tuple[Rule, ...] = (
    Rule(
        "RES301",
        "shm-create-leak",
        "a created SharedMemory segment used before any guarded release "
        "or ownership handoff leaks /dev/shm space (beyond process "
        "lifetime) if the in-between code raises",
    ),
    Rule(
        "RES302",
        "attach-side-unlink",
        "unlink() through an attached (non-owner) mapping destroys a "
        "segment other processes still use; only the owning process may "
        "unlink, exactly once",
    ),
    Rule(
        "RES303",
        "attached-view-write",
        "writes through an attached shm buffer (or a view over it) mutate "
        "state shared with every sibling worker; attach-side views are "
        "read-only by contract",
    ),
    Rule(
        "RES304",
        "executor-leak",
        "a locally created executor/WorkerPool with no `with`, no "
        "shutdown() and no handoff leaks its worker processes on every "
        "path",
    ),
    Rule(
        "RES305",
        "unpicklable-submit",
        "lambdas and locally defined functions/classes cannot pickle "
        "across the process boundary; submit module-level callables",
    ),
    Rule(
        "RES306",
        "acquire-release-imbalance",
        "an acquire() with no release() anywhere in the function leaks "
        "the refcount (and with it the resource) on every path",
    ),
)

RULES_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in RULES}

_EXECUTOR_TYPES = frozenset(
    {"ProcessPoolExecutor", "ThreadPoolExecutor", "WorkerPool"}
)
_SUBMIT_METHODS = frozenset({"submit", "map", "apply_async", "starmap"})
_SHM_RELEASE_METHODS = frozenset({"close", "unlink"})


def _call_tail(node: ast.AST) -> Optional[str]:
    """Last component of the called name: ``f`` for ``f(...)`` / ``a.b.f(...)``."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _kw_true(node: ast.Call, name: str) -> bool:
    for keyword in node.keywords:
        if (
            keyword.arg == name
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
        ):
            return True
    return False


def _is_shm_create(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and _call_tail(node) == "SharedMemory"
        and _kw_true(node, "create")
    )


def _is_shm_attach(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    tail = _call_tail(node)
    if tail == "SharedMemory" and not _kw_true(node, "create"):
        return True
    return tail == "attach"


def _is_executor_create(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and _call_tail(node) in _EXECUTOR_TYPES


def _uses_name(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node)
    )


def _release_calls(node: ast.AST, name: str, methods: frozenset) -> bool:
    """Whether ``node`` contains ``name.<method>()`` for any of ``methods``."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in methods
            and isinstance(sub.func.value, ast.Name)
            and sub.func.value.id == name
        ):
            return True
    return False


def _is_handoff(stmt: ast.stmt, name: str) -> bool:
    """Whether ``stmt`` transfers ownership of ``name`` out of the function.

    Passing the object to a call (a constructor, a registry, ``weakref.
    finalize``), returning/yielding it, or storing it on an object/container
    all hand the release obligation to the receiver.
    """
    if isinstance(stmt, (ast.Return,)) and stmt.value is not None:
        if _uses_name(stmt.value, name):
            return True
    for sub in ast.walk(stmt):
        if isinstance(sub, ast.Call):
            args = list(sub.args) + [kw.value for kw in sub.keywords]
            receiver = sub.func.value if isinstance(sub.func, ast.Attribute) else None
            if any(_uses_name(arg, name) for arg in args):
                return True
            if receiver is not None and not (
                isinstance(receiver, ast.Name) and receiver.id == name
            ) and _uses_name(receiver, name):
                return True
        if isinstance(sub, (ast.Yield, ast.YieldFrom)) and sub.value is not None:
            if _uses_name(sub.value, name):
                return True
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)) and _uses_name(
                    sub.value, name
                ):
                    return True
    return False


def _guarded_release(try_stmt: ast.Try, name: str) -> bool:
    """Whether a ``try`` releases ``name`` in a handler or ``finally``."""
    for handler in try_stmt.handlers:
        for stmt in handler.body:
            if _release_calls(stmt, name, _SHM_RELEASE_METHODS):
                return True
    for stmt in try_stmt.finalbody:
        if _release_calls(stmt, name, _SHM_RELEASE_METHODS):
            return True
    return False


def _function_statements(func: ast.AST) -> List[ast.stmt]:
    """Every statement in ``func``'s own body, nested defs excluded."""
    collected: List[ast.stmt] = []

    def walk(stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            collected.append(stmt)
            # Recurse through compound-statement blocks only.
            for field_name in ("body", "orelse", "finalbody"):
                walk(getattr(stmt, field_name, []) or [])
            for handler in getattr(stmt, "handlers", []) or []:
                walk(handler.body)

    walk(func.body)
    return collected


def _function_nodes(func: ast.AST) -> List[ast.AST]:
    """Every AST node under ``func``, nested def/class subtrees excluded.

    Expression-level checks iterate this flat list so each node is seen
    exactly once (walking every statement in :func:`_function_statements`
    would re-visit nodes nested inside compound statements).
    """
    collected: List[ast.AST] = []
    pending: List[ast.AST] = list(ast.iter_child_nodes(func))
    while pending:
        node = pending.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        collected.append(node)
        pending.extend(ast.iter_child_nodes(node))
    return collected


class _FunctionChecker:
    """All lifecycle checks for one function body."""

    def __init__(self, func: ast.AST, path: str, findings: List[Finding]) -> None:
        self.func = func
        self.path = path
        self.findings = findings
        self.statements = _function_statements(func)
        self.nodes = _function_nodes(func)
        #: Locally bound resource flavors: name -> "create" | "attach".
        self.shm_flavor: Dict[str, str] = {}
        #: Names aliasing an attached mapping's buffer or a view over it.
        self.attached_views: Set[str] = set()
        #: Locally defined (unpicklable cross-process) callables/classes.
        self.local_defs: Set[str] = {
            stmt.name
            for stmt in ast.walk(self.func)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and stmt is not self.func
        }

    def run(self) -> None:
        self._bind_flavors()
        self._check_shm_create_leaks()
        self._check_attach_side_unlink()
        self._check_attached_view_writes()
        self._check_executor_leaks()
        self._check_submissions()
        self._check_acquire_release()

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(rule, self.path, getattr(node, "lineno", 1), message)
        )

    # ------------------------------------------------------------ binding --
    def _bind_flavors(self) -> None:
        for stmt in self.statements:
            for name, value in self._simple_binds(stmt):
                if _is_shm_create(value):
                    self.shm_flavor[name] = "create"
                elif _is_shm_attach(value):
                    self.shm_flavor[name] = "attach"
                elif self._is_attached_buffer(value):
                    self.attached_views.add(name)

    @staticmethod
    def _simple_binds(stmt: ast.stmt) -> List[Tuple[str, ast.AST]]:
        pairs: List[Tuple[str, ast.AST]] = []
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    pairs.append((target.id, stmt.value))
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                pairs.append((stmt.target.id, stmt.value))
        return pairs

    def _is_attached_buffer(self, value: ast.AST) -> bool:
        """``x.buf`` of an attach-bound name, or a view built over one."""
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "buf"
            and isinstance(value.value, ast.Name)
            and self.shm_flavor.get(value.value.id) == "attach"
        ):
            return True
        if isinstance(value, ast.Call):
            for keyword in value.keywords:
                if keyword.arg == "buffer" and self._references_attached(keyword.value):
                    return True
        return False

    def _references_attached(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and (
                sub.id in self.attached_views
            ):
                return True
            if (
                isinstance(sub, ast.Attribute)
                and sub.attr == "buf"
                and isinstance(sub.value, ast.Name)
                and self.shm_flavor.get(sub.value.id) == "attach"
            ):
                return True
        return False

    # ------------------------------------------------------------- RES301 --
    def _check_shm_create_leaks(self) -> None:
        self._scan_block_for_creates(getattr(self.func, "body", []))

    def _scan_block_for_creates(self, stmts: List[ast.stmt]) -> None:
        for index, stmt in enumerate(stmts):
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for name, value in self._simple_binds(stmt):
                if _is_shm_create(value):
                    self._judge_create(name, stmt, stmts[index + 1:])
            for field_name in ("body", "orelse", "finalbody"):
                self._scan_block_for_creates(getattr(stmt, field_name, []) or [])
            for handler in getattr(stmt, "handlers", []) or []:
                self._scan_block_for_creates(handler.body)

    def _judge_create(
        self, name: str, create_stmt: ast.stmt, rest: List[ast.stmt]
    ) -> None:
        for stmt in rest:
            if isinstance(stmt, ast.Try):
                if _guarded_release(stmt, name):
                    return  # the sanctioned create-then-guarded-try idiom
                if _uses_name(stmt, name):
                    break  # used under a try that never releases: leak path
                continue
            if isinstance(stmt, ast.With):
                if _uses_name(stmt, name):
                    return  # context-managed (or handed to one)
                continue
            if _release_calls(stmt, name, _SHM_RELEASE_METHODS):
                return  # inline linear release
            if any(
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "finalize"
                and any(_uses_name(arg, name) for arg in sub.args)
                for sub in ast.walk(stmt)
            ):
                return  # weakref.finalize backstop registered
            if _uses_name(stmt, name):
                if _is_handoff(stmt, name):
                    return  # ownership transferred before anything can raise
                break  # some other use first: a raise in it leaks the segment
        self._report(
            "RES301",
            create_stmt,
            f"SharedMemory segment `{name}` is created but not released on "
            "the exception path: wrap the follow-up work in try/except "
            "(closing and unlinking in the handler) or hand the segment off "
            "immediately",
        )

    # ------------------------------------------------------------- RES302 --
    def _check_attach_side_unlink(self) -> None:
        for sub in self.nodes:
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "unlink"
            ):
                continue
            receiver = sub.func.value
            attached = (
                isinstance(receiver, ast.Name)
                and self.shm_flavor.get(receiver.id) == "attach"
            ) or _is_shm_attach(receiver)
            if attached:
                self._report(
                    "RES302",
                    sub,
                    "unlink() through an attached (non-owner) mapping; "
                    "only the owning process may unlink a segment, "
                    "exactly once",
                )

    # ------------------------------------------------------------- RES303 --
    def _check_attached_view_writes(self) -> None:
        for sub in self.nodes:
            if not (
                isinstance(sub, ast.Subscript)
                and isinstance(sub.ctx, (ast.Store, ast.Del))
            ):
                continue
            base = sub.value
            attached = (
                isinstance(base, ast.Name) and base.id in self.attached_views
            ) or (
                isinstance(base, ast.Attribute)
                and base.attr == "buf"
                and isinstance(base.value, ast.Name)
                and self.shm_flavor.get(base.value.id) == "attach"
            )
            if attached:
                self._report(
                    "RES303",
                    sub,
                    "write through an attached shm view; attach-side "
                    "buffers are read-only by contract (the owner wrote "
                    "them before publishing)",
                )

    # ------------------------------------------------------------- RES304 --
    def _check_executor_leaks(self) -> None:
        with_names: Set[str] = set()
        with_exprs: List[ast.AST] = []
        for stmt in self.statements:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    with_exprs.append(item.context_expr)
                    if isinstance(item.optional_vars, ast.Name):
                        with_names.add(item.optional_vars.id)
        for stmt in self.statements:
            for name, value in self._simple_binds(stmt):
                if not _is_executor_create(value):
                    continue
                if name in with_names:
                    continue
                released = any(
                    _release_calls(other, name, frozenset({"shutdown"}))
                    for other in self.statements
                )
                handed_off = any(
                    _is_handoff(other, name)
                    for other in self.statements
                    if other is not stmt
                )
                managed = any(_uses_name(expr, name) for expr in with_exprs)
                if not (released or handed_off or managed):
                    self._report(
                        "RES304",
                        stmt,
                        f"executor `{name}` is created but never shut down: "
                        "use `with`, call .shutdown(), or hand ownership to "
                        "an object that does",
                    )

    # ------------------------------------------------------------- RES305 --
    def _check_submissions(self) -> None:
        for sub in self.nodes:
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _SUBMIT_METHODS
            ):
                continue
            for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                if isinstance(arg, ast.Lambda):
                    self._report(
                        "RES305",
                        arg,
                        "lambda submitted across the process boundary "
                        "cannot pickle; use a module-level function",
                    )
                elif isinstance(arg, ast.Name) and arg.id in self.local_defs:
                    self._report(
                        "RES305",
                        arg,
                        f"locally defined `{arg.id}` submitted across "
                        "the process boundary cannot pickle; define it "
                        "at module level",
                    )

    # ------------------------------------------------------------- RES306 --
    def _check_acquire_release(self) -> None:
        has_release = any(
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "release"
            for sub in self.nodes
        )
        if has_release:
            return
        for stmt in self.statements:
            if not isinstance(stmt, ast.Expr):
                continue
            call = stmt.value
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "acquire"
            ):
                self._report(
                    "RES306",
                    call,
                    "acquire() with no release() anywhere in this function "
                    "leaks the refcount on every path; bracket the work with "
                    "try/finally release",
                )


def check_tree(tree: ast.Module, path: str, module_name: str = "") -> List[Finding]:
    """All lifecycle findings for one parsed module."""
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _FunctionChecker(node, path, findings).run()
    return sorted(findings, key=lambda f: (f.line, f.rule))


def check_module(source: str, path: str, module_name: str = "") -> List[Finding]:
    return check_tree(ast.parse(source, filename=path), path, module_name)


class _Scanner(PassScanner):
    def check(
        self, tree: ast.Module, source: str, path: str, module_name: str
    ) -> List[Finding]:
        return check_tree(tree, path, module_name)


LIFELINT_PASS = register_pass(
    AnalysisPass(
        name="lifelint",
        description=(
            "resource lifecycles in the shm/pool substrate: guarded segment "
            "release, owner-only unlink, read-only attach views, executor "
            "shutdown, picklable cross-process payloads"
        ),
        rules=RULES,
        scanner=_Scanner,
    )
)
