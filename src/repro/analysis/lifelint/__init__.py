"""lifelint: resource-lifecycle checks for the shm/pool substrate (RES3xx).

Registered as an analysis-framework pass; run it via ``repro analyze --pass
lifelint`` (or ``python -m repro.analysis --pass lifelint``).  See
:mod:`repro.analysis.lifelint.rules` for the rule catalogue and DESIGN.md §7
for the framework.
"""

from repro.analysis.lifelint.rules import (
    LIFELINT_PASS,
    RULES,
    RULES_BY_ID,
    check_module,
)

__all__ = ["LIFELINT_PASS", "RULES", "RULES_BY_ID", "check_module"]
