"""Descriptive statistics of DDGs and programs.

These are used by the workload generator's self-checks (the per-benchmark
profiles target specific ILP / dependence characteristics), by reports, and
by several tests that assert the synthetic SPEC-like programs actually differ
in the dimensions that matter for steering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.criticality import compute_criticality
from repro.program.ddg import DataDependenceGraph, build_ddg
from repro.program.program import Program
from repro.uops.opcodes import UopClass


@dataclass(frozen=True)
class DDGStats:
    """Shape statistics of one data-dependence graph."""

    num_nodes: int
    num_edges: int
    critical_path_length: int
    #: Average number of instructions per critical-path cycle -- a static
    #: upper bound on achievable IPC for the region (ILP of the region).
    ilp: float
    #: Mean number of successors per node (fan-out).
    mean_fanout: float
    #: Fraction of nodes on a critical path.
    critical_fraction: float


def ddg_statistics(ddg: DataDependenceGraph) -> DDGStats:
    """Compute :class:`DDGStats` for ``ddg``."""
    n = len(ddg)
    if n == 0:
        return DDGStats(0, 0, 0, 0.0, 0.0, 0.0)
    crit = compute_criticality(ddg)
    length = max(1, crit.critical_path_length)
    critical_nodes = len(crit.critical_nodes())
    return DDGStats(
        num_nodes=n,
        num_edges=ddg.num_edges,
        critical_path_length=crit.critical_path_length,
        ilp=n / length,
        mean_fanout=ddg.num_edges / n,
        critical_fraction=critical_nodes / n,
    )


def program_statistics(program: Program) -> Dict[str, float]:
    """Aggregate statistics over every basic block of ``program``.

    Returns a flat dictionary suitable for tabular reports:

    ``num_blocks``, ``num_instructions``, ``mean_block_size``, ``fp_fraction``,
    ``memory_fraction``, ``branch_fraction``, ``mean_block_ilp``,
    ``mean_critical_path``.
    """
    block_sizes: List[int] = []
    ilps: List[float] = []
    critical_paths: List[int] = []
    class_counts: Dict[UopClass, int] = {}
    total = 0
    for bid in sorted(program.blocks):
        block = program.block(bid)
        if len(block) == 0:
            continue
        block_sizes.append(len(block))
        stats = ddg_statistics(build_ddg(block.instructions))
        ilps.append(stats.ilp)
        critical_paths.append(stats.critical_path_length)
        for inst in block.instructions:
            class_counts[inst.opclass] = class_counts.get(inst.opclass, 0) + 1
            total += 1
    if total == 0:
        raise ValueError("program has no instructions")
    fp = sum(class_counts.get(c, 0) for c in (UopClass.FP_ADD, UopClass.FP_MUL, UopClass.FP_DIV))
    mem = class_counts.get(UopClass.LOAD, 0) + class_counts.get(UopClass.STORE, 0)
    br = class_counts.get(UopClass.BRANCH, 0)
    return {
        "num_blocks": float(program.num_blocks),
        "num_instructions": float(total),
        "mean_block_size": float(np.mean(block_sizes)),
        "fp_fraction": fp / total,
        "memory_fraction": mem / total,
        "branch_fraction": br / total,
        "mean_block_ilp": float(np.mean(ilps)),
        "mean_critical_path": float(np.mean(critical_paths)),
    }
