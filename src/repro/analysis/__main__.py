"""``python -m repro.analysis``: run the static-analysis passes.

Defaults to every registered pass (detlint, parlint, lifelint); select one
with ``--pass``.  See :mod:`repro.analysis.framework` for the shared
suppression/baseline machinery and DESIGN.md §7 for the model.
"""

import sys

from repro.analysis.framework import main

if __name__ == "__main__":
    sys.exit(main())
