"""``python -m repro.analysis``: run the determinism lint."""

import sys

from repro.analysis.detlint import main

if __name__ == "__main__":
    sys.exit(main())
