"""Completion-time estimation for the VC partitioner.

Figure 2 (second step of the paper's algorithm):

    "for each instruction, the benefit of assigning the instruction to all
    possible VCs is computed and the cluster with the best benefit is
    selected.  In order to compute such expected benefit, the completion time
    of the instruction is used.  In the proposed scheme, the completion time
    for a particular instruction is estimated based on the dependences, the
    latencies, and the resource contention in the intended cluster."

:class:`CompletionTimeEstimator` implements that estimate for a partial
assignment of DDG nodes to virtual clusters:

* **dependences / latencies**: the instruction can start only when all its
  already-assigned producers have completed, paying the inter-cluster
  communication latency for producers assigned to a different virtual
  cluster;
* **resource contention**: each virtual cluster has a nominal issue bandwidth
  (the per-cluster width of the target machine); the estimator tracks how
  many operations are already assigned to the cluster and models the earliest
  issue slot accordingly.

The estimate is intentionally static -- the paper stresses that it "may not
be accurate enough for a dynamically-scheduled processor", which is exactly
why the hardware half of the hybrid scheme re-maps virtual clusters at run
time.
"""

from __future__ import annotations

from typing import List, Optional

from repro.program.ddg import DataDependenceGraph


class CompletionTimeEstimator:
    """Incremental completion-time estimator over a DDG.

    Parameters
    ----------
    ddg:
        The region's data-dependence graph.
    num_virtual_clusters:
        Number of virtual clusters instructions may be assigned to.
    issue_width:
        Nominal per-cluster issue bandwidth used for the contention estimate
        (operations per cycle).
    communication_latency:
        Estimated cost (cycles) of a cross-cluster dependence.
    """

    def __init__(
        self,
        ddg: DataDependenceGraph,
        num_virtual_clusters: int,
        issue_width: int = 2,
        communication_latency: int = 1,
        contention_mode: str = "relative",
    ) -> None:
        if num_virtual_clusters < 1:
            raise ValueError("num_virtual_clusters must be positive")
        if issue_width < 1:
            raise ValueError("issue_width must be positive")
        if contention_mode not in ("relative", "absolute"):
            raise ValueError("contention_mode must be 'relative' or 'absolute'")
        self.ddg = ddg
        self.num_virtual_clusters = int(num_virtual_clusters)
        self.issue_width = int(issue_width)
        self.communication_latency = int(communication_latency)
        self.contention_mode = contention_mode
        #: Completion time of each assigned node (None until assigned).
        self.completion: List[Optional[int]] = [None] * len(ddg)
        #: Virtual cluster of each assigned node (None until assigned).
        self.assignment: List[Optional[int]] = [None] * len(ddg)
        #: Number of operations assigned so far to each virtual cluster.
        self.load: List[int] = [0] * self.num_virtual_clusters

    # -- estimation --------------------------------------------------------------
    def ready_time(self, node: int, vc: int) -> int:
        """Earliest cycle at which ``node``'s operands are available on ``vc``.

        Producers assigned to a different virtual cluster add the
        communication latency; unassigned producers (which can only happen if
        the traversal order is not topological) are treated as available at
        cycle 0.
        """
        ready = 0
        for pred in self.ddg.preds[node]:
            completion = self.completion[pred]
            if completion is None:
                continue
            transfer = 0 if self.assignment[pred] == vc else self.communication_latency
            candidate = completion + transfer
            if candidate > ready:
                ready = candidate
        return ready

    def contention_delay(self, vc: int) -> int:
        """Extra start delay caused by operations already assigned to ``vc``.

        Two models are provided:

        * ``"absolute"`` -- with ``issue_width`` operations issuing per cycle,
          the ``k``-th operation assigned to a cluster cannot start before
          cycle ``k // issue_width``.  This spreads work aggressively (the
          behaviour of the per-operation SPDI placer).
        * ``"relative"`` (default) -- only the *excess* of the cluster's load
          over the average load across clusters delays the operation.  An
          out-of-order core overlaps far more work than a static estimate can
          see, so absolute occupancy is a poor predictor; what the compiler
          can usefully penalise is imbalance.  This is the model used by the
          VC partitioner, which is meant to keep dependent instructions
          together unless a virtual cluster becomes clearly overloaded.
        """
        if self.contention_mode == "absolute":
            return self.load[vc] // self.issue_width
        average = sum(self.load) / self.num_virtual_clusters
        excess = self.load[vc] - average
        if excess <= 0:
            return 0
        return int(excess) // self.issue_width

    def estimate(self, node: int, vc: int) -> int:
        """Estimated completion time of ``node`` if it were assigned to ``vc``."""
        if not 0 <= vc < self.num_virtual_clusters:
            raise ValueError(f"virtual cluster {vc} out of range")
        start = max(self.ready_time(node, vc), self.contention_delay(vc))
        return start + self.ddg.instructions[node].latency

    # -- commitment --------------------------------------------------------------
    def assign(self, node: int, vc: int) -> int:
        """Commit ``node`` to virtual cluster ``vc`` and return its completion time."""
        completion = self.estimate(node, vc)
        self.completion[node] = completion
        self.assignment[node] = vc
        self.load[vc] += 1
        return completion

    def balance(self) -> float:
        """Assigned-load balance in [0, 1]; 1 means perfectly even distribution."""
        total = sum(self.load)
        if total == 0:
            return 1.0
        ideal = total / self.num_virtual_clusters
        worst = max(self.load)
        return min(1.0, ideal / worst) if worst else 1.0
