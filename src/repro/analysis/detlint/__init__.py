"""Determinism lint: the static-analysis gate for the bit-identity contract.

Public surface:

* :data:`~repro.analysis.detlint.rules.RULES` -- the rule catalogue.
* :func:`~repro.analysis.detlint.engine.scan_paths` -- programmatic scans.
* :func:`~repro.analysis.detlint.cli.main` -- the CLI entry point shared by
  ``python -m repro.analysis``, ``scripts/detlint.py`` and ``repro analyze``.
"""

from repro.analysis.detlint.cli import main, run
from repro.analysis.detlint.engine import (
    Baseline,
    ClassifiedFinding,
    ScanResult,
    fingerprint,
    scan_paths,
    suppressed_rules,
)
from repro.analysis.detlint.rules import RULES, RULES_BY_ID, Finding, check_module

__all__ = [
    "Baseline",
    "ClassifiedFinding",
    "Finding",
    "RULES",
    "RULES_BY_ID",
    "ScanResult",
    "check_module",
    "fingerprint",
    "main",
    "run",
    "scan_paths",
    "suppressed_rules",
]
