"""Command-line front end for the determinism lint, detlint only.

This is the PR 7 single-pass CLI, kept byte-compatible for
``scripts/detlint.py`` and existing callers.  The multi-pass front end
(detlint + parlint + lifelint, ``--pass`` selection, ``--format github``,
``--prune-baseline``) lives in :mod:`repro.analysis.framework` and backs
``python -m repro.analysis`` and ``repro analyze``.

Exit codes: ``0`` no fresh findings, ``1`` fresh findings, ``2`` usage or
scan errors (unparseable file, broken baseline).  Strict mode ignores the
baseline so CI enforces a zero-finding tree; see DESIGN.md §7.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, TextIO

from repro.analysis.detlint.engine import (
    Baseline,
    ScanResult,
    find_default_baseline,
    scan_paths,
)
from repro.analysis.detlint.rules import RULES

__all__ = ["main", "build_parser", "run", "render_report"]


def build_parser(prog: str = "detlint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Determinism lint: static checks for the hazards that break the "
            "bit-identity contract (unseeded RNG, wall-clock reads, stray "
            "env lookups, unordered iteration, shared-state writes)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directory trees to scan (default: src)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="ignore the baseline: every unsuppressed finding fails (CI mode)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline file of grandfathered findings "
        "(default: nearest detlint-baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="do not load any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather every current finding, "
        "then exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def render_report(result: ScanResult, fmt: str, out: TextIO) -> None:
    """Write the findings report (text or json) for ``result`` to ``out``."""
    if fmt == "json":
        payload = {
            "counts": result.counts(),
            "findings": [
                {
                    "rule": item.finding.rule,
                    "path": item.finding.path,
                    "line": item.finding.line,
                    "status": item.status,
                    "fingerprint": item.fingerprint,
                    "message": item.finding.message,
                }
                for item in result.findings
            ],
            "errors": result.errors,
        }
        out.write(json.dumps(payload, indent=2) + "\n")
        return
    for item in result.findings:
        if item.status == "fresh":
            out.write(item.finding.render() + "\n")
            if item.line_text:
                out.write(f"    {item.line_text}\n")
    for error in result.errors:
        out.write(f"error: {error}\n")
    counts = result.counts()
    out.write(
        "[detlint] files={files} findings={findings} fresh={fresh} "
        "suppressed={suppressed} baselined={baselined}\n".format(**counts)
    )


def run(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    """Parse ``argv``, scan, report to ``out`` (default stdout); return exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            out.write(f"{rule.rule_id}  {rule.name}\n    {rule.hazard}\n")
        return 0

    paths: List[Path] = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        out.write(f"error: no such path: {', '.join(missing)}\n")
        return 2

    baseline: Optional[Baseline] = None
    if not args.no_baseline:
        baseline_path = (
            Path(args.baseline) if args.baseline else find_default_baseline(paths)
        )
        if args.baseline and not Path(args.baseline).is_file():
            out.write(f"error: baseline file {args.baseline} does not exist\n")
            return 2
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
                out.write(f"error: cannot load baseline {baseline_path}: {exc}\n")
                return 2

    result = scan_paths(paths, baseline=baseline, strict=args.strict)

    if args.write_baseline:
        target = (
            Path(args.baseline)
            if args.baseline
            else (baseline.path if baseline and baseline.path else Path("detlint-baseline.json"))
        )
        # Grandfather everything that is not inline-suppressed.
        Baseline.write(
            target,
            [item for item in result.findings if item.status != "suppressed"],
        )
        out.write(f"[detlint] wrote baseline {target} ({len(result.findings)} findings)\n")
        return 0

    render_report(result, args.format, out)
    if result.errors:
        return 2
    return 1 if result.fresh else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point (kept separate so tests can call :func:`run`)."""
    return run(argv)
