"""The determinism-lint rule set.

Each rule is an AST check tuned to one hazard class that has actually
threatened (or would threaten) this codebase's bit-identity contract: the
golden/determinism/parity suites assert that every execution substrate --
serial interpreter, vectorized kernel, process pools, shared-memory segments,
cache replay -- produces byte-for-byte identical metrics.  Dynamic tests
sample that contract on the workloads they happen to run; these rules check
the hazard *patterns* on every line of every file (see DESIGN.md §7).

Rules are deliberately syntactic and local: no type inference, no cross-file
dataflow.  Where a pattern has a sanctioned idiom (seeded ``default_rng``,
``sorted(...)`` around a set, env reads inside the ``resolve_*`` helper
family) the rule recognises it and stays silent; everything else is a
finding that must be fixed or explicitly suppressed with
``# detlint: ok <RULE>`` on the offending line.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.framework import (
    AnalysisPass,
    Finding,
    PassScanner,
    Rule,
    register_pass,
)

__all__ = [
    "DETLINT_PASS",
    "Finding",
    "Rule",
    "RULES",
    "RULES_BY_ID",
    "check_module",
    "check_tree",
]


#: The rule catalogue, in rule-id order (DESIGN.md §7 documents each).
RULES: Tuple[Rule, ...] = (
    Rule(
        "DET101",
        "unseeded-random",
        "module-level RNG (`random.*`, legacy `np.random.*`, or "
        "`default_rng()` without a seed) draws from process-global state; "
        "results then depend on call order across the whole process",
    ),
    Rule(
        "DET102",
        "wall-clock",
        "wall-clock reads (`time.time`, `perf_counter`, `datetime.now`, ...) "
        "feeding anything but benchmark timing make results run-dependent",
    ),
    Rule(
        "DET103",
        "env-read",
        "`os.environ` reads outside the `resolve_*` helper family scatter "
        "configuration resolution and bypass its validation/warning rules",
    ),
    Rule(
        "DET104",
        "set-iteration",
        "iterating a set has interpreter/hash-seed-dependent order; any "
        "result-affecting accumulation or scheduling over it diverges "
        "between processes",
    ),
    Rule(
        "DET105",
        "unordered-reduction",
        "`sum()`/`reduce()` over a set (or keyed `min`/`max` with set ties) "
        "is a floating-point reduction in nondeterministic order",
    ),
    Rule(
        "DET106",
        "mutable-default",
        "mutable default arguments are shared across calls (and across the "
        "jobs/configs pickled from them); mutation leaks state between runs",
    ),
    Rule(
        "DET107",
        "id-key",
        "`id(obj)` as a cache/memo key is an address: unstable across "
        "processes and reusable after garbage collection",
    ),
    Rule(
        "DET108",
        "builtin-hash",
        "builtin `hash()` of str/bytes is salted per process "
        "(PYTHONHASHSEED); any key, order or decision derived from it "
        "diverges between workers",
    ),
    Rule(
        "DET109",
        "trace-column-write",
        "in-place writes to CompiledTrace stored columns mutate state that "
        "may be shared (memo, artifact cache, shm segment) by sibling "
        "batches; columns must be replaced, never edited",
    ),
    Rule(
        "DET110",
        "fs-order",
        "directory listings (`os.listdir`, `glob`, `Path.iterdir`, ...) come "
        "back in filesystem order; iterate them sorted or the walk order is "
        "host-dependent",
    ),
    Rule(
        "DET111",
        "unguarded-accelerator-import",
        "importing an optional accelerator (numba, ...) outside a "
        "try/except ImportError guard hard-binds the module to hardware "
        "the contract treats as optional; the compiled tier must degrade "
        "to its pure-Python twin so results stay machine-independent",
    ),
)

RULES_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in RULES}

#: Legacy ``numpy.random`` module-level functions (global-state RNG).
_NP_RANDOM_LEGACY = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "seed", "normal",
        "uniform", "standard_normal", "bytes", "get_state", "set_state",
    }
)

#: Wall-clock reading callables, by module attribute name.
_TIME_CALLS = frozenset(
    {
        "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
        "monotonic_ns", "process_time", "process_time_ns", "clock_gettime",
    }
)
_DATETIME_CALLS = frozenset({"now", "utcnow", "today"})

#: Directory-listing callables whose result order is filesystem-dependent.
_FS_LIST_CALLS = frozenset({"listdir", "scandir", "glob", "iglob", "rglob", "iterdir"})

#: CompiledTrace stored-column attribute names (DET109).  Kept in sync with
#: ``CompiledTrace.STORED_FIELDS`` by a unit test rather than an import so
#: the linter stays importable without numpy.
TRACE_COLUMN_ATTRS = frozenset(
    {
        "seq", "sid", "block", "opclass", "address", "mispredicted",
        "vc_id", "chain_leader", "static_cluster",
        "src_offsets", "src_regs", "dest_offsets", "dest_regs",
    }
)

#: Reductions whose value depends on operand order (DET105).
_ORDER_SENSITIVE_REDUCTIONS = frozenset({"sum", "fsum", "reduce"})

#: Reductions order-sensitive only under a tie-breaking ``key=`` (DET105).
_TIE_SENSITIVE_REDUCTIONS = frozenset({"min", "max"})

#: Set-operation methods that produce a new set (DET104/DET105 operands).
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

#: Callables that consume an iterable in order (flagged when fed a set).
_ORDER_MATERIALISERS = frozenset({"list", "tuple", "enumerate"})

#: Optional-accelerator packages whose import must be guarded (DET111).
#: These are deliberately absent from the baseline environment; the jitted
#: modules keep a pure-Python twin and select it at run time, never at
#: import time.
_ACCEL_MODULES = frozenset({"numba", "cupy", "numexpr", "pycuda", "triton"})

#: Exception names whose handler sanctions an optional import (DET111).
_IMPORT_GUARD_EXCEPTIONS = frozenset(
    {"ImportError", "ModuleNotFoundError", "Exception", "BaseException"}
)


def _call_name(node: ast.AST) -> Optional[str]:
    """``f`` for a bare-name call ``f(...)``, else ``None``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted name of an attribute chain rooted at a Name (``a.b.c``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Visitor(ast.NodeVisitor):
    """One pass over a module, accumulating findings for every rule."""

    def __init__(self, path: str, module_name: str) -> None:
        self.path = path
        self.module_name = module_name
        self.findings: List[Finding] = []
        #: Local aliases of the modules the rules care about, seeded with the
        #: canonical names and extended by import-tracking (``import numpy as
        #: np`` makes ``np.random...`` resolvable).
        self._module_alias: Dict[str, str] = {}
        #: Names bound by ``from <module> import <name>`` to "module.name".
        self._from_imports: Dict[str, str] = {}
        #: Enclosing function-name stack (innermost last).
        self._func_stack: List[str] = []
        #: Whether the file belongs to the trace-IR package (DET109 owner).
        self._owns_trace_columns = "/uops/" in path.replace("\\", "/") or (
            module_name.startswith("repro.uops")
        )
        #: Depth of enclosing try-blocks whose handlers catch ImportError
        #: (the sanctioned optional-import idiom for DET111).
        self._import_guard = 0

    # ------------------------------------------------------------- helpers --
    def _report(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(rule_id, self.path, getattr(node, "lineno", 1), message)
        )

    def _resolves(self, node: ast.AST, dotted: str) -> bool:
        """Whether ``node`` is an attribute chain naming ``dotted``.

        Honours ``import x.y``, ``import x.y as z`` and ``from x import y``
        bindings seen earlier in the module.
        """
        return self._canonical_chain(node) == dotted

    def _in_function_matching(self, *prefixes: str) -> bool:
        return any(
            any(name.startswith(prefix) for prefix in prefixes)
            for name in self._func_stack
        )

    def _in_benchmark_context(self) -> bool:
        """Whether the current scope is benchmark code (wall clocks allowed).

        Timing the host is exactly what benchmarks do; the hazard DET102
        guards against is host time leaking into *simulated* results.
        Benchmark code is recognised by path (a ``benchmarks`` directory
        segment), by module name, or by an enclosing ``bench``/``timing``
        function.
        """
        if "benchmarks" in Path(self.path).parts:
            return True
        module_tail = self.module_name.rsplit(".", 1)[-1]
        if module_tail.startswith("bench") or module_tail.endswith("_bench"):
            return True
        return any("bench" in name or "timing" in name for name in self._func_stack)

    def _is_set_expr(self, node: ast.AST) -> bool:
        """Whether ``node`` syntactically produces a set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        name = _call_name(node)
        if name in {"set", "frozenset"}:
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
        ):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            # ``a - b`` / ``a & b`` on sets; only recognisable when at least
            # one side is itself syntactically a set.
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _iterable_source(self, node: ast.AST) -> ast.AST:
        """Peel order-preserving wrappers (generators) off an iterable expr."""
        if isinstance(node, (ast.GeneratorExp, ast.ListComp)) and len(node.generators) == 1:
            return node.generators[0].iter
        return node

    # ------------------------------------------------------------- imports --
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._module_alias[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            if alias.asname:
                self._module_alias[alias.asname] = alias.name
            self._check_accelerator_import(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self._from_imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
            self._check_accelerator_import(node, node.module)
        self.generic_visit(node)

    def _check_accelerator_import(self, node: ast.AST, module: str) -> None:
        root = module.split(".")[0]
        if root in _ACCEL_MODULES and not self._import_guard:
            self._report(
                "DET111",
                node,
                f"unguarded import of optional accelerator `{root}`; wrap it "
                "in try/except ImportError and select the pure-Python twin "
                "at run time",
            )

    def visit_Try(self, node: ast.Try) -> None:
        if self._guards_import_error(node):
            self._import_guard += 1
            for child in node.body:
                self.visit(child)
            self._import_guard -= 1
            for child in [*node.handlers, *node.orelse, *node.finalbody]:
                self.visit(child)
        else:
            self.generic_visit(node)

    @staticmethod
    def _guards_import_error(node: ast.Try) -> bool:
        """Whether any handler catches ImportError (or something broader)."""
        for handler in node.handlers:
            if handler.type is None:
                return True
            for sub in ast.walk(handler.type):
                if isinstance(sub, ast.Name) and sub.id in _IMPORT_GUARD_EXCEPTIONS:
                    return True
                if isinstance(sub, ast.Attribute) and sub.attr in _IMPORT_GUARD_EXCEPTIONS:
                    return True
        return False

    # ----------------------------------------------------------- functions --
    def _visit_function(self, node) -> None:
        self._check_mutable_defaults(node)
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _check_mutable_defaults(self, node) -> None:
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is None:
                continue
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
            ) or _call_name(default) in {"list", "dict", "set", "bytearray"}
            if mutable:
                self._report(
                    "DET106",
                    default,
                    f"mutable default argument in {node.name}(); "
                    "default to None and build inside the body",
                )

    # --------------------------------------------------------------- calls --
    def visit_Call(self, node: ast.Call) -> None:
        self._check_rng_call(node)
        self._check_clock_call(node)
        self._check_env_call(node)
        self._check_reduction_call(node)
        self._check_hash_call(node)
        self._check_key_method_call(node)
        self._check_materialised_set(node)
        self.generic_visit(node)

    def _check_rng_call(self, node: ast.Call) -> None:
        chain = self._canonical_chain(node.func)
        if chain is None:
            return
        if chain == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                self._report(
                    "DET101",
                    node,
                    "`default_rng()` without a seed draws entropy from the "
                    "OS; pass the run's seed explicitly",
                )
            return
        parts = chain.split(".")
        if parts[:2] == ["numpy", "random"] and len(parts) == 3:
            if parts[2] in _NP_RANDOM_LEGACY:
                self._report(
                    "DET101",
                    node,
                    f"legacy `np.random.{parts[2]}()` uses the process-global "
                    "RNG; use a seeded `np.random.default_rng(seed)` generator",
                )
            return
        if parts[0] == "random" and len(parts) == 2 and parts[1] != "Random":
            self._report(
                "DET101",
                node,
                f"module-level `random.{parts[1]}()` uses the process-global "
                "RNG; use a seeded `random.Random(seed)` instance",
            )

    def _check_clock_call(self, node: ast.Call) -> None:
        chain = self._canonical_chain(node.func)
        if chain is None:
            return
        parts = chain.split(".")
        is_clock = (parts[0] == "time" and len(parts) == 2 and parts[1] in _TIME_CALLS) or (
            len(parts) >= 2 and parts[-2] == "datetime" and parts[-1] in _DATETIME_CALLS
        )
        if is_clock and not self._in_benchmark_context():
            self._report(
                "DET102",
                node,
                f"wall-clock read `{chain}()` outside benchmark code; "
                "simulated results must not depend on host time",
            )

    def _check_env_call(self, node: ast.Call) -> None:
        chain = self._canonical_chain(node.func)
        if chain in {"os.environ.get", "os.getenv"} and not self._in_resolver():
            self._report(
                "DET103",
                node,
                f"`{chain}()` outside the `resolve_*` helper family; route "
                "environment configuration through one validated resolver",
            )

    def _check_reduction_call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name is None and isinstance(node.func, ast.Attribute):
            chain = self._canonical_chain(node.func)
            if chain in {"math.fsum", "functools.reduce"}:
                name = chain.split(".")[-1]
        if name is None or not node.args:
            return
        arg_index = 1 if name == "reduce" and len(node.args) > 1 else 0
        source = self._iterable_source(node.args[arg_index])
        if not self._is_set_expr(source):
            return
        if name in _ORDER_SENSITIVE_REDUCTIONS:
            self._report(
                "DET105",
                node,
                f"`{name}()` over a set reduces in hash order; sort the "
                "operands (or reduce over the ordered source collection)",
            )
        elif name in _TIE_SENSITIVE_REDUCTIONS and any(
            kw.arg == "key" for kw in node.keywords
        ):
            self._report(
                "DET105",
                node,
                f"keyed `{name}()` over a set breaks ties in hash order; "
                "sort the operands first",
            )

    def _check_hash_call(self, node: ast.Call) -> None:
        if _call_name(node) == "hash" and "__hash__" not in self._func_stack:
            self._report(
                "DET108",
                node,
                "builtin `hash()` is salted per process (PYTHONHASHSEED); "
                "derive keys from `hashlib` digests of canonical encodings",
            )

    def _check_key_method_call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in {"get", "setdefault", "pop"}
            and node.args
            and self._contains_id_call(node.args[0])
        ):
            self._report(
                "DET107",
                node,
                f"`id(...)` used as a `.{node.func.attr}()` key; object "
                "addresses are process-local and recycled by the GC",
            )

    def _check_materialised_set(self, node: ast.Call) -> None:
        name = _call_name(node)
        is_join = (
            isinstance(node.func, ast.Attribute) and node.func.attr == "join"
        )
        if (name in _ORDER_MATERIALISERS or is_join) and node.args:
            source = self._iterable_source(node.args[0])
            if self._is_set_expr(source):
                label = name or "str.join"
                self._report(
                    "DET104",
                    node,
                    f"`{label}()` materialises a set in hash order; wrap the "
                    "set in `sorted(...)`",
                )

    # -------------------------------------------------- subscripts & loops --
    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._contains_id_call(node.slice):
            self._report(
                "DET107",
                node,
                "`id(...)` used as a subscript key; object addresses are "
                "process-local and recycled by the GC",
            )
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self._check_trace_column_store(node)
        if (
            self._resolves(node.value, "os.environ")
            and isinstance(node.ctx, ast.Load)
            and not self._in_resolver()
        ):
            self._report(
                "DET103",
                node,
                "`os.environ[...]` read outside the `resolve_*` helper "
                "family; route environment configuration through one "
                "validated resolver",
            )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Subscript):
            self._check_trace_column_store(node.target)
        self.generic_visit(node)

    def _check_trace_column_store(self, node: ast.Subscript) -> None:
        if self._owns_trace_columns:
            return
        if (
            isinstance(node.value, ast.Attribute)
            and node.value.attr in TRACE_COLUMN_ATTRS
        ):
            self._report(
                "DET109",
                node,
                f"in-place write to trace column `.{node.value.attr}[...]`; "
                "stored columns may be shared (memo/artifact/shm) -- build a "
                "new array and replace the attribute instead",
            )

    def _check_loop_iter(self, iter_node: ast.AST) -> None:
        source = self._iterable_source(iter_node)
        if self._is_set_expr(source):
            self._report(
                "DET104",
                source,
                "iteration over a set visits elements in hash order; wrap it "
                "in `sorted(...)` (or keep an ordered collection)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_loop_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_loop_iter(node.iter)
        self.generic_visit(node)

    # Comprehensions: a list/dict built over a set inherits its hash order
    # (dict insertion order included), so those are flagged.  A *set*
    # comprehension has no order to corrupt, and a bare generator
    # expression's order-sensitivity belongs to whatever consumes it (the
    # call checks peel one generator level), so both stay silent here.
    def visit_ListComp(self, node: ast.ListComp) -> None:
        for generator in node.generators:
            self._check_loop_iter(generator.iter)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        for generator in node.generators:
            self._check_loop_iter(generator.iter)
        self.generic_visit(node)

    # ------------------------------------------------------- fs-order walk --
    def visit_Compare(self, node: ast.Compare) -> None:
        if (
            any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops)
            and self._contains_id_call(node.left)
        ):
            self._report(
                "DET107",
                node,
                "`id(...)` used in a membership test; object addresses are "
                "process-local and recycled by the GC",
            )
        self.generic_visit(node)

    # --------------------------------------------------------- more checks --
    def _canonical_chain(self, node: ast.AST) -> Optional[str]:
        """Dotted chain with import aliases resolved to canonical modules."""
        chain = _attr_chain(node)
        if chain is None:
            return None
        head, _, rest = chain.partition(".")
        real = self._module_alias.get(head)
        if real is not None and real != head:
            head = real
        else:
            bound = self._from_imports.get(head)
            if bound is not None:
                head = bound
        canonical = head + ("." + rest if rest else "")
        # ``np`` is overwhelmingly numpy in this repo even without the import
        # in view (fixtures, doctest snippets).
        if canonical.startswith("np.random"):
            canonical = "numpy" + canonical[2:]
        return canonical

    def _in_resolver(self) -> bool:
        return self._in_function_matching("resolve_", "_resolve")

    @staticmethod
    def _contains_id_call(node: ast.AST) -> bool:
        return any(_call_name(sub) == "id" for sub in ast.walk(node))


def _fs_order_findings(tree: ast.Module, visitor: _Visitor) -> Iterator[Finding]:
    """DET110: directory listings iterated (or materialised) unsorted.

    Separate pass: it needs the *consumer* context (loop iter / list() arg),
    and the sanctioned idiom is any ``sorted(...)`` wrapper in between.
    """
    consumers: List[ast.AST] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            consumers.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.DictComp)):
            # Set comprehensions are order-insensitive sinks; generator
            # expressions defer to their consumer (handled via the call arg).
            consumers.extend(generator.iter for generator in node.generators)
        elif isinstance(node, ast.Call) and _call_name(node) in {"list", "tuple", "enumerate"}:
            if node.args:
                consumers.append(node.args[0])
    for consumer in consumers:
        source = visitor._iterable_source(consumer)
        if not isinstance(source, ast.Call):
            continue
        chain = visitor._canonical_chain(source.func)
        attr = chain.rsplit(".", 1)[-1] if chain else (
            source.func.attr if isinstance(source.func, ast.Attribute) else None
        )
        if attr in _FS_LIST_CALLS:
            yield Finding(
                "DET110",
                visitor.path,
                source.lineno,
                f"`{attr}()` results iterated in filesystem order; wrap the "
                "listing in `sorted(...)`",
            )


def check_tree(tree: ast.Module, path: str, module_name: str = "") -> List[Finding]:
    """All findings for one parsed module (unsuppressed, unbaselined)."""
    visitor = _Visitor(path, module_name or path)
    visitor.visit(tree)
    findings = list(visitor.findings)
    findings.extend(_fs_order_findings(tree, visitor))
    seen: Set[Tuple[str, int, str]] = set()
    unique: List[Finding] = []
    for finding in sorted(findings, key=lambda f: (f.line, f.rule)):
        key = (finding.rule, finding.line, finding.message)
        if key not in seen:
            seen.add(key)
            unique.append(finding)
    return unique


def check_module(source: str, path: str, module_name: str = "") -> List[Finding]:
    """All findings for one module's source text (unsuppressed, unbaselined).

    Raises :class:`SyntaxError` when the source does not parse; the caller
    turns that into its own diagnostics channel.
    """
    return check_tree(ast.parse(source, filename=path), path, module_name)


class _Scanner(PassScanner):
    def check(
        self, tree: ast.Module, source: str, path: str, module_name: str
    ) -> List[Finding]:
        return check_tree(tree, path, module_name)


#: detlint as a registered framework pass (the first; PR 7's behavior,
#: byte-for-byte -- the framework hosts the shared suppression/baseline
#: machinery it used to own).
DETLINT_PASS = register_pass(
    AnalysisPass(
        name="detlint",
        description=(
            "determinism hazards that break the bit-identity contract "
            "(unseeded RNG, wall clocks, env reads, unordered iteration, "
            "shared-column writes)"
        ),
        rules=RULES,
        scanner=_Scanner,
    )
)
