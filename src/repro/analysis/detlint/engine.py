"""Scanning, suppression and baseline machinery around the rule set.

The workflow this supports (DESIGN.md §7):

* ``scan_paths`` walks files/directories, runs :func:`~repro.analysis.
  detlint.rules.check_module` on every ``.py`` file and classifies each
  finding as **fresh**, **suppressed** (an inline ``# detlint: ok <RULE>``
  comment on the offending line) or **baselined** (its fingerprint appears in
  the committed baseline file).
* Fingerprints hash the *content* of the offending line, not its number, so
  unrelated edits above a grandfathered finding do not resurrect it; a
  per-content occurrence index keeps duplicate lines distinct.
* Strict mode disables the baseline entirely: every unsuppressed finding
  fails.  CI runs strict with an empty baseline, which is the end state this
  repo maintains -- the baseline exists so a *future* rule addition can land
  before its grandfathered findings are burned down.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.detlint.rules import RULES_BY_ID, Finding, check_module

__all__ = [
    "Baseline",
    "ScanResult",
    "ClassifiedFinding",
    "scan_paths",
    "suppressed_rules",
    "fingerprint",
]

#: Inline suppression: ``# detlint: ok`` (all rules) or
#: ``# detlint: ok DET103`` / ``# detlint: ok DET103, DET104``; anything
#: after the rule list (a rationale) is ignored.
_SUPPRESS_RE = re.compile(r"#\s*detlint:\s*ok(?P<rest>[^\n]*)")

_RULE_TOKEN_RE = re.compile(r"[A-Z]+\d+$")

#: Baseline file schema version.
BASELINE_VERSION = 1

#: Default baseline filename, looked up at each scan root's top level.
BASELINE_FILENAME = "detlint-baseline.json"


def suppressed_rules(line: str) -> Optional[frozenset]:
    """The rule ids suppressed on ``line``.

    Returns ``None`` when the line carries no suppression, an empty frozenset
    for a bare ``# detlint: ok`` (suppress every rule) and the named ids
    otherwise.
    """
    match = _SUPPRESS_RE.search(line)
    if match is None:
        return None
    names = []
    for token in match.group("rest").replace(",", " ").split():
        if not _RULE_TOKEN_RE.match(token):
            break  # rationale text starts here
        names.append(token)
    return frozenset(names)


def fingerprint(path: str, rule: str, line_text: str, occurrence: int) -> str:
    """Stable identity of a finding: content-addressed, line-number-free."""
    normalized = " ".join(line_text.split())
    payload = f"{path}::{rule}::{normalized}::{occurrence}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:20]


@dataclass
class Baseline:
    """The committed set of grandfathered finding fingerprints."""

    path: Optional[Path] = None
    fingerprints: frozenset = frozenset()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or int(data.get("version", -1)) != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} has unsupported schema "
                f"(expected version {BASELINE_VERSION})"
            )
        entries = data.get("entries", [])
        prints = frozenset(
            entry["fingerprint"] if isinstance(entry, dict) else str(entry)
            for entry in entries
        )
        return cls(path=path, fingerprints=prints)

    @staticmethod
    def write(path: Path, findings: Sequence["ClassifiedFinding"]) -> None:
        """Persist ``findings`` as the new baseline (sorted, reviewable)."""
        entries = sorted(
            (
                {
                    "rule": item.finding.rule,
                    "path": item.finding.path,
                    "fingerprint": item.fingerprint,
                }
                for item in findings
            ),
            key=lambda entry: (entry["path"], entry["rule"], entry["fingerprint"]),
        )
        payload = {"version": BASELINE_VERSION, "entries": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


@dataclass(frozen=True)
class ClassifiedFinding:
    """A finding plus its disposition (fresh / suppressed / baselined)."""

    finding: Finding
    fingerprint: str
    status: str  # "fresh" | "suppressed" | "baselined"
    line_text: str = ""


@dataclass
class ScanResult:
    """Everything one scan produced, ready for reporting and exit codes."""

    findings: List[ClassifiedFinding] = field(default_factory=list)
    files_scanned: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def fresh(self) -> List[ClassifiedFinding]:
        return [item for item in self.findings if item.status == "fresh"]

    @property
    def suppressed(self) -> List[ClassifiedFinding]:
        return [item for item in self.findings if item.status == "suppressed"]

    @property
    def baselined(self) -> List[ClassifiedFinding]:
        return [item for item in self.findings if item.status == "baselined"]

    def counts(self) -> Dict[str, int]:
        return {
            "files": self.files_scanned,
            "findings": len(self.findings),
            "fresh": len(self.fresh),
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "errors": len(self.errors),
        }


def _iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def _module_name(file_path: Path) -> str:
    """Best-effort dotted module name (for package-aware rules)."""
    parts = list(file_path.with_suffix("").parts)
    for marker in ("src",):
        if marker in parts:
            parts = parts[parts.index(marker) + 1:]
            break
    return ".".join(parts)


def _relative(path: Path) -> str:
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def scan_file(
    file_path: Path, baseline: Optional[Baseline] = None
) -> Tuple[List[ClassifiedFinding], Optional[str]]:
    """Scan one file; returns ``(classified findings, error message or None)``."""
    rel = _relative(file_path)
    try:
        source = file_path.read_text(encoding="utf-8")
        raw = check_module(source, rel, _module_name(file_path))
    except (OSError, SyntaxError, ValueError) as exc:
        return [], f"{rel}: {exc}"
    lines = source.splitlines()
    occurrences: Dict[Tuple[str, str], int] = {}
    classified: List[ClassifiedFinding] = []
    baseline_prints = baseline.fingerprints if baseline is not None else frozenset()
    for finding in raw:
        if finding.rule not in RULES_BY_ID:  # pragma: no cover - rule-table drift guard
            continue
        line_text = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        normalized = " ".join(line_text.split())
        occ_key = (finding.rule, normalized)
        occurrence = occurrences.get(occ_key, 0)
        occurrences[occ_key] = occurrence + 1
        print_ = fingerprint(finding.path, finding.rule, line_text, occurrence)
        suppression = suppressed_rules(line_text)
        if suppression is not None and (not suppression or finding.rule in suppression):
            status = "suppressed"
        elif print_ in baseline_prints:
            status = "baselined"
        else:
            status = "fresh"
        classified.append(
            ClassifiedFinding(finding, print_, status, line_text=line_text.strip())
        )
    return classified, None


def scan_paths(
    paths: Sequence[Path],
    baseline: Optional[Baseline] = None,
    strict: bool = False,
) -> ScanResult:
    """Scan ``paths`` (files and/or directory trees) against the rule set.

    ``strict`` disables the baseline: grandfathered findings are classified
    as fresh (inline suppressions still apply -- they are visible, reviewed
    decisions at the offending line, not a side file).
    """
    result = ScanResult()
    effective = None if strict else baseline
    for file_path in _iter_python_files([Path(p) for p in paths]):
        classified, error = scan_file(file_path, effective)
        result.files_scanned += 1
        if error is not None:
            result.errors.append(error)
        result.findings.extend(classified)
    return result


def find_default_baseline(paths: Sequence[Path]) -> Optional[Path]:
    """The nearest committed baseline for ``paths``: cwd, then parents of each path."""
    candidates = [Path.cwd() / BASELINE_FILENAME]
    for path in paths:
        resolved = Path(path).resolve()
        for parent in [resolved, *resolved.parents]:
            candidates.append(parent / BASELINE_FILENAME)
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None
