"""detlint's scanning surface, now hosted by the analysis framework.

PR 7 built the suppression/fingerprint/baseline machinery here; PR 10
generalized it into :mod:`repro.analysis.framework` so parlint and lifelint
share it.  This module keeps detlint's original programmatic API --
``scan_paths(paths, baseline, strict)``, ``suppressed_rules(line)``,
``Baseline``, ``fingerprint`` -- as thin delegations that run exactly the
detlint pass, so PR 7 callers and tests see identical behavior.  See
DESIGN.md §7 for the framework model (fresh / suppressed / baselined,
content-addressed fingerprints, strict mode).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.framework import (
    BASELINE_FILENAME,
    BASELINE_VERSION,
    Baseline,
    ClassifiedFinding,
    ScanResult,
    find_default_baseline,
    fingerprint,
    parse_suppression,
)
from repro.analysis.framework import scan_file as _framework_scan_file
from repro.analysis.framework import scan_paths as _framework_scan_paths
from repro.analysis.detlint.rules import DETLINT_PASS

__all__ = [
    "BASELINE_FILENAME",
    "BASELINE_VERSION",
    "Baseline",
    "ScanResult",
    "ClassifiedFinding",
    "find_default_baseline",
    "scan_file",
    "scan_paths",
    "suppressed_rules",
    "fingerprint",
]


def suppressed_rules(line: str) -> Optional[frozenset]:
    """The rule ids suppressed on ``line``.

    Returns ``None`` when the line carries no suppression, an empty frozenset
    for a bare ``# detlint: ok`` (suppress every rule) and the named ids
    otherwise.
    """
    suppression = parse_suppression(line, tag=DETLINT_PASS.name)
    return None if suppression is None else suppression.rules


def scan_file(
    file_path: Path, baseline: Optional[Baseline] = None
) -> Tuple[List[ClassifiedFinding], Optional[str]]:
    """Scan one file with detlint; ``(classified findings, error or None)``."""
    return _framework_scan_file(file_path, passes=(DETLINT_PASS,), baseline=baseline)


def scan_paths(
    paths: Sequence[Path],
    baseline: Optional[Baseline] = None,
    strict: bool = False,
) -> ScanResult:
    """Scan ``paths`` (files and/or directory trees) with the detlint pass.

    ``strict`` disables the baseline: grandfathered findings are classified
    as fresh (inline suppressions still apply -- they are visible, reviewed
    decisions at the offending line, not a side file -- but must carry a
    rationale).
    """
    return _framework_scan_paths(
        paths, passes=(DETLINT_PASS,), baseline=baseline, strict=strict
    )
