"""Criticality analysis: depth, height and critical paths of a DDG.

Figure 2 of the paper (first step of the VC partitioner):

    "For a given DDG, the compiler first computes the critical path
    information.  This computation requires two traversals of a DDG: one for
    computing the depth and another for computing the height of each node in
    the DDG.  The criticality of each node in the DDG is then defined to be
    the sum of its depth and height."

Definitions used here (standard list-scheduling definitions, consistent with
the SPDI paper the authors cite):

* ``depth(n)``  -- length of the longest latency-weighted path from any DDG
  root to ``n``, *excluding* ``n``'s own latency (a root has depth 0).
* ``height(n)`` -- length of the longest latency-weighted path from ``n`` to
  any DDG leaf, *including* ``n``'s own latency.
* ``criticality(n) = depth(n) + height(n)`` -- the length of the longest path
  through ``n``; nodes with the maximum criticality lie on a critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.program.ddg import DataDependenceGraph


@dataclass(frozen=True)
class CriticalityInfo:
    """Result of :func:`compute_criticality` for one DDG."""

    depth: Tuple[int, ...]
    height: Tuple[int, ...]
    criticality: Tuple[int, ...]
    critical_path_length: int

    def is_critical(self, node: int) -> bool:
        """True when ``node`` lies on a critical path of the DDG."""
        return self.criticality[node] == self.critical_path_length

    def critical_nodes(self) -> List[int]:
        """All nodes lying on some critical path."""
        return [i for i, c in enumerate(self.criticality) if c == self.critical_path_length]


def compute_criticality(ddg: DataDependenceGraph) -> CriticalityInfo:
    """Compute depth, height and criticality for every node of ``ddg``.

    Two linear traversals in topological order (forward for depth, backward
    for height), as described in the paper.

    Returns
    -------
    CriticalityInfo
        Per-node depth, height, criticality and the critical-path length.
    """
    n = len(ddg)
    order = ddg.topological_order()
    depth = [0] * n
    # Forward traversal: depth of a node is the max over predecessors of
    # (depth(pred) + latency(pred)).
    for node in order:
        best = 0
        for pred in ddg.preds[node]:
            candidate = depth[pred] + ddg.edge_latency[(pred, node)]
            if candidate > best:
                best = candidate
        depth[node] = best
    # Backward traversal: height includes the node's own latency.
    height = [0] * n
    for node in reversed(order):
        own_latency = ddg.instructions[node].latency
        best = own_latency
        for succ in ddg.succs[node]:
            candidate = own_latency + height[succ]
            if candidate > best:
                best = candidate
        height[node] = best
    criticality = [depth[i] + height[i] for i in range(n)]
    critical_path_length = max(criticality) if criticality else 0
    return CriticalityInfo(
        depth=tuple(depth),
        height=tuple(height),
        criticality=tuple(criticality),
        critical_path_length=critical_path_length,
    )
