"""Scenario execution: turn a :class:`ScenarioSpec` into its plain-text report.

:func:`run_scenario` looks the spec's ``report`` kind up in
:data:`REPORT_KINDS` and hands it the spec plus an experiment engine.  The
built-in kinds cover the paper's evaluation and the generic cases:

``table``
    Weighted per-benchmark tables of every configuration (cycles, slowdown
    versus the first configuration, IPC, copies, balance stalls).
``figure5`` / ``figure6`` / ``figure7`` / ``table1``
    The paper's figures and Table 1, byte-identical to the legacy CLI
    commands they replace.
``sweep``
    Grid-expand the spec's sweep axes and aggregate each point over the
    benchmark set (the ablation-sweep shape).
``replicated`` / ``race`` / ``crossover``
    The statistical kinds (:mod:`repro.scenarios.adaptive`): replicated
    estimation with CI stopping, configuration racing, and crossover
    bisection, all honouring the spec's
    :class:`~repro.scenarios.spec.StoppingRule` (and the ``adaptive``
    argument below).

Custom kinds can be registered with ``@REPORT_KINDS.register("my-kind")``;
a kind is a callable ``(spec, engine) -> str`` returning the report text
(ending with a newline, so the CLI can append its engine footer).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.engine.cache import ResultCache
from repro.engine.parallel import AUTO_TRACE_ROOT, ParallelRunner
from repro.experiments.ablations import aggregate_suite
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.report import format_key_values, format_table
from repro.experiments.runner import ExperimentRunner, slowdown_percent
from repro.experiments.table1 import run_table1
from repro.scenarios.registry import Registry
from repro.scenarios.spec import ScenarioSpec

#: Report kinds: ``name -> (spec, engine) -> str``.  The adaptive kinds
#: live in their own module (it imports this one for the registry, so it
#: loads lazily on first lookup).
REPORT_KINDS = Registry("report kind", builtin_modules=("repro.scenarios.adaptive",))


def run_scenario(
    spec: ScenarioSpec,
    engine: Optional[ParallelRunner] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    trace_dir: Optional[str] = AUTO_TRACE_ROOT,
    batching: bool = True,
    shared_memory: Optional[bool] = None,
    adaptive: Optional[bool] = None,
) -> str:
    """Execute ``spec`` and return its report text.

    Parameters
    ----------
    spec:
        The scenario to run.
    engine:
        Pre-built engine to use (lets callers share one worker pool, one set
        of resident shared-memory segments and one cache across scenarios);
        built from ``jobs`` / ``cache_dir`` / ``trace_dir`` / ``batching`` /
        ``shared_memory`` when omitted.  An engine built here is shut down
        before returning (its pool and segments do not outlive the call);
        a caller-provided engine is left running for reuse.
    jobs / cache_dir:
        Engine knobs when no engine is passed: worker processes (results are
        bit-identical for any count) and the optional on-disk result cache.
    trace_dir:
        Directory of the shared compiled-trace artifacts (see
        :class:`~repro.engine.artifacts.TraceArtifactStore`).  Defaults to
        ``<cache_dir>/traces``; pass ``None`` to regenerate traces instead.
    batching:
        Schedule the scenario's jobs as per-trace batches (default) or
        per-job; results are bit-identical either way.
    shared_memory:
        Publish compiled traces into shared-memory segments for parallel
        batched runs (``None`` = where available, the default); results are
        bit-identical either way.
    adaptive:
        Override the spec's :class:`~repro.scenarios.spec.StoppingRule`
        enablement (the CLI's ``--adaptive`` / ``--no-adaptive``): ``False``
        runs the exhaustive grid and *replays* the stopping decisions
        (byte-identical report, every run paid for), ``True`` forces early
        stopping on, ``None`` (default) leaves the spec's declaration as
        is.  Ignored for scenarios without a stopping rule.
    """
    if adaptive is not None and spec.stopping is not None:
        spec = replace(spec, stopping=replace(spec.stopping, enabled=adaptive))
    owned = engine is None
    if engine is None:
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        engine = ParallelRunner(
            max_workers=jobs,
            cache=cache,
            trace_root=trace_dir,
            batching=batching,
            shared_memory=shared_memory,
        )
    handler = REPORT_KINDS.get(spec.report)
    try:
        return handler(spec, engine)
    finally:
        if owned:
            engine.shutdown()


def _join(parts: Sequence[str]) -> str:
    """Join report blocks exactly like the legacy CLI commands did."""
    return "\n".join(list(parts) + [""])


def _require_configurations(spec: ScenarioSpec, minimum: int = 1) -> List:
    if len(spec.configurations) < minimum:
        raise ValueError(
            f"scenario {spec.name!r} ({spec.report}) needs at least {minimum} "
            f"configuration(s), got {len(spec.configurations)}"
        )
    return list(spec.configurations)


def _reject_sweep(spec: ScenarioSpec) -> None:
    if spec.sweep:
        raise ValueError(
            f"report kind {spec.report!r} does not interpret sweep axes; "
            "use report='sweep' for swept scenarios"
        )


@REPORT_KINDS.register("table")
def _table_report(spec: ScenarioSpec, engine: ParallelRunner) -> str:
    """Weighted per-benchmark comparison tables of every configuration."""
    _reject_sweep(spec)
    configurations = _require_configurations(spec)
    settings = spec.settings()
    runner = ExperimentRunner(settings, engine=engine)
    benchmarks = spec.resolved_benchmarks()
    suite = runner.run_suite(benchmarks, configurations)
    baseline_name = configurations[0].name
    parts = []
    for benchmark in benchmarks:
        baseline_cycles = suite[benchmark][baseline_name].cycles
        rows = []
        for configuration in configurations:
            result = suite[benchmark][configuration.name]
            rows.append(
                {
                    "configuration": configuration.name,
                    "cycles": result.cycles,
                    f"slowdown vs {baseline_name} (%)": round(
                        slowdown_percent(result.cycles, baseline_cycles), 2
                    ),
                    "IPC": result.ipc,
                    "copies": result.copies,
                    "balance stalls": result.allocation_stalls,
                }
            )
        parts.append(format_table(rows, title=f"{benchmark}: {spec.name}"))
    return _join(parts)


@REPORT_KINDS.register("figure5")
def _figure5_report(spec: ScenarioSpec, engine: ParallelRunner) -> str:
    """Figure 5 panels (a)-(c): per-benchmark and average slowdowns."""
    _reject_sweep(spec)
    configurations = _require_configurations(spec, minimum=2)
    settings = spec.settings()
    runner = ExperimentRunner(settings, engine=engine)
    result = run_figure5(
        settings,
        benchmarks=list(spec.benchmarks) or None,
        runner=runner,
        configurations=configurations,
    )
    baseline = configurations[0].name
    return _join(
        [
            format_table(
                result.benchmark_rows("int"),
                title=f"Figure 5(a) -- SPECint slowdown vs {baseline} (%)",
            ),
            format_table(
                result.benchmark_rows("fp"),
                title=f"Figure 5(b) -- SPECfp slowdown vs {baseline} (%)",
            ),
            format_table(
                result.averages_table(),
                title=f"Figure 5(c) -- average slowdown vs {baseline} (%)",
            ),
        ]
    )


@REPORT_KINDS.register("figure6")
def _figure6_report(spec: ScenarioSpec, engine: ParallelRunner) -> str:
    """Figure 6 summaries: the subject scheme versus each comparison scheme."""
    _reject_sweep(spec)
    configurations = _require_configurations(spec, minimum=2)
    settings = spec.settings()
    runner = ExperimentRunner(settings, engine=engine)
    result = run_figure6(
        settings,
        benchmarks=list(spec.benchmarks) or None,
        runner=runner,
        configurations=configurations,
    )
    subject = configurations[0].name
    return _join(
        [
            format_key_values(
                result.summary(comparison), title=f"Figure 6 -- {subject} vs {comparison}"
            )
            for comparison in result.comparisons
        ]
    )


@REPORT_KINDS.register("figure7")
def _figure7_report(spec: ScenarioSpec, engine: ParallelRunner) -> str:
    """Figure 7 panel (c) plus the Section 5.4 copy comparison."""
    _reject_sweep(spec)
    configurations = _require_configurations(spec, minimum=2)
    settings = spec.settings()
    runner = ExperimentRunner(settings, engine=engine)
    result = run_figure7(
        settings,
        benchmarks=list(spec.benchmarks) or None,
        runner=runner,
        configurations=configurations,
    )
    baseline = configurations[0].name
    parts = [
        format_table(
            result.averages_table(),
            title=f"Figure 7(c) -- 4-cluster average slowdown vs {baseline} (%)",
        )
    ]
    if "VC(4->4)" in result.plotted and "VC(2->4)" in result.plotted:
        parts.append(
            "VC(4->4) copies relative to VC(2->4): "
            f"{result.copy_overhead_4to4_vs_2to4():+.1f} % (paper: +28 %)\n"
        )
    return _join(parts)


@REPORT_KINDS.register("table1")
def _table1_report(spec: ScenarioSpec, engine: ParallelRunner) -> str:
    """Table 1: steering-unit complexity of the spec's configurations."""
    _reject_sweep(spec)
    configurations = _require_configurations(spec)
    rows = run_table1(
        config=spec.machine.resolve(),
        num_virtual_clusters=spec.num_virtual_clusters,
        configurations=configurations,
    )
    return format_table(rows, title="Table 1 -- steering-unit complexity")


@REPORT_KINDS.register("sweep")
def _sweep_report(spec: ScenarioSpec, engine: ParallelRunner) -> str:
    """Grid-expand the sweep axes; aggregate each point over the benchmarks."""
    configurations = _require_configurations(spec)
    baseline_name = configurations[0].name if len(configurations) > 1 else None
    rows: List[Dict[str, object]] = []
    for point, point_spec in spec.expand_sweep():
        runner = ExperimentRunner(point_spec.settings(), engine=engine)
        benchmarks = point_spec.resolved_benchmarks()
        suite = runner.run_suite(benchmarks, configurations)
        aggregates = {
            configuration.name: aggregate_suite(suite, benchmarks, configuration.name)
            for configuration in configurations
        }
        baseline_cycles = aggregates[baseline_name]["cycles"] if baseline_name else 0.0
        for configuration in configurations:
            data = aggregates[configuration.name]
            row: Dict[str, object] = dict(point)
            row["configuration"] = configuration.name
            row["cycles"] = data["cycles"]
            row["copies"] = data["copies"]
            row["allocation stalls"] = data["allocation_stalls"]
            if baseline_name is not None:
                row[f"slowdown vs {baseline_name} (%)"] = (
                    "-"
                    if configuration.name == baseline_name or baseline_cycles <= 0
                    else round(slowdown_percent(data["cycles"], baseline_cycles), 2)
                )
            rows.append(row)
    swept = ", ".join(axis.parameter for axis in spec.sweep) or spec.name
    # No trailing blank line: the legacy ablations command concatenated its
    # table and engine footer directly, and the shim stays format-compatible.
    return format_table(rows, title=f"Ablation sweep -- {swept}")
