"""Adaptive report kinds: replicated estimation, config racing, bisection.

This module connects the pure decision layer (:mod:`repro.engine.adaptive`)
to the scenario machinery.  A :class:`PointSampler` turns one sweep point of
a replicated :class:`~repro.scenarios.spec.ScenarioSpec` into a grid of
``(configuration, replication)`` cells, each cell being the benchmark-set
aggregate of one full seed block, and executes the cells a stopping-rule
driver asks for -- nothing more.  Three report kinds consume it:

``"replicated"``
    Per-configuration estimates via :func:`~repro.engine.adaptive.run_ci`:
    each configuration stops replicating once its confidence interval is
    tight enough for the declared precision.

``"race"``
    Ranking via :func:`~repro.engine.adaptive.run_race`: configurations are
    raced on shared seed blocks (common random numbers) and retire as soon
    as their paired gap to the leader is resolved.

``"crossover"``
    Axis bisection via :func:`~repro.engine.adaptive.run_bisection`: the
    sweep axis is consumed only to locate where the subject configuration
    overtakes the baseline, so the scheduler probes ``2 + O(log n)`` points
    instead of the whole grid.

Determinism and ``--no-adaptive``
---------------------------------
Every printed figure is a statistic of the *sampled-value prefix* the
stopping rule resolved, and the stopping rules are pure functions of those
prefixes.  With the rule disabled (``StoppingRule(enabled=False)``, the
CLI's ``--no-adaptive``), the sampler prefetches the exhaustive grid in one
engine call and the very same drivers *replay* their decisions over the
prefetched values -- so adaptive and exhaustive runs print byte-identical
tables by construction, and the executed-cell sequence of an adaptive run
is bit-identical across serial/parallel/shm/replay because engine results
are.  Each sampling round is a barrier: the engine call is consumed to
completion before any decision, so arrival order can never leak into the
schedule.  On an abnormal exit mid-round the sampler cancels the engine's
queued batches (:meth:`~repro.engine.parallel.ParallelRunner.cancel_pending`),
keeping the ``[batch]`` footer invariant intact.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.adaptive import (
    BisectOutcome,
    ConfigOutcome,
    run_bisection,
    run_ci,
    run_race,
)
from repro.engine.job import SimulationJob
from repro.engine.parallel import ParallelRunner
from repro.experiments.configs import SteeringConfiguration
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentRunner, slowdown_percent
from repro.scenarios.runner import REPORT_KINDS
from repro.scenarios.spec import ScenarioSpec, StoppingRule
from repro.workloads.generator import BenchmarkProfile
from repro.workloads.pinpoints import SimulationPoint, weighted_average
from repro.workloads.spec2000 import profile_for

#: Seed-block stride between replications.  Prime and far larger than any
#: per-phase seed offset, so replicated seed spaces never collide; part of
#: the cache key (via the profile), so changing it invalidates nothing
#: silently.
REPLICATION_SEED_STRIDE = 9973

#: Cell metrics tracked per ``(configuration, replication)`` seed block.
_CELL_FIELDS = ("cycles", "copies", "allocation_stalls")


def replicate_profile(profile: BenchmarkProfile, rep: int) -> BenchmarkProfile:
    """Replication ``rep``'s profile: a disjoint seed block of ``profile``.

    Replication 0 is the profile unchanged, so replicated scenarios share
    traces and cache entries with their non-replicated counterparts; later
    replications shift ``base_seed`` by the seed-block stride and tag the
    name (``"164.gzip-1@r3"``) so the experiment harness treats them as
    distinct benchmarks of one run.
    """
    if rep < 0:
        raise ValueError("replication index must be non-negative")
    if rep == 0:
        return profile
    return replace(
        profile,
        name=f"{profile.name}@r{rep}",
        base_seed=profile.base_seed + rep * REPLICATION_SEED_STRIDE,
    )


class PointSampler:
    """Execute ``(configuration, replication)`` cells of one sweep point.

    A *cell* is one full seed block: every benchmark of the scenario,
    replicated to the cell's seed block, simulated under the cell's
    configuration, PinPoints-weighted per benchmark and summed over the
    benchmark set (exactly :func:`~repro.experiments.ablations.aggregate_suite`'s
    arithmetic, so cell values line up with the ``"sweep"`` report).  Cells
    are memoised; :meth:`ensure` executes the missing ones in a single
    engine call -- the round barrier -- and :meth:`sample_round` is the
    :data:`~repro.engine.adaptive.SampleRound` callback the stopping-rule
    drivers consume.
    """

    def __init__(self, spec: ScenarioSpec, engine: ParallelRunner) -> None:
        if spec.sweep:
            raise ValueError("PointSampler needs an expanded sweep point (no axes)")
        self.engine = engine
        self.replications = spec.replications
        self.configurations: Dict[str, SteeringConfiguration] = {
            configuration.name: configuration for configuration in spec.configurations
        }
        self.runner = ExperimentRunner(spec.settings(), engine=engine)
        self.profiles: List[BenchmarkProfile] = [
            profile_for(name) for name in spec.resolved_benchmarks()
        ]
        #: (benchmark, rep) -> (replicated profile, its simulation points).
        self._blocks: Dict[Tuple[str, int], Tuple[BenchmarkProfile, List[SimulationPoint]]] = {}
        #: (configuration, rep) -> aggregated cell metrics.
        self._cells: Dict[Tuple[str, int], Dict[str, float]] = {}
        #: Cells in execution order -- the adaptive schedule itself, pinned
        #: by the determinism regression test.
        self.executed_cells: List[Tuple[str, int]] = []
        #: Simulation jobs submitted to the engine so far.
        self.executed_jobs = 0

    # ------------------------------------------------------------- planning --
    def _block(self, profile: BenchmarkProfile, rep: int):
        key = (profile.name, rep)
        block = self._blocks.get(key)
        if block is None:
            replica = replicate_profile(profile, rep)
            block = (replica, self.runner.simulation_points(replica))
            self._blocks[key] = block
        return block

    def planned_jobs(self) -> int:
        """Simulation jobs of the exhaustive grid (every cell of every config)."""
        per_rep = [
            sum(len(self._block(profile, rep)[1]) for profile in self.profiles)
            for rep in range(self.replications)
        ]
        return len(self.configurations) * sum(per_rep)

    # ------------------------------------------------------------ execution --
    def ensure(self, cells: Sequence[Tuple[str, int]]) -> None:
        """Execute the not-yet-sampled ``cells`` in one engine call.

        The call is a round barrier: it returns only once every requested
        cell's metrics are assembled, and on an abnormal exit it cancels the
        engine's queued batches so abandoned work is accounted, not leaked.
        """
        missing = [cell for cell in cells if cell not in self._cells]
        if not missing:
            return
        jobs: List[SimulationJob] = []
        plan: List[Tuple[Tuple[str, int], str, float]] = []
        for name, rep in missing:
            if rep >= self.replications:
                raise ValueError(
                    f"cell ({name!r}, {rep}) is outside the declared "
                    f"replications ({self.replications})"
                )
            configuration = self.configurations[name]
            for profile in self.profiles:
                replica, points = self._block(profile, rep)
                for point in points:
                    plan.append(((name, rep), profile.name, point.weight))
                    jobs.append(self.runner.make_job(replica, point, configuration))
        try:
            metrics = self.engine.run(jobs)
        except BaseException:
            self.engine.cancel_pending()
            raise
        self.executed_jobs += len(jobs)
        self.executed_cells.extend(missing)
        # Fold phase metrics into per-benchmark weighted averages, then sum
        # benchmarks in list order -- aggregate_suite's arithmetic.
        per_phase: Dict[Tuple[Tuple[str, int], str], List[int]] = {}
        for index, (cell, benchmark, _) in enumerate(plan):
            per_phase.setdefault((cell, benchmark), []).append(index)
        totals: Dict[Tuple[str, int], Dict[str, float]] = {
            cell: {field: 0.0 for field in _CELL_FIELDS} for cell in missing
        }
        for (cell, benchmark), indices in per_phase.items():
            _, points = self._blocks[(benchmark, cell[1])]
            dumps = [metrics[index] for index in indices]
            totals[cell]["cycles"] += weighted_average(
                [m.cycles for m in dumps], points
            )
            totals[cell]["copies"] += weighted_average(
                [m.copies_generated for m in dumps], points
            )
            totals[cell]["allocation_stalls"] += weighted_average(
                [m.balance_stalls for m in dumps], points
            )
        self._cells.update(totals)

    def prefetch_all(self) -> None:
        """Execute the exhaustive grid in one engine call (``--no-adaptive``).

        The stopping-rule drivers then *replay* their decisions over the
        prefetched values, printing tables byte-identical to the adaptive
        run's.
        """
        self.ensure(
            [
                (name, rep)
                for name in self.configurations
                for rep in range(self.replications)
            ]
        )

    # -------------------------------------------------------------- reading --
    def sample_round(self, rep: int, active: Tuple[str, ...]) -> Mapping[str, float]:
        """The drivers' sampling callback: cycles of replication ``rep``."""
        self.ensure([(name, rep) for name in active])
        return {name: self._cells[(name, rep)]["cycles"] for name in active}

    def cell(self, name: str, rep: int) -> Dict[str, float]:
        """Metrics of one sampled cell (must have been ensured)."""
        return self._cells[(name, rep)]

    def prefix_means(self, name: str, reps: int) -> Dict[str, float]:
        """Mean cell metrics of ``name`` over replications ``0..reps-1``.

        The resolved-prefix statistic every report prints -- identical for
        adaptive and exhaustive runs because both resolve the same prefix.
        """
        if reps < 1:
            raise ValueError("prefix_means needs at least one replication")
        cells = [self._cells[(name, rep)] for rep in range(reps)]
        return {
            field: sum(cell[field] for cell in cells) / reps for field in _CELL_FIELDS
        }


# ---------------------------------------------------------------------------
# Report kinds
# ---------------------------------------------------------------------------


def _require_rule(spec: ScenarioSpec, mode: str) -> StoppingRule:
    if spec.stopping is None:
        raise ValueError(
            f"report kind {spec.report!r} needs a stopping rule "
            f"(spec.stopping with mode={mode!r})"
        )
    if spec.stopping.mode != mode:
        raise ValueError(
            f"report kind {spec.report!r} needs stopping mode {mode!r}, "
            f"got {spec.stopping.mode!r}"
        )
    return spec.stopping


def _require_configurations(spec: ScenarioSpec, minimum: int = 1) -> List[SteeringConfiguration]:
    if len(spec.configurations) < minimum:
        raise ValueError(
            f"scenario {spec.name!r} ({spec.report}) needs at least {minimum} "
            f"configuration(s), got {len(spec.configurations)}"
        )
    return list(spec.configurations)


def _record_stats(
    engine: ParallelRunner,
    samplers: Sequence[PointSampler],
    outcomes: Sequence[ConfigOutcome] = (),
    skipped_points: int = 0,
) -> None:
    """Fold one adaptive campaign into the engine's ``[adaptive]`` counters.

    Called only when the stopping rule is *enabled*: with ``--no-adaptive``
    the footers must be indistinguishable from a pre-adaptive build.
    """
    stats = engine.adaptive_stats
    for sampler in samplers:
        stats["planned"] += sampler.planned_jobs()
        stats["executed"] += sampler.executed_jobs
    for outcome in outcomes:
        stats[f"stop_{outcome.reason}"] += 1
    stats["stop_bisected"] += skipped_points


@REPORT_KINDS.register("replicated")
def _replicated_report(spec: ScenarioSpec, engine: ParallelRunner) -> str:
    """Per-configuration CI-resolved estimates, per sweep point."""
    rule = _require_rule(spec, "ci")
    configurations = _require_configurations(spec)
    names = [configuration.name for configuration in configurations]
    baseline_name = names[0] if len(names) > 1 else None
    rows: List[Dict[str, object]] = []
    samplers: List[PointSampler] = []
    all_outcomes: List[ConfigOutcome] = []
    for point, point_spec in spec.expand_sweep():
        sampler = PointSampler(point_spec, engine)
        samplers.append(sampler)
        if not rule.enabled:
            sampler.prefetch_all()
        outcome = run_ci(
            names,
            sampler.sample_round,
            confidence=rule.confidence,
            min_reps=rule.min_replications,
            max_reps=spec.replications,
            rel_precision=rule.rel_precision,
        )
        all_outcomes.extend(outcome.configs)
        by_name = {config.name: config for config in outcome.configs}
        baseline_cycles = by_name[baseline_name].mean if baseline_name else 0.0
        for config in outcome.configs:
            means = sampler.prefix_means(config.name, config.reps)
            row: Dict[str, object] = dict(point)
            row["configuration"] = config.name
            row["reps"] = config.reps
            row["cycles"] = round(config.mean, 2)
            row["+/-"] = round(config.halfwidth, 2)
            row["copies"] = round(means["copies"], 2)
            row["allocation stalls"] = round(means["allocation_stalls"], 2)
            if baseline_name is not None:
                row[f"slowdown vs {baseline_name} (%)"] = (
                    "-"
                    if config.name == baseline_name or baseline_cycles <= 0
                    else round(slowdown_percent(config.mean, baseline_cycles), 2)
                )
            row["stop"] = config.reason
            rows.append(row)
    if rule.enabled:
        _record_stats(engine, samplers, all_outcomes)
    return format_table(rows, title=f"Replicated estimates -- {spec.name}")


@REPORT_KINDS.register("race")
def _race_report(spec: ScenarioSpec, engine: ParallelRunner) -> str:
    """Race the configurations for the best (lowest-cycles) policy."""
    rule = _require_rule(spec, "race")
    configurations = _require_configurations(spec, minimum=2)
    names = [configuration.name for configuration in configurations]
    rows: List[Dict[str, object]] = []
    samplers: List[PointSampler] = []
    all_outcomes: List[ConfigOutcome] = []
    for point, point_spec in spec.expand_sweep():
        sampler = PointSampler(point_spec, engine)
        samplers.append(sampler)
        if not rule.enabled:
            sampler.prefetch_all()
        outcome = run_race(
            names,
            sampler.sample_round,
            confidence=rule.confidence,
            min_reps=rule.min_replications,
            max_reps=spec.replications,
            tie_margin=rule.tie_margin,
        )
        all_outcomes.extend(outcome.configs)
        for config in outcome.configs:
            row: Dict[str, object] = dict(point)
            row["configuration"] = config.name
            row["best"] = "*" if config.name == outcome.winner else ""
            row["reps"] = config.reps
            row["cycles"] = round(config.mean, 2)
            row["stop"] = config.reason
            rows.append(row)
    if rule.enabled:
        _record_stats(engine, samplers, all_outcomes)
    return format_table(rows, title=f"Race -- {spec.name}")


@REPORT_KINDS.register("crossover")
def _crossover_report(spec: ScenarioSpec, engine: ParallelRunner) -> str:
    """Bisect the sweep axis for the baseline/subject crossover point."""
    rule = _require_rule(spec, "bisect")
    configurations = _require_configurations(spec, minimum=2)
    if len(configurations) != 2:
        raise ValueError(
            f"scenario {spec.name!r} (crossover) needs exactly two "
            f"configurations (baseline, subject), got {len(configurations)}"
        )
    if len(spec.sweep) != 1:
        raise ValueError(
            f"scenario {spec.name!r} (crossover) needs exactly one sweep "
            f"axis, got {len(spec.sweep)}"
        )
    axis = spec.sweep[0]
    if rule.axis is not None and rule.axis != axis.parameter:
        raise ValueError(
            f"stopping rule bisects axis {rule.axis!r} but the scenario "
            f"sweeps {axis.parameter!r}"
        )
    baseline_name, subject_name = (c.name for c in configurations)
    expansion = spec.expand_sweep()
    samplers = [PointSampler(point_spec, engine) for _, point_spec in expansion]
    if not rule.enabled:
        for sampler in samplers:
            sampler.prefetch_all()

    def probe(index: int) -> float:
        """Mean paired (subject - baseline) cycles at axis point ``index``."""
        sampler = samplers[index]
        cells = [
            (name, rep)
            for rep in range(spec.replications)
            for name in (baseline_name, subject_name)
        ]
        sampler.ensure(cells)
        diffs = [
            sampler.cell(subject_name, rep)["cycles"]
            - sampler.cell(baseline_name, rep)["cycles"]
            for rep in range(spec.replications)
        ]
        return sum(diffs) / len(diffs)

    outcome: BisectOutcome = run_bisection(len(expansion), probe)
    if rule.enabled:
        # All samplers, not just the probed ones: planned must cover the
        # whole grid -- the untouched samplers' jobs are what bisection saved.
        _record_stats(engine, samplers, skipped_points=outcome.skipped)
    evaluated = dict(outcome.path)
    rows: List[Dict[str, object]] = []
    for index in sorted(evaluated):
        point, _ = expansion[index]
        sampler = samplers[index]
        baseline_mean = sum(
            sampler.cell(baseline_name, rep)["cycles"] for rep in range(spec.replications)
        ) / spec.replications
        subject_mean = sum(
            sampler.cell(subject_name, rep)["cycles"] for rep in range(spec.replications)
        ) / spec.replications
        row: Dict[str, object] = dict(point)
        row[baseline_name] = round(baseline_mean, 2)
        row[subject_name] = round(subject_mean, 2)
        row["diff"] = round(evaluated[index], 2)
        rows.append(row)
    parts = [format_table(rows, title=f"Crossover -- {spec.name} ({axis.parameter})")]
    values = axis.values
    if outcome.bracket is not None:
        lo, hi = outcome.bracket
        parts.append(
            f"crossover: {axis.parameter} between {values[lo]} and {values[hi]} "
            f"({subject_name} overtakes {baseline_name})"
        )
    else:
        parts.append(
            f"no crossover: {axis.parameter} in [{values[0]}, {values[-1]}] "
            f"keeps the same sign of {subject_name} - {baseline_name}"
        )
    return "\n".join(parts + [""])
