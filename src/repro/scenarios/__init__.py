"""Declarative scenario API: registries plus serializable experiment specs.

Every experiment is described as plain data and executed by name:

* :mod:`repro.scenarios.registry` -- decorator-based registries for steering
  policies, partitioners, machine presets and built-in scenarios.
* :mod:`repro.scenarios.spec` -- :class:`ScenarioSpec`: machine, workloads,
  configurations and sweep axes, with lossless ``to_dict`` / ``from_dict``
  and JSON file loading.
* :mod:`repro.scenarios.builtin` -- the paper's evaluation (figure5/6/7,
  table1) and the four ablation sweeps as built-in named scenarios.
* :mod:`repro.scenarios.runner` -- :func:`run_scenario`, turning a spec into
  the plain-text report of its ``report`` kind.

Only the registry module is imported eagerly: the leaf modules
(``repro.steering.*`` etc.) import it to register themselves, so everything
else here loads lazily to keep the import graph acyclic.
"""

from __future__ import annotations

from repro.scenarios.registry import (
    MACHINES,
    PARTITIONERS,
    POLICIES,
    SCENARIOS,
    Registry,
    build_machine,
    build_partitioner,
    build_policy,
    register_machine,
    register_partitioner,
    register_policy,
    register_scenario,
)

__all__ = [
    "Registry",
    "POLICIES",
    "PARTITIONERS",
    "MACHINES",
    "SCENARIOS",
    "register_policy",
    "register_partitioner",
    "register_machine",
    "register_scenario",
    "build_policy",
    "build_partitioner",
    "build_machine",
    "MachineSpec",
    "SweepAxis",
    "ScenarioSpec",
    "StoppingRule",
    "PointSampler",
    "replicate_profile",
    "builtin_scenario",
    "run_scenario",
    "REPORT_KINDS",
]

#: Lazily imported public names -> defining submodule (PEP 562).  Eager
#: imports here would cycle: spec/runner import the experiment harness, which
#: imports the simulator, whose leaf modules import this package's registry.
_LAZY = {
    "MachineSpec": "repro.scenarios.spec",
    "SweepAxis": "repro.scenarios.spec",
    "ScenarioSpec": "repro.scenarios.spec",
    "StoppingRule": "repro.scenarios.spec",
    "PointSampler": "repro.scenarios.adaptive",
    "replicate_profile": "repro.scenarios.adaptive",
    "builtin_scenario": "repro.scenarios.builtin",
    "run_scenario": "repro.scenarios.runner",
    "REPORT_KINDS": "repro.scenarios.runner",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
