"""Name-based registries for steering policies, partitioners and machines.

The declarative scenario API describes every experiment as plain data:
configurations name their run-time policy and compile-time pass, machines
name a preset, and parameters travel as ``name -> value`` dictionaries.  The
registries here turn those names back into objects:

* :data:`POLICIES` -- builders of run-time steering policies
  (``@register_policy("OP")``),
* :data:`PARTITIONERS` -- builders of compile-time partitioning passes
  (``@register_partitioner("VC")``),
* :data:`MACHINES` -- machine presets returning a
  :class:`~repro.cluster.config.ClusterConfig` (``@register_machine``),
* :data:`SCENARIOS` -- built-in named scenarios (``@register_scenario``).

Because configurations carry only *names and parameter dicts*, every
configuration -- including user-defined ones -- is picklable, hashable and
therefore cacheable and process-parallel.  Worker processes rebuild policies
from the registry; under the default ``fork`` start method they inherit all
registrations made in the parent, so registering a custom policy anywhere
before the run is enough (on ``spawn`` platforms, register at import time of
a module the workers also import).

Builder signatures
------------------
policy builder
    ``(num_clusters, num_virtual_clusters, **params) -> SteeringPolicy``
partitioner builder
    ``(num_clusters, num_virtual_clusters, region_size, **params) ->
    RegionPartitioner``
machine preset
    ``(**overrides) -> ClusterConfig``
scenario factory
    ``() -> ScenarioSpec``

This module deliberately imports nothing from the rest of the package: the
leaf modules (``repro.steering.*``, ``repro.partition.*``,
``repro.cluster.config``) import it to register their builders, and the
registries import those modules lazily on first lookup.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, List, Sequence


class Registry:
    """A name -> builder mapping with explicit error paths.

    Parameters
    ----------
    kind:
        Human-readable description of what is registered, used in error
        messages (``"steering policy"``).
    builtin_modules:
        Modules imported lazily before the first lookup, so the built-in
        registrations are always visible without eager package imports (the
        leaf modules register themselves when imported).
    """

    def __init__(self, kind: str, builtin_modules: Sequence[str] = ()) -> None:
        self.kind = kind
        self._builtin_modules = tuple(builtin_modules)
        self._entries: Dict[str, Callable] = {}
        self._builtins_loaded = False

    def _load_builtins(self) -> None:
        if self._builtins_loaded:
            return
        # Mark first: the builtin modules import this module back to call
        # register(), which must not recurse into loading.  On failure the
        # flag is reset so the next lookup re-raises the real import error
        # instead of reporting a misleading empty registry.
        self._builtins_loaded = True
        try:
            for module in self._builtin_modules:
                importlib.import_module(module)
        except BaseException:
            self._builtins_loaded = False
            raise

    def register(self, name: str, *, overwrite: bool = False) -> Callable:
        """Decorator registering a builder under ``name``.

        Duplicate names raise :class:`ValueError` unless ``overwrite=True``
        is passed -- silently replacing a builder would make two runs of the
        same spec mean different things.
        """
        if not isinstance(name, str) or not name:
            raise ValueError(f"{self.kind} name must be a non-empty string, got {name!r}")

        def decorator(builder: Callable) -> Callable:
            if not overwrite and name in self._entries:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered; pass overwrite=True "
                    "to replace it"
                )
            self._entries[name] = builder
            return builder

        return decorator

    def unregister(self, name: str) -> None:
        """Remove a registration (mainly for tests tearing down custom entries)."""
        self._entries.pop(name, None)

    def get(self, name: str) -> Callable:
        """The builder registered under ``name``; unknown names list the known ones."""
        self._load_builtins()
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; registered: {self.names()}"
            ) from None

    def names(self) -> List[str]:
        """Sorted names of every registered builder."""
        self._load_builtins()
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        self._load_builtins()
        return name in self._entries


#: Run-time steering policy builders.
POLICIES = Registry("steering policy", builtin_modules=("repro.steering",))

#: Compile-time partitioner builders.
PARTITIONERS = Registry("partitioner", builtin_modules=("repro.partition",))

#: Machine presets (Table 2 geometries).
MACHINES = Registry("machine preset", builtin_modules=("repro.cluster.config",))

#: Built-in named scenarios (figures, table 1, ablation sweeps).
SCENARIOS = Registry("scenario", builtin_modules=("repro.scenarios.builtin",))


def register_policy(name: str, *, overwrite: bool = False) -> Callable:
    """Register a steering-policy builder: ``@register_policy("OP")``.

    If the builder *consumes* its ``num_virtual_clusters`` argument, set
    ``uses_virtual_clusters=True`` on every configuration naming the policy:
    the engine's result cache keys only the knobs a configuration declares,
    so an undeclared dependency would let runs at different virtual-cluster
    counts share cache entries.
    """
    return POLICIES.register(name, overwrite=overwrite)


def register_partitioner(name: str, *, overwrite: bool = False) -> Callable:
    """Register a partitioner builder: ``@register_partitioner("VC")``.

    As with :func:`register_policy`: if the builder consumes its
    ``num_virtual_clusters`` argument, configurations naming it must set
    ``uses_virtual_clusters=True`` so the result cache keys the count.
    """
    return PARTITIONERS.register(name, overwrite=overwrite)


def register_machine(name: str, *, overwrite: bool = False) -> Callable:
    """Register a machine preset: ``@register_machine("table2-2c")``."""
    return MACHINES.register(name, overwrite=overwrite)


def register_scenario(name: str, *, overwrite: bool = False) -> Callable:
    """Register a scenario factory: ``@register_scenario("figure5")``."""
    return SCENARIOS.register(name, overwrite=overwrite)


def build_policy(name: str, params: Dict[str, object], num_clusters: int, num_virtual_clusters: int):
    """Instantiate the policy registered under ``name`` for the given geometry."""
    return POLICIES.get(name)(num_clusters, num_virtual_clusters, **params)


def build_partitioner(
    name: str,
    params: Dict[str, object],
    num_clusters: int,
    num_virtual_clusters: int,
    region_size: int,
):
    """Instantiate the partitioner registered under ``name`` for the given geometry."""
    return PARTITIONERS.get(name)(num_clusters, num_virtual_clusters, region_size, **params)


def build_machine(name: str, overrides: Dict[str, object]):
    """Resolve a machine preset to a :class:`~repro.cluster.config.ClusterConfig`."""
    return MACHINES.get(name)(**overrides)
