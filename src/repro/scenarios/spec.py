"""Serializable scenario specifications.

A :class:`ScenarioSpec` is the declarative description of one experiment:
the machine (a registered preset plus overrides), the workloads, the steering
configurations, the simulation knobs, and optional sweep axes that are
grid-expanded into the engine's job matrix.  Specs are frozen dataclasses of
plain data -- picklable, hashable, and losslessly convertible to/from JSON
(``from_dict(to_dict(spec)) == spec``) -- so an experiment can live in a
``.json`` file, travel to worker processes, and key the on-disk result cache.

Example scenario file::

    {
      "name": "my-sweep",
      "report": "sweep",
      "machine": {"preset": "table2-2c"},
      "benchmarks": ["164.gzip-1", "178.galgel"],
      "configurations": ["OP", "VC"],
      "trace_length": 2000,
      "sweep": [{"parameter": "link_latency", "values": [1, 2, 4]}]
    }

Run it with ``python -m repro run my_sweep.json --jobs 4``.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cluster.config import ClusterConfig
from repro.experiments.configs import (
    Params,
    SteeringConfiguration,
    freeze_params,
    thaw_params,
)
from repro.experiments.runner import ExperimentSettings
from repro.scenarios.registry import build_machine

#: ScenarioSpec fields a sweep axis may target directly.
_SWEEPABLE_SPEC_FIELDS = ("trace_length", "max_phases", "region_size", "num_virtual_clusters")

#: ClusterConfig fields a sweep axis may target (applied as machine overrides).
_MACHINE_FIELDS = tuple(f.name for f in fields(ClusterConfig))


@dataclass(frozen=True)
class MachineSpec:
    """A machine: a registered preset name plus field overrides.

    ``resolve()`` builds the :class:`~repro.cluster.config.ClusterConfig` by
    calling the preset builder with the overrides, so presets stay the single
    source of truth for Table 2 geometries.
    """

    preset: str = "table2-2c"
    overrides: Params = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "overrides", freeze_params(self.overrides))

    def resolve(self) -> ClusterConfig:
        """The :class:`ClusterConfig` this spec describes."""
        return build_machine(self.preset, dict(self.overrides))

    def with_overrides(self, **overrides: object) -> "MachineSpec":
        """A copy with extra overrides folded in (used by sweep expansion)."""
        merged = dict(self.overrides)
        merged.update(overrides)
        return replace(self, overrides=freeze_params(merged))

    def to_dict(self) -> Dict[str, object]:
        return {"preset": self.preset, "overrides": thaw_params(self.overrides)}

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, object]]) -> "MachineSpec":
        """Rebuild from :meth:`to_dict` output (a bare string names a preset)."""
        if isinstance(data, str):
            return cls(preset=data)
        unknown = set(data) - {"preset", "overrides"}
        if unknown:
            raise ValueError(f"unknown machine fields {sorted(unknown)}")
        return cls(
            preset=str(data.get("preset", "table2-2c")),
            overrides=freeze_params(data.get("overrides")),
        )


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter: a field name and the values to grid over.

    ``parameter`` may be a :class:`ScenarioSpec` simulation knob
    (``trace_length``, ``max_phases``, ``region_size``,
    ``num_virtual_clusters``) or any
    :class:`~repro.cluster.config.ClusterConfig` field (``link_latency``,
    ``iq_int_size``...).  When one logical parameter drives several machine
    fields (the issue-queue sweep sets the INT and FP queues together), list
    them in ``fields`` and ``parameter`` becomes the display name.
    """

    parameter: str
    values: Tuple[object, ...]
    fields: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        object.__setattr__(self, "fields", tuple(self.fields))
        if not self.values:
            raise ValueError(f"sweep axis {self.parameter!r} has no values")
        for field_name in self.target_fields:
            if field_name not in _SWEEPABLE_SPEC_FIELDS and field_name not in _MACHINE_FIELDS:
                raise ValueError(
                    f"cannot sweep {field_name!r}; expected a simulation knob "
                    f"{_SWEEPABLE_SPEC_FIELDS} or a ClusterConfig field"
                )

    @property
    def target_fields(self) -> Tuple[str, ...]:
        """The spec/machine fields this axis sets (defaults to ``parameter``)."""
        return self.fields or (self.parameter,)

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"parameter": self.parameter, "values": list(self.values)}
        if self.fields:
            data["fields"] = list(self.fields)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepAxis":
        unknown = set(data) - {"parameter", "values", "fields"}
        if unknown:
            raise ValueError(f"unknown sweep-axis fields {sorted(unknown)}")
        return cls(
            parameter=str(data["parameter"]),
            values=tuple(data["values"]),
            fields=tuple(data.get("fields", ())),
        )


#: Stopping-rule modes understood by the adaptive report kinds.
_STOPPING_MODES = ("ci", "race", "bisect")


@dataclass(frozen=True)
class StoppingRule:
    """Declarative early-stopping rule for replicated scenarios.

    Interpreted by the adaptive report kinds (``"replicated"``, ``"race"``,
    ``"crossover"``; see :mod:`repro.scenarios.adaptive`):

    Parameters
    ----------
    mode:
        ``"ci"`` (stop each configuration once its confidence interval is
        tight enough), ``"race"`` (retire configurations that cannot win the
        ranking) or ``"bisect"`` (bisect the sweep axis for a crossover
        instead of grid-expanding it).
    enabled:
        ``False`` runs the exhaustive grid but still *replays* the stopping
        decisions over the sampled-value prefixes, so the printed tables are
        byte-identical to the adaptive run (the CLI's ``--no-adaptive``).
    confidence:
        Two-sided confidence level of every interval; one of the committed
        critical-value tables (0.90 / 0.95 / 0.99).
    min_replications:
        Replications every configuration samples before any decision
        (at least 2 -- an interval needs a variance estimate).
    rel_precision:
        ``"ci"`` mode: stop once the half-width is at most this fraction of
        the running mean.
    tie_margin:
        ``"race"`` mode: racers whose paired difference to the leader lies
        entirely within this fraction of the leader's mean are declared tied
        and stop sampling (0 disables tie detection).
    axis:
        ``"bisect"`` mode: the swept parameter to bisect (defaults to the
        scenario's only sweep axis).
    """

    mode: str
    enabled: bool = True
    confidence: float = 0.95
    min_replications: int = 2
    rel_precision: float = 0.01
    tie_margin: float = 0.0
    axis: Optional[str] = None

    def __post_init__(self) -> None:
        from repro.engine.adaptive import SUPPORTED_CONFIDENCE

        if self.mode not in _STOPPING_MODES:
            raise ValueError(
                f"unknown stopping mode {self.mode!r}; expected one of {_STOPPING_MODES}"
            )
        if self.confidence not in SUPPORTED_CONFIDENCE:
            raise ValueError(
                f"confidence {self.confidence!r} has no committed critical-value "
                f"table; supported: {SUPPORTED_CONFIDENCE}"
            )
        if self.min_replications < 2:
            raise ValueError("min_replications must be at least 2")
        if self.rel_precision <= 0:
            raise ValueError("rel_precision must be positive")
        if self.tie_margin < 0:
            raise ValueError("tie_margin must be non-negative")

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"mode": self.mode}
        for field_spec in fields(self):
            if field_spec.name == "mode":
                continue
            value = getattr(self, field_spec.name)
            if value != field_spec.default:
                data[field_spec.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "StoppingRule":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown stopping-rule fields {sorted(unknown)}; expected a "
                f"subset of {sorted(known)}"
            )
        if "mode" not in data:
            raise ValueError("a stopping rule needs a 'mode'")
        return cls(**{name: data[name] for name in known if name in data})


@dataclass(frozen=True)
class ScenarioSpec:
    """One declaratively described experiment.

    Parameters
    ----------
    name:
        Scenario name (used in titles and the ``scenarios list`` output).
    report:
        Report kind interpreting the results (see
        :data:`repro.scenarios.runner.REPORT_KINDS`): ``"table"``,
        ``"figure5"``, ``"figure6"``, ``"figure7"``, ``"table1"`` or
        ``"sweep"``.
    description:
        One-line description for listings.
    machine:
        Machine preset plus overrides.
    num_virtual_clusters:
        Virtual clusters exposed by the ISA (configurations may pin their
        own count on top).
    benchmarks:
        Trace names; empty means the full SPEC CPU2000 suite.
    configurations:
        Steering configurations, baseline (or comparison subject) first.
    trace_length / max_phases / region_size:
        Simulation knobs, as in
        :class:`~repro.experiments.runner.ExperimentSettings`.
    sweep:
        Sweep axes, grid-expanded by :meth:`expand_sweep` (used by the
        ``"sweep"`` report kind).
    replications:
        Seed blocks per configuration: replication ``r`` re-runs the whole
        benchmark set with every profile's ``base_seed`` shifted by the
        r-th seed-block stride, so replications are independent end-to-end
        samples of the same experiment (replication 0 is the unshifted
        profile, sharing traces and cache entries with non-replicated
        scenarios).  Used by the statistical report kinds (``"replicated"``,
        ``"race"``, ``"crossover"``).
    stopping:
        Optional :class:`StoppingRule` declaring how the statistical report
        kinds may stop sampling early.
    """

    name: str
    report: str = "table"
    description: str = ""
    machine: MachineSpec = MachineSpec()
    num_virtual_clusters: int = 2
    benchmarks: Tuple[str, ...] = ()
    configurations: Tuple[SteeringConfiguration, ...] = ()
    trace_length: int = 2500
    max_phases: int = 1
    region_size: int = 128
    sweep: Tuple[SweepAxis, ...] = ()
    replications: int = 1
    stopping: Optional[StoppingRule] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "benchmarks", tuple(self.benchmarks))
        object.__setattr__(self, "configurations", tuple(self.configurations))
        object.__setattr__(self, "sweep", tuple(self.sweep))
        names = [configuration.name for configuration in self.configurations]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ValueError(f"duplicate configuration names: {sorted(duplicates)}")
        if self.replications < 1:
            raise ValueError("replications must be at least 1")

    # -- execution-facing views --------------------------------------------------
    def settings(self) -> ExperimentSettings:
        """The :class:`ExperimentSettings` this spec describes.

        The machine preset is resolved to a full
        :class:`~repro.cluster.config.ClusterConfig` and re-expressed as the
        geometry plus the fields that differ from the Table 2 defaults, which
        is exactly what the engine keys its cache by.
        """
        machine_config = self.machine.resolve()
        default = ClusterConfig(num_clusters=machine_config.num_clusters)
        overrides = {
            f.name: getattr(machine_config, f.name)
            for f in fields(ClusterConfig)
            if getattr(machine_config, f.name) != getattr(default, f.name)
        }
        return ExperimentSettings(
            num_clusters=machine_config.num_clusters,
            num_virtual_clusters=self.num_virtual_clusters,
            trace_length=self.trace_length,
            max_phases=self.max_phases,
            region_size=self.region_size,
            config_overrides=overrides,
        )

    def validate(self) -> None:
        """Check every registry name the spec refers to, before running.

        A typo'd policy, partitioner, machine preset, report kind or
        benchmark name raises here (``KeyError``/``ValueError`` with the
        known names listed) instead of surfacing mid-run.
        """
        from repro.scenarios.registry import MACHINES, PARTITIONERS, POLICIES
        from repro.scenarios.runner import REPORT_KINDS
        from repro.workloads.spec2000 import all_trace_names

        REPORT_KINDS.get(self.report)
        MACHINES.get(self.machine.preset)
        for configuration in self.configurations:
            POLICIES.get(configuration.policy)
            if configuration.partitioner is not None:
                PARTITIONERS.get(configuration.partitioner)
        known = set(all_trace_names("all"))
        unknown = [name for name in self.benchmarks if name not in known]
        if unknown:
            raise ValueError(f"unknown benchmarks: {unknown}")

    def resolved_benchmarks(self) -> List[str]:
        """The benchmark list, defaulting to the full SPEC CPU2000 suite."""
        if self.benchmarks:
            return list(self.benchmarks)
        from repro.workloads.spec2000 import all_trace_names

        return all_trace_names("all")

    def expand_sweep(self) -> List[Tuple[Dict[str, object], "ScenarioSpec"]]:
        """Grid-expand the sweep axes.

        Returns ``(point, spec)`` pairs: ``point`` maps each axis' display
        parameter to its value, ``spec`` is this spec with the values applied
        (simulation knobs replaced, machine fields folded into overrides) and
        the sweep cleared.  Without axes, the single pair ``({}, self)``.
        """
        if not self.sweep:
            return [({}, replace(self, sweep=()))]
        points: List[Tuple[Dict[str, object], "ScenarioSpec"]] = []
        for values in itertools.product(*(axis.values for axis in self.sweep)):
            point = dict(zip((axis.parameter for axis in self.sweep), values))
            spec = replace(self, sweep=())
            for axis, value in zip(self.sweep, values):
                for field_name in axis.target_fields:
                    if field_name in _SWEEPABLE_SPEC_FIELDS:
                        spec = replace(spec, **{field_name: value})
                    else:
                        spec = replace(
                            spec, machine=spec.machine.with_overrides(**{field_name: value})
                        )
            points.append((point, spec))
        return points

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-compatible dump (``from_dict`` round-trips exactly).

        The statistical fields (``replications``/``stopping``) are emitted
        only when set, so pre-existing scenario files stay byte-identical.
        """
        data: Dict[str, object] = {
            "name": self.name,
            "report": self.report,
            "description": self.description,
            "machine": self.machine.to_dict(),
            "num_virtual_clusters": self.num_virtual_clusters,
            "benchmarks": list(self.benchmarks),
            "configurations": [
                configuration.to_dict() for configuration in self.configurations
            ],
            "trace_length": self.trace_length,
            "max_phases": self.max_phases,
            "region_size": self.region_size,
            "sweep": [axis.to_dict() for axis in self.sweep],
        }
        if self.replications != 1:
            data["replications"] = self.replications
        if self.stopping is not None:
            data["stopping"] = self.stopping.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a hand-written dict).

        Configurations may be bare Table 3 names (``"VC"``) or full dicts;
        the machine may be a bare preset name.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scenario fields {sorted(unknown)}; expected a subset of "
                f"{sorted(known)}"
            )
        if "name" not in data:
            raise ValueError("a scenario needs a 'name'")
        kwargs: Dict[str, object] = {"name": data["name"]}
        for field_name in ("report", "description", "num_virtual_clusters",
                           "trace_length", "max_phases", "region_size",
                           "replications"):
            if field_name in data:
                kwargs[field_name] = data[field_name]
        if "machine" in data:
            kwargs["machine"] = MachineSpec.from_dict(data["machine"])
        if "benchmarks" in data:
            kwargs["benchmarks"] = tuple(data["benchmarks"])
        if "configurations" in data:
            kwargs["configurations"] = tuple(
                SteeringConfiguration.from_dict(entry) for entry in data["configurations"]
            )
        if "sweep" in data:
            kwargs["sweep"] = tuple(SweepAxis.from_dict(entry) for entry in data["sweep"])
        if data.get("stopping") is not None:
            kwargs["stopping"] = StoppingRule.from_dict(data["stopping"])
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    def save(self, path: Union[str, Path]) -> None:
        """Write the spec to a JSON scenario file."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ScenarioSpec":
        """Load a spec from a JSON scenario file."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from exc
        if not isinstance(data, Mapping):
            raise ValueError(f"{path}: a scenario file must hold one JSON object")
        return cls.from_dict(data)


def scenario_overrides(
    spec: ScenarioSpec,
    benchmarks: Optional[Sequence[str]] = None,
    trace_length: Optional[int] = None,
    max_phases: Optional[int] = None,
) -> ScenarioSpec:
    """Apply the CLI's common overrides (``--benchmarks``/``--trace-length``/
    ``--phases``) to a spec, leaving omitted knobs untouched."""
    if benchmarks is not None:
        spec = replace(spec, benchmarks=tuple(benchmarks))
    if trace_length is not None:
        spec = replace(spec, trace_length=trace_length)
    if max_phases is not None:
        spec = replace(spec, max_phases=max_phases)
    return spec
