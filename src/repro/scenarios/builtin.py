"""The paper's evaluation as built-in named scenarios.

Every figure, Table 1 and the four ablation sweeps are plain
:class:`~repro.scenarios.spec.ScenarioSpec` values built from the Table 3
configuration registry -- run them by name (``python -m repro run figure5``),
dump them to JSON (``examples/figure5.json`` is exactly
``builtin_scenario("figure5")``), or use them as starting points for custom
scenario files.
"""

from __future__ import annotations

from repro.experiments.ablations import DEFAULT_ABLATION_BENCHMARKS
from repro.experiments.configs import TABLE3_CONFIGURATIONS, table3_configurations, vc_variant
from repro.scenarios.registry import SCENARIOS, register_scenario
from repro.scenarios.spec import MachineSpec, ScenarioSpec, StoppingRule, SweepAxis


def builtin_scenario(name: str) -> ScenarioSpec:
    """The built-in scenario called ``name`` (see ``SCENARIOS.names()``)."""
    return SCENARIOS.get(name)()


@register_scenario("figure5")
def figure5_scenario() -> ScenarioSpec:
    """Figure 5: 2-cluster slowdown of every Table 3 configuration vs OP."""
    return ScenarioSpec(
        name="figure5",
        report="figure5",
        description="2-cluster slowdown vs OP (Figure 5)",
        machine=MachineSpec(preset="table2-2c"),
        num_virtual_clusters=2,
        configurations=tuple(table3_configurations()),
    )


@register_scenario("figure6")
def figure6_scenario() -> ScenarioSpec:
    """Figure 6: copy / balance trade-off of VC versus OB, RHOP and OP."""
    return ScenarioSpec(
        name="figure6",
        report="figure6",
        description="copy/balance trade-off of VC vs OB, RHOP, OP (Figure 6)",
        machine=MachineSpec(preset="table2-2c"),
        num_virtual_clusters=2,
        configurations=tuple(
            TABLE3_CONFIGURATIONS[name] for name in ("VC", "OB", "RHOP", "OP")
        ),
    )


@register_scenario("figure7")
def figure7_scenario() -> ScenarioSpec:
    """Figure 7: 4-cluster scalability study with the VC(4->4)/VC(2->4) variants."""
    return ScenarioSpec(
        name="figure7",
        report="figure7",
        description="4-cluster scalability study (Figure 7)",
        machine=MachineSpec(preset="table2-4c"),
        num_virtual_clusters=4,
        configurations=(
            TABLE3_CONFIGURATIONS["OP"],
            TABLE3_CONFIGURATIONS["OB"],
            TABLE3_CONFIGURATIONS["RHOP"],
            vc_variant("VC(4->4)", 4),
            vc_variant("VC(2->4)", 2),
        ),
    )


@register_scenario("table1")
def table1_scenario() -> ScenarioSpec:
    """Table 1: steering-unit complexity comparison (no simulation)."""
    return ScenarioSpec(
        name="table1",
        report="table1",
        description="steering-unit complexity comparison (Table 1)",
        machine=MachineSpec(preset="table2-2c"),
        num_virtual_clusters=2,
        configurations=tuple(table3_configurations()),
    )


@register_scenario("quickstart")
def quickstart_scenario() -> ScenarioSpec:
    """All five Table 3 configurations on one benchmark."""
    return ScenarioSpec(
        name="quickstart",
        report="table",
        description="all Table 3 configurations on one benchmark",
        machine=MachineSpec(preset="table2-2c"),
        num_virtual_clusters=2,
        benchmarks=("164.gzip-1",),
        configurations=tuple(table3_configurations()),
        trace_length=3000,
    )


@register_scenario("sweep-virtual-clusters")
def sweep_virtual_clusters_scenario() -> ScenarioSpec:
    """Ablation: virtual-cluster count on the 2-cluster machine."""
    return ScenarioSpec(
        name="sweep-virtual-clusters",
        report="sweep",
        description="ablation sweep: virtual-cluster count (VC vs OP)",
        machine=MachineSpec(preset="table2-2c"),
        benchmarks=DEFAULT_ABLATION_BENCHMARKS,
        configurations=(TABLE3_CONFIGURATIONS["OP"], TABLE3_CONFIGURATIONS["VC"]),
        sweep=(SweepAxis(parameter="num_virtual_clusters", values=(1, 2, 4, 8)),),
    )


@register_scenario("sweep-link-latency")
def sweep_link_latency_scenario() -> ScenarioSpec:
    """Ablation: inter-cluster link latency (VC and RHOP vs OP)."""
    return ScenarioSpec(
        name="sweep-link-latency",
        report="sweep",
        description="ablation sweep: inter-cluster link latency (OP, RHOP, VC)",
        machine=MachineSpec(preset="table2-2c"),
        benchmarks=DEFAULT_ABLATION_BENCHMARKS,
        configurations=(
            TABLE3_CONFIGURATIONS["OP"],
            TABLE3_CONFIGURATIONS["RHOP"],
            TABLE3_CONFIGURATIONS["VC"],
        ),
        sweep=(SweepAxis(parameter="link_latency", values=(1, 2, 4, 8)),),
    )


@register_scenario("sweep-region-size")
def sweep_region_size_scenario() -> ScenarioSpec:
    """Ablation: compiler window (region size) of the software passes."""
    return ScenarioSpec(
        name="sweep-region-size",
        report="sweep",
        description="ablation sweep: compiler region size (OP, RHOP, VC)",
        machine=MachineSpec(preset="table2-2c"),
        benchmarks=DEFAULT_ABLATION_BENCHMARKS,
        configurations=(
            TABLE3_CONFIGURATIONS["OP"],
            TABLE3_CONFIGURATIONS["RHOP"],
            TABLE3_CONFIGURATIONS["VC"],
        ),
        sweep=(SweepAxis(parameter="region_size", values=(16, 32, 64, 128, 256)),),
    )


@register_scenario("sweep-issue-queue-size")
def sweep_issue_queue_size_scenario() -> ScenarioSpec:
    """Ablation: per-cluster INT/FP issue-queue sizes (swept together)."""
    return ScenarioSpec(
        name="sweep-issue-queue-size",
        report="sweep",
        description="ablation sweep: issue-queue size (OP vs VC)",
        machine=MachineSpec(preset="table2-2c"),
        benchmarks=DEFAULT_ABLATION_BENCHMARKS,
        configurations=(TABLE3_CONFIGURATIONS["OP"], TABLE3_CONFIGURATIONS["VC"]),
        sweep=(
            SweepAxis(
                parameter="issue_queue_size",
                values=(16, 32, 48, 96),
                fields=("iq_int_size", "iq_fp_size"),
            ),
        ),
    )


@register_scenario("adaptive-race")
def adaptive_race_scenario() -> ScenarioSpec:
    """Race every Table 3 configuration for the best steering policy.

    Replications are shared seed blocks (common random numbers), so the
    race retires clearly-worse configurations after a couple of paired
    replications instead of paying the full 16-replication grid -- the
    repository's adaptive-savings benchmark headline runs exactly this
    scenario shape.
    """
    return ScenarioSpec(
        name="adaptive-race",
        report="race",
        description="race Table 3 configurations for the best policy (adaptive)",
        machine=MachineSpec(preset="table2-2c"),
        benchmarks=DEFAULT_ABLATION_BENCHMARKS,
        configurations=tuple(table3_configurations()),
        trace_length=800,
        replications=16,
        stopping=StoppingRule(mode="race", min_replications=2, tie_margin=0.02),
    )


@register_scenario("crossover-link-latency")
def crossover_link_latency_scenario() -> ScenarioSpec:
    """Bisect for the link latency where load-balance-only steering loses.

    OB steers purely for load balance (communication-oblivious), so its
    cycles degrade steeply with inter-cluster link latency while the
    unclustered baseline is flat -- somewhere along the axis, not
    clustering at all becomes the better machine.  The bisection locates
    that crossover with ``2 + O(log n)`` axis probes instead of the full
    grid.
    """
    return ScenarioSpec(
        name="crossover-link-latency",
        report="crossover",
        description="bisect the OB vs one-cluster crossover over link latency",
        machine=MachineSpec(preset="table2-2c"),
        benchmarks=("164.gzip-1", "181.mcf"),
        configurations=(
            TABLE3_CONFIGURATIONS["one-cluster"],
            TABLE3_CONFIGURATIONS["OB"],
        ),
        trace_length=800,
        sweep=(SweepAxis(parameter="link_latency", values=(4, 8, 16, 24, 32, 48, 64)),),
        stopping=StoppingRule(mode="bisect", axis="link_latency"),
    )
