"""The shared-memory write sanitizer: freeze-on-bind for compiled traces.

The engine shares one :class:`~repro.uops.compiled.CompiledTrace` across
many consumers -- the per-process trace memo, the content-addressed artifact
store, shared-memory segments, and every configuration of a batch bound to
the same processor.  The bit-identity contract therefore requires that
nobody ever mutates a trace's stored columns in place: an in-place write
would silently corrupt *sibling* runs that hold the same arrays (the static
side of this contract is detlint rule DET109; see DESIGN.md §7).

``$REPRO_SANITIZE=1`` turns the convention into an assertion:
:meth:`ClusteredProcessor.bind` freezes the stored columns of every trace it
binds (``writeable=False`` on the numpy arrays), so any in-place mutation --
from the simulator, a steering policy, or test code -- raises ``ValueError:
assignment destination is read-only`` at the offending line instead of
corrupting a sibling batch.  Shared-memory attachments are *always* frozen,
sanitizer or not (:meth:`SharedTraceSegment.load` marks its views read-only
unconditionally); the sanitizer extends the same protection to the memo /
artifact / freshly-generated paths that back every other substrate.

The flag is read per resolution (not at import), so tests and the CLI can
toggle it; blank values mean "unset", mirroring the other ``$REPRO_*``
knobs.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["SANITIZE_ENV", "resolve_sanitize"]

#: Environment variable enabling the write sanitizer.
SANITIZE_ENV = "REPRO_SANITIZE"

#: Values (lower-cased, stripped) read as "disabled"; anything else enables.
_FALSE_VALUES = frozenset({"", "0", "false", "off", "no"})


def resolve_sanitize(explicit: Optional[bool] = None) -> bool:
    """Whether the write sanitizer is enabled.

    An explicit argument wins; otherwise ``$REPRO_SANITIZE`` decides, with
    unset/blank/``0``/``false``/``off``/``no`` meaning disabled and any
    other value (canonically ``1``) meaning enabled.
    """
    if explicit is not None:
        return bool(explicit)
    env = os.environ.get(SANITIZE_ENV)
    if env is None:
        return False
    return env.strip().lower() not in _FALSE_VALUES
