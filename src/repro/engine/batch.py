"""Batch scheduling: group a run's jobs by the trace they consume.

Every figure and table of the paper is a sweep of many steering
configurations over the *same* workload traces -- the configuration axis is
wide, the trace axis is narrow.  A :class:`RunPlan` makes that structure
explicit: it partitions a job sequence into one :class:`JobBatch` per
distinct :meth:`~repro.engine.job.SimulationJob.trace_key`, so the engine
can pay every fixed per-trace cost (artifact load or generation, SoA column
hoisting, processor construction) once per *batch* instead of once per *job*
-- the classic trace-driven-simulation amortisation.

Two invariants make batching invisible in the results:

* **Partitioning preserves job order.**  Each batch records the original
  indices of its jobs in ascending order, every job lands in exactly one
  batch, and the engine writes results back by index -- so reports see
  per-job order exactly as if the jobs had run one by one.
* **Batch order is deterministic.**  Batches are sorted by trace key (a
  content hash, unique per batch by construction), matching the ordering the
  per-job scheduler used for chunk locality.  The same job list always
  produces the same plan.

The plan is pure description: it never executes anything, and it never
inspects configurations -- grouping depends only on the trace identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Container, Dict, List, Sequence, Tuple

from repro.engine.job import SimulationJob


@dataclass(frozen=True)
class JobBatch:
    """All jobs of one run that simulate the same compiled trace.

    Parameters
    ----------
    trace_key:
        The shared :meth:`SimulationJob.trace_key` of every job in the batch.
    indices:
        Positions of the jobs in the original job sequence, ascending.
    jobs:
        The jobs themselves, in the same (original) order as ``indices``.
    """

    trace_key: str
    indices: Tuple[int, ...]
    jobs: Tuple[SimulationJob, ...]

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.jobs) or not self.jobs:
            raise ValueError("a batch needs equally many indices and jobs (at least one)")

    @property
    def width(self) -> int:
        """Number of configurations sharing this batch's trace."""
        return len(self.jobs)


@dataclass(frozen=True)
class RoundTask:
    """One schedulable work unit of a run round: a batch narrowed to its
    still-pending jobs.

    ``indices``/``jobs`` are the batch members that still need simulation
    (possibly empty -- a fully cached batch still appears, so schedulers can
    account it); ``cached`` counts the batch members the result cache
    already served.
    """

    trace_key: str
    indices: Tuple[int, ...]
    jobs: Tuple[SimulationJob, ...]
    cached: int

    @property
    def width(self) -> int:
        """Jobs this task will actually execute."""
        return len(self.jobs)


@dataclass(frozen=True)
class RunPlan:
    """A job sequence partitioned into per-trace batches.

    Built with :meth:`from_jobs`; ``batches`` are ordered by trace key and
    jointly cover the input exactly (every index once, ascending within each
    batch).
    """

    batches: Tuple[JobBatch, ...]
    num_jobs: int

    @classmethod
    def from_jobs(cls, jobs: Sequence[SimulationJob]) -> "RunPlan":
        """Group ``jobs`` by trace key, preserving per-trace job order."""
        groups: Dict[str, List[int]] = {}
        for index, job in enumerate(jobs):
            groups.setdefault(job.trace_key(), []).append(index)
        batches = tuple(
            JobBatch(
                trace_key=key,
                indices=tuple(indices),
                jobs=tuple(jobs[index] for index in indices),
            )
            for key, indices in sorted(groups.items())
        )
        return cls(batches=batches, num_jobs=len(jobs))

    @property
    def num_traces(self) -> int:
        """Number of distinct traces (= batches) in the plan."""
        return len(self.batches)

    @property
    def max_width(self) -> int:
        """Widest batch (configurations per trace)."""
        return max((batch.width for batch in self.batches), default=0)

    @property
    def mean_width(self) -> float:
        """Average configurations per trace."""
        return self.num_jobs / self.num_traces if self.batches else 0.0

    def round_tasks(self, pending: Container[int]) -> List[RoundTask]:
        """The plan narrowed to ``pending`` job indices, as round work units.

        One :class:`RoundTask` per batch, in plan (trace-key) order -- the
        deterministic round schedule the engine executes and the adaptive
        scheduler cancels against.  Jobs outside ``pending`` are counted as
        ``cached`` on their task; a batch with every job cached yields an
        empty task rather than disappearing, so schedulers can account
        fully-cached batches without re-deriving the grouping.
        """
        tasks: List[RoundTask] = []
        for batch in self.batches:
            indices = tuple(index for index in batch.indices if index in pending)
            tasks.append(
                RoundTask(
                    trace_key=batch.trace_key,
                    indices=indices,
                    jobs=tuple(self.jobs_for(batch, indices)),
                    cached=batch.width - len(indices),
                )
            )
        return tasks

    @staticmethod
    def jobs_for(batch: JobBatch, indices: Sequence[int]) -> List[SimulationJob]:
        """The jobs of ``batch`` at the given original-sequence ``indices``."""
        by_index = dict(zip(batch.indices, batch.jobs))
        return [by_index[index] for index in indices]
