"""Job execution: inline serial runs and process-pool fan-out.

:func:`execute_job` is the single code path that turns a
:class:`~repro.engine.job.SimulationJob` into metrics -- the serial executor
calls it inline, worker processes call it via ``ProcessPoolExecutor``.
Because trace generation is fully seeded (profile + phase) and the simulator
is deterministic, the same job produces bit-identical metrics in either mode;
:class:`ParallelRunner` only decides *where* jobs run and consults the
optional result cache, never *what* they compute.

Traces move through two cache layers.  The durable layer is the
content-addressed :class:`~repro.engine.artifacts.TraceArtifactStore`:
compiled traces (plus their static programs) persisted as ``.npz`` artifacts
keyed by :meth:`SimulationJob.trace_key`, shared by every worker process,
every configuration of a phase and every later invocation.  On top of it
each process keeps a small in-memory memo (``_TRACE_MEMO``) so the jobs of
one batch do not even touch the filesystem twice.  Loading an artifact is an
order of magnitude cheaper than regenerating the trace, and with artifacts
disabled the memo alone reproduces the old regenerate-per-process behaviour.
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.metrics import SimulationMetrics
from repro.cluster.processor import ClusteredProcessor
from repro.engine.artifacts import TraceArtifactStore
from repro.engine.cache import ResultCache
from repro.engine.job import SimulationJob
from repro.workloads.generator import WorkloadGenerator

class _AutoTraceRoot:
    """Unique sentinel type for :data:`AUTO_TRACE_ROOT` (compared by identity,
    so a directory literally named ``"auto"`` is still a valid path)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "AUTO_TRACE_ROOT"


#: Sentinel for :class:`ParallelRunner`'s ``trace_root``: derive the artifact
#: directory from the result cache (``<cache root>/traces``).
AUTO_TRACE_ROOT = _AutoTraceRoot()

#: Per-process ``(trace root, trace_key) -> (program, compiled trace)`` memo.
#: Keyed by the artifact root as well so a memo entry produced with artifacts
#: disabled can never satisfy (and silently skip populating) a later run that
#: requested a store.  Bounded so a full 40-trace suite cannot hold every
#: generated trace alive at once.
_TRACE_MEMO: "OrderedDict[Tuple[Optional[str], str], Tuple[object, object]]" = OrderedDict()
_TRACE_MEMO_CAP = 16

#: Per-process artifact-store instances, one per root directory, so one
#: worker reuses a single set of hit/miss counters across its jobs.
_STORES: Dict[str, TraceArtifactStore] = {}


def trace_store_for(root: Union[str, Path, None]) -> Optional[TraceArtifactStore]:
    """The per-process :class:`TraceArtifactStore` for ``root`` (``None`` -> none)."""
    if root is None:
        return None
    key = str(root)
    store = _STORES.get(key)
    if store is None:
        store = TraceArtifactStore(key)
        _STORES[key] = store
    return store


def _trace_for(
    job: SimulationJob,
    trace_root: Optional[str] = None,
    store: Optional[TraceArtifactStore] = None,
):
    """The program and compiled trace of ``job``'s phase: memo, store, or fresh.

    Lookup order is memo -> artifact store -> generate (and then populate
    both layers), so within a process each phase trace is produced at most
    once and across processes at most one worker pays for generation.  An
    explicit ``store`` overrides the per-process registry (serial runs pass
    their runner's own instance so its counters stay per-runner).
    """
    if store is None:
        store = trace_store_for(trace_root)
    root_key = str(store.root) if store is not None else None
    trace_key = job.trace_key()
    memo_key = (root_key, trace_key)
    cached = _TRACE_MEMO.get(memo_key)
    if cached is not None:
        _TRACE_MEMO.move_to_end(memo_key)
        return cached
    entry = store.get(trace_key) if store is not None else None
    if entry is None:
        generator = WorkloadGenerator(job.profile, register_space=job.register_space)
        program, compiled = generator.generate_compiled_trace(job.trace_length, phase=job.phase)
        entry = (program, compiled)
        if store is not None:
            store.put(trace_key, program, compiled)
    _TRACE_MEMO[memo_key] = entry
    while len(_TRACE_MEMO) > _TRACE_MEMO_CAP:
        _TRACE_MEMO.popitem(last=False)
    return entry


def execute_job(
    job: SimulationJob,
    trace_root: Optional[str] = None,
    trace_store: Optional[TraceArtifactStore] = None,
) -> Dict[str, object]:
    """Run one simulation job and return the lossless metrics dump.

    This is the engine's only execution path; it reproduces the serial
    runner's per-phase sequence exactly: load/build the compiled phase trace,
    annotate the program with the configuration's compile-time pass (or clear
    stale annotations for hardware-only schemes), scatter the annotations
    into the compiled trace, instantiate the run-time policy and the machine,
    simulate.  The dict return type keeps the cross-process payload plain
    (cheap to pickle, schema-checked on rebuild).
    """
    program, compiled = _trace_for(job, trace_root, trace_store)
    configuration = job.configuration
    partitioner = configuration.make_partitioner(
        job.num_clusters, job.num_virtual_clusters, job.region_size
    )
    if partitioner is not None:
        partitioner.annotate_program(program)
    else:
        program.clear_annotations()
    compiled.annotate_from(program)
    policy = configuration.make_policy(job.num_clusters, job.num_virtual_clusters)
    processor = ClusteredProcessor(job.machine_config(), policy, job.register_space)
    return processor.run(compiled).to_dict()


class ParallelRunner:
    """Fan simulation jobs out over processes, with optional result caching.

    Parameters
    ----------
    max_workers:
        Worker processes.  ``1`` (the default) executes jobs inline in the
        calling process -- the serial fallback -- and is bit-identical to any
        parallel run of the same jobs.
    cache:
        Optional :class:`~repro.engine.cache.ResultCache`; hits skip
        simulation entirely, results of fresh runs are stored back.
    trace_root:
        Directory of the on-disk compiled-trace artifacts shared by the
        workers.  :data:`AUTO_TRACE_ROOT` (the default) places it next to the
        result cache (``<cache root>/traces``) and disables artifacts when
        there is no cache; ``None`` disables artifacts explicitly (workers
        regenerate traces from their seeds, as before).
    """

    def __init__(
        self,
        max_workers: int = 1,
        cache: Optional[ResultCache] = None,
        trace_root: Union[str, Path, None] = AUTO_TRACE_ROOT,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers
        self.cache = cache
        if trace_root is AUTO_TRACE_ROOT:
            trace_root = cache.root / "traces" if cache is not None else None
        self.trace_root: Optional[str] = None if trace_root is None else str(trace_root)
        self._trace_store: Optional[TraceArtifactStore] = (
            TraceArtifactStore(self.trace_root) if self.trace_root is not None else None
        )
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def trace_store(self) -> Optional[TraceArtifactStore]:
        """This runner's trace artifact store (``None`` if disabled).

        A per-runner instance (not the per-process worker registry), so its
        hit/miss counters describe exactly this runner's serial traffic --
        like the result cache's counters.  Parallel runs touch the store
        from the worker processes, which keep their own counters.
        """
        return self._trace_store

    def _get_pool(self) -> ProcessPoolExecutor:
        """The worker pool, created lazily and reused across :meth:`run` calls.

        Reuse matters for batched callers like the ablation sweeps: one
        shared engine then pays pool start-up (and, under the ``spawn`` start
        method, worker-side trace loading) once instead of per sweep point.
        Idle workers are reclaimed by the interpreter's exit handler; call
        :meth:`shutdown` to release them earlier.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def shutdown(self) -> None:
        """Release the worker pool (a later :meth:`run` recreates it)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def run(self, jobs: Sequence[SimulationJob]) -> List[SimulationMetrics]:
        """Execute ``jobs`` and return their metrics in the same order.

        Configurations are declarative (registry names + parameters), so
        *every* job -- stock Table 3, variants, and user-registered custom
        policies alike -- may be served from the cache or fanned out to
        worker processes.
        """
        results: List[Optional[SimulationMetrics]] = [None] * len(jobs)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(jobs)
        for index, job in enumerate(jobs):
            if self.cache is not None:
                keys[index] = job.cache_key()
                cached = self.cache.get(keys[index])
                if cached is not None:
                    results[index] = cached
                    continue
            pending.append(index)

        if pending:
            if self.max_workers == 1 or len(pending) == 1:
                dumps = [
                    execute_job(
                        jobs[index],
                        trace_root=self.trace_root,
                        trace_store=self._trace_store,
                    )
                    for index in pending
                ]
            else:
                # Sort so jobs sharing a trace are adjacent and chunk the map
                # accordingly: a worker then receives a phase's configurations
                # together and loads (or generates and stores) the compiled
                # trace once -- the per-process memo and the shared artifact
                # store do the rest.  Results stay index-aligned via `pending`.
                pending.sort(key=lambda index: (jobs[index].trace_key(), index))
                chunksize = max(1, len(pending) // (self.max_workers * 4))
                pool = self._get_pool()
                dumps = list(
                    pool.map(
                        partial(execute_job, trace_root=self.trace_root),
                        [jobs[index] for index in pending],
                        chunksize=chunksize,
                    )
                )
            for index, dump in zip(pending, dumps):
                metrics = SimulationMetrics.from_dict(dump)
                results[index] = metrics
                if self.cache is not None:
                    self.cache.put(keys[index], metrics)

        assert all(metrics is not None for metrics in results)
        return results  # every slot is filled: cached, inline, or executed above
