"""Job execution: inline serial runs and persistent-pool fan-out.

:func:`execute_job` turns one :class:`~repro.engine.job.SimulationJob` into
metrics; :func:`execute_batch` does the same for *all* configurations of one
trace at once, against a single in-memory
:class:`~repro.uops.compiled.CompiledTrace` and a reused
:class:`~repro.cluster.processor.ClusteredProcessor` (the
``bind``/``run_bound`` path).  Because trace generation is fully seeded
(profile + phase) and the simulator is deterministic, the same job produces
bit-identical metrics in every mode -- serial, parallel, batched,
shared-memory or cache-replayed; :class:`ParallelRunner` only decides
*where* and *in what grouping* jobs run, never *what* they compute.

Scheduling is batch-first: the runner partitions a run's jobs into per-trace
:class:`~repro.engine.batch.JobBatch` groups (see
:class:`~repro.engine.batch.RunPlan`), consults the result cache per batch --
fully-cached batches never reach a worker -- and ships each remaining batch
as one worker task, so every fixed per-trace cost (artifact load or
generation, SoA hoisting, processor construction) is paid once per trace
instead of once per job.  ``batching=False`` restores the per-job
scheduling of earlier releases.

Parallel batches ride a **persistent substrate**: the runner's
:class:`~repro.engine.pool.WorkerPool` outlives individual :meth:`run` calls
(``shutdown()`` pauses it; the next run transparently respawns), and with
shared memory enabled (the default where available) each distinct trace is
published exactly once into a :class:`~repro.engine.shm.SharedTraceSegment`
that warm workers attach to by name -- no column bytes travel through the
task queue or the filesystem, and segments stay resident across runs until
the runner shuts down.  Results stream back per batch as tasks complete
(:meth:`ParallelRunner.run_stream`), rather than materialising at a single
barrier.  Where shared memory is unavailable (or disabled with
``shared_memory=False``) the engine falls back to the classic pickle path:
workers acquire traces themselves from the artifact store or by
regeneration.

Traces also move through two durable cache layers.  The content-addressed
:class:`~repro.engine.artifacts.TraceArtifactStore` persists compiled traces
(plus their static programs) as ``.npz`` artifacts keyed by
:meth:`SimulationJob.trace_key`, shared by every worker process, every
configuration of a phase and every later invocation.  On top of it each
process keeps a small in-memory memo (``_TRACE_MEMO``) so the jobs of one
batch do not even touch the filesystem twice.  The memo's capacity is
configurable (:func:`resolve_trace_memo_cap`): explicitly via
``ParallelRunner(trace_memo_cap=...)`` or ``$REPRO_TRACE_MEMO_CAP``, and by
default sized to the run's batch width -- a batch task keeps its one trace
alive for its whole duration, so the wider the batches, the fewer memo
entries are worth holding.
"""

from __future__ import annotations

import math
import os
import warnings
import weakref
from collections import OrderedDict
from concurrent.futures import Future, as_completed
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.cluster.metrics import SimulationMetrics
from repro.cluster.processor import ClusteredProcessor
from repro.engine.adaptive import ZERO_ADAPTIVE_STATS
from repro.engine.artifacts import TraceArtifactStore
from repro.engine.batch import RoundTask, RunPlan
from repro.engine.cache import ResultCache
from repro.engine.job import SimulationJob
from repro.engine.pool import WorkerPool
from repro.engine.shm import SegmentRegistry, attach_segment, shared_memory_available
from repro.workloads.generator import WorkloadGenerator

class _AutoTraceRoot:
    """Unique sentinel type for :data:`AUTO_TRACE_ROOT` (compared by identity,
    so a directory literally named ``"auto"`` is still a valid path)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "AUTO_TRACE_ROOT"


#: Sentinel for :class:`ParallelRunner`'s ``trace_root``: derive the artifact
#: directory from the result cache (``<cache root>/traces``).
AUTO_TRACE_ROOT = _AutoTraceRoot()

#: Per-process ``(trace root, trace_key) -> (program, compiled trace)`` memo.
#: Keyed by the artifact root as well so a memo entry produced with artifacts
#: disabled can never satisfy (and silently skip populating) a later run that
#: requested a store.  Bounded so a full 40-trace suite cannot hold every
#: generated trace alive at once.
_TRACE_MEMO: "OrderedDict[Tuple[Optional[str], str], Tuple[object, object]]" = OrderedDict()

#: Default memo capacity when neither ``trace_memo_cap`` nor the environment
#: sets one and jobs are scheduled one by one (batch width 1).
DEFAULT_TRACE_MEMO_CAP = 16

#: Environment variable overriding the memo capacity.
TRACE_MEMO_CAP_ENV = "REPRO_TRACE_MEMO_CAP"

#: Per-process artifact-store instances, one per root directory, so one
#: worker reuses a single set of hit/miss counters across its jobs.
_STORES: Dict[str, TraceArtifactStore] = {}

#: Zeroed trace-traffic counters (template for aggregation).
_ZERO_TRACE_STATS = {"hits": 0, "misses": 0, "stores": 0}

#: Zeroed shared-memory counters (template for :meth:`ParallelRunner.shm_stats`).
_ZERO_SHM_STATS = {"segments": 0, "bytes": 0, "published": 0, "reused": 0, "unlinked": 0}


def _resolve_env_trace_memo_cap() -> Optional[int]:
    """``$REPRO_TRACE_MEMO_CAP`` as a validated capacity, or ``None``.

    A malformed or non-positive value cannot crash (or silently misconfigure)
    a run that never asked for a custom cap: it warns once per resolution and
    falls back to the width-scaled default.  An empty (or whitespace-only)
    value is how shells express "unset" (``REPRO_TRACE_MEMO_CAP= cmd``), so
    it resolves to the default silently rather than warning about a
    malformed integer.
    """
    env = os.environ.get(TRACE_MEMO_CAP_ENV)
    if env is None or not env.strip():
        return None
    try:
        cap = int(env)
    except ValueError:
        warnings.warn(
            f"${TRACE_MEMO_CAP_ENV}={env!r} is not an integer; "
            "ignoring it and using the width-scaled default",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    if cap < 1:
        warnings.warn(
            f"${TRACE_MEMO_CAP_ENV}={env!r} must be a positive integer; "
            "ignoring it and using the width-scaled default",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    return cap


def resolve_trace_memo_cap(
    explicit: Optional[int] = None, batch_width: Optional[float] = None
) -> int:
    """The per-process trace-memo capacity to use for a run.

    Resolution order: an explicit value (``ParallelRunner(trace_memo_cap=N)``)
    wins, then a *valid* ``$REPRO_TRACE_MEMO_CAP`` (malformed or non-positive
    values warn and are ignored), then a width-scaled default --
    :data:`DEFAULT_TRACE_MEMO_CAP` divided by the run's mean batch width
    (floor 2).  A batch task holds its trace alive for its whole duration,
    so wide batches shrink the memo's useful working set: per-job scheduling
    (width 1) keeps the classic 16 entries, an 8-configuration sweep needs
    only a couple.  The cap never drops below 1.
    """
    if explicit is not None:
        cap = int(explicit)
    else:
        cap = _resolve_env_trace_memo_cap()
        if cap is None:
            if batch_width is not None and batch_width > 1:
                cap = max(2, math.ceil(DEFAULT_TRACE_MEMO_CAP / batch_width))
            else:
                cap = DEFAULT_TRACE_MEMO_CAP
    return max(1, cap)


def trace_store_for(root: Union[str, Path, None]) -> Optional[TraceArtifactStore]:
    """The per-process :class:`TraceArtifactStore` for ``root`` (``None`` -> none)."""
    if root is None:
        return None
    key = str(root)
    store = _STORES.get(key)
    if store is None:
        store = TraceArtifactStore(key)
        _STORES[key] = store
    return store


def _trace_for(
    job: SimulationJob,
    trace_root: Optional[str] = None,
    store: Optional[TraceArtifactStore] = None,
    memo_cap: Optional[int] = None,
):
    """The program and compiled trace of ``job``'s phase: memo, store, or fresh.

    Lookup order is memo -> artifact store -> generate (and then populate
    both layers), so within a process each phase trace is produced at most
    once and across processes at most one worker pays for generation.  An
    explicit ``store`` overrides the per-process registry (serial runs pass
    their runner's own instance so its counters stay per-runner).
    """
    if store is None:
        store = trace_store_for(trace_root)
    cap = memo_cap if memo_cap is not None else resolve_trace_memo_cap()
    root_key = str(store.root) if store is not None else None
    trace_key = job.trace_key()
    memo_key = (root_key, trace_key)
    cached = _TRACE_MEMO.get(memo_key)
    if cached is not None:
        _TRACE_MEMO.move_to_end(memo_key)
        return cached
    entry = store.get(trace_key) if store is not None else None
    if entry is None:
        generator = WorkloadGenerator(job.profile, register_space=job.register_space)
        program, compiled = generator.generate_compiled_trace(job.trace_length, phase=job.phase)
        entry = (program, compiled)
        if store is not None:
            store.put(trace_key, program, compiled)
    _TRACE_MEMO[memo_key] = entry
    while len(_TRACE_MEMO) > cap:
        _TRACE_MEMO.popitem(last=False)
    return entry


def _prepare_job(job: SimulationJob, program, compiled):
    """Annotate ``program``/``compiled`` for ``job`` and build its run-time policy.

    The shared per-configuration sequence of both execution paths: run the
    configuration's compile-time pass (or clear stale annotations for
    hardware-only schemes), scatter the annotations into the compiled trace,
    instantiate the policy.
    """
    configuration = job.configuration
    partitioner = configuration.make_partitioner(
        job.num_clusters, job.num_virtual_clusters, job.region_size
    )
    if partitioner is not None:
        partitioner.annotate_program(program)
    else:
        program.clear_annotations()
    compiled.annotate_from(program)
    return configuration.make_policy(job.num_clusters, job.num_virtual_clusters)


def execute_job(
    job: SimulationJob,
    trace_root: Optional[str] = None,
    trace_store: Optional[TraceArtifactStore] = None,
    memo_cap: Optional[int] = None,
) -> Dict[str, object]:
    """Run one simulation job and return the lossless metrics dump.

    The per-job execution path (and the reference semantics batching must
    reproduce): load/build the compiled phase trace, annotate, instantiate
    the policy and a fresh machine, simulate.  The dict return type keeps the
    cross-process payload plain (cheap to pickle, schema-checked on rebuild).
    """
    program, compiled = _trace_for(job, trace_root, trace_store, memo_cap)
    policy = _prepare_job(job, program, compiled)
    processor = ClusteredProcessor(job.machine_config(), policy, job.register_space)
    return processor.run(compiled).to_dict()


def _simulate_batch(jobs: Sequence[SimulationJob], program, compiled) -> List[Dict[str, object]]:
    """Run all ``jobs`` of one batch against an already-resident trace.

    The shared inner loop of the pickle and shared-memory batch paths: one
    :class:`ClusteredProcessor` per distinct machine geometry is bound to
    the trace and reused across configurations via
    :meth:`ClusteredProcessor.run_bound` -- architectural state is reset
    between runs while the hoisted SoA columns stay alive.  Per job the
    sequence (annotate program, scatter annotations, build policy, simulate
    from clean state) is exactly :func:`execute_job`'s, so dumps are
    bit-identical to per-job execution.
    """
    trace_key = jobs[0].trace_key()
    strays = [job.label for job in jobs[1:] if job.trace_key() != trace_key]
    if strays:
        raise ValueError(
            f"a batch needs jobs sharing one trace_key; {strays} differ "
            f"from {jobs[0].label} (group jobs with RunPlan.from_jobs first)"
        )
    processors: Dict[Tuple[object, ...], ClusteredProcessor] = {}
    dumps: List[Dict[str, object]] = []
    for job in jobs:
        policy = _prepare_job(job, program, compiled)
        key = job.machine_key()
        processor = processors.get(key)
        if processor is None:
            processor = ClusteredProcessor(job.machine_config(), policy, job.register_space)
            processor.bind(compiled)
            processors[key] = processor
        dumps.append(processor.run_bound(policy).to_dict())
    return dumps


def execute_batch(
    jobs: Sequence[SimulationJob],
    trace_root: Optional[str] = None,
    trace_store: Optional[TraceArtifactStore] = None,
    memo_cap: Optional[int] = None,
) -> Dict[str, object]:
    """Run all ``jobs`` of one trace batch and return their metrics dumps.

    The self-contained batch execution path (and the shared-memory path's
    fallback): every job shares one
    :meth:`~repro.engine.job.SimulationJob.trace_key`, so the compiled trace
    is fetched (memo, artifact store, or generated) exactly once and
    simulated against via :func:`_simulate_batch`.

    Returns ``{"dumps": [...], "trace_stats": {...} | None}``; ``dumps`` are
    in job order and ``trace_stats`` is this task's artifact-store traffic
    delta (for parent-side aggregation across workers).
    """
    if not jobs:
        return {"dumps": [], "trace_stats": None}
    store = trace_store if trace_store is not None else trace_store_for(trace_root)
    snapshot = store.stats() if store is not None else None
    program, compiled = _trace_for(jobs[0], trace_root, store, memo_cap)
    dumps = _simulate_batch(jobs, program, compiled)
    return {
        "dumps": dumps,
        "trace_stats": store.stats_since(snapshot) if store is not None else None,
    }


def _execute_segment_batch(
    jobs: Sequence[SimulationJob], segment_name: str
) -> Dict[str, object]:
    """Worker task of the shared-memory path: attach by name and simulate.

    The trace's columns never cross the task queue -- only the jobs and the
    segment name do.  Attachments are cached per worker process, so later
    batches of the same trace (across runs of a persistent pool) reuse the
    mapping.  No artifact-store traffic happens here by construction; the
    parent already accounted the trace's acquisition when it published the
    segment.
    """
    program, compiled = attach_segment(segment_name)
    return {"dumps": _simulate_batch(jobs, program, compiled), "trace_stats": None}


def _execute_job_task(
    job: SimulationJob,
    trace_root: Optional[str] = None,
    memo_cap: Optional[int] = None,
) -> Dict[str, object]:
    """Worker wrapper around :func:`execute_job` that also reports store traffic."""
    store = trace_store_for(trace_root)
    snapshot = store.stats() if store is not None else None
    dump = execute_job(job, trace_root=trace_root, trace_store=store, memo_cap=memo_cap)
    return {
        "dumps": [dump],
        "trace_stats": store.stats_since(snapshot) if store is not None else None,
    }


class ParallelRunner:
    """Fan simulation batches out over a persistent worker substrate.

    Parameters
    ----------
    max_workers:
        Worker processes.  ``1`` (the default) executes everything inline in
        the calling process -- the serial fallback -- and is bit-identical to
        any parallel run of the same jobs.
    cache:
        Optional :class:`~repro.engine.cache.ResultCache`; hits skip
        simulation entirely, results of fresh runs are stored back.
    trace_root:
        Directory of the on-disk compiled-trace artifacts shared by the
        workers.  :data:`AUTO_TRACE_ROOT` (the default) places it next to the
        result cache (``<cache root>/traces``) and disables artifacts when
        there is no cache; ``None`` disables artifacts explicitly (traces are
        regenerated from their seeds, as before).
    batching:
        ``True`` (the default) schedules per-trace batches: jobs are grouped
        by :meth:`~repro.engine.job.SimulationJob.trace_key`, the cache is
        consulted per batch, and one worker task runs all uncached
        configurations of a trace against a single in-memory compiled trace.
        ``False`` restores per-job scheduling.  Results are bit-identical
        either way.
    trace_memo_cap:
        Capacity of the per-process in-memory trace memo; ``None`` (default)
        resolves ``$REPRO_TRACE_MEMO_CAP`` or a batch-width-scaled default
        (see :func:`resolve_trace_memo_cap`).
    shared_memory:
        ``None`` (the default) publishes each batch's compiled trace into a
        shared-memory segment whenever the platform supports it and the run
        is parallel; workers attach by name instead of acquiring traces
        themselves, and segments stay resident across runs until
        :meth:`shutdown`.  ``False`` forces the classic pickle path;
        ``True`` insists on shared memory and falls back (with a warning)
        only when the platform lacks it.  Results are bit-identical in
        every mode.

    Lifecycle
    ---------
    The worker pool and the segment registry persist across :meth:`run`
    calls; :meth:`shutdown` releases both (idempotent), after which a later
    :meth:`run` transparently respawns them.  ``with ParallelRunner(...) as
    runner:`` guarantees the release on the way out, and a dropped runner is
    backstopped by finalizers -- worker processes and shared-memory segments
    never outlive it.
    """

    def __init__(
        self,
        max_workers: int = 1,
        cache: Optional[ResultCache] = None,
        trace_root: Union[str, Path, None] = AUTO_TRACE_ROOT,
        batching: bool = True,
        trace_memo_cap: Optional[int] = None,
        shared_memory: Optional[bool] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if trace_memo_cap is not None and trace_memo_cap < 1:
            raise ValueError("trace_memo_cap must be at least 1")
        self.max_workers = max_workers
        self.cache = cache
        self.batching = batching
        self.trace_memo_cap = trace_memo_cap
        self.shared_memory = shared_memory
        if trace_root is AUTO_TRACE_ROOT:
            trace_root = cache.root / "traces" if cache is not None else None
        self.trace_root: Optional[str] = None if trace_root is None else str(trace_root)
        self._trace_store: Optional[TraceArtifactStore] = (
            TraceArtifactStore(self.trace_root) if self.trace_root is not None else None
        )
        self._worker_trace_stats: Dict[str, int] = dict(_ZERO_TRACE_STATS)
        #: Cumulative batch-scheduling counters across this runner's runs
        #: (the CLI ``[batch]`` footer): distinct traces, total jobs, widest
        #: batch, how many jobs actually executed in batch tasks, how many
        #: batches/jobs the cache served outright, and how many jobs were
        #: cancelled before starting (:meth:`cancel_pending`).  The counters
        #: are kept consistent:
        #: ``jobs == executed_jobs + cached_jobs + cancelled_jobs`` always,
        #: including partially cached batches and aborted runs.
        self.batch_stats: Dict[str, int] = {
            "batches": 0,
            "jobs": 0,
            "max_width": 0,
            "executed_jobs": 0,
            "cached_batches": 0,
            "cached_jobs": 0,
            "cancelled_jobs": 0,
        }
        #: Adaptive-scheduler counters (the CLI ``[adaptive]`` footer),
        #: recorded by the scenario layer's stopping-rule drivers -- the
        #: runner only hosts them (like ``batch_stats``) so one object
        #: carries every footer's numbers.  All zero unless an adaptive
        #: scenario ran on this runner.
        self.adaptive_stats: Dict[str, int] = dict(ZERO_ADAPTIVE_STATS)
        #: In-flight futures of the current parallel run, shared with
        #: :meth:`cancel_pending` so a consumer can retire queued batches
        #: mid-stream.  Maps future -> (original job indices, segment trace
        #: key or ``None`` on the pickle path).
        self._active_futures: Dict[Future, Tuple[List[int], Optional[str]]] = {}
        #: Set by :meth:`cancel_pending`; the inline (serial) batch loop
        #: checks it between tasks, and :meth:`run_stream` resets it.
        self._cancel_requested = False
        self._pool = WorkerPool(max_workers)
        self._segments: Optional[SegmentRegistry] = None
        #: Closed-over shared-memory counters that survive registry release
        #: (``shutdown()`` unlinks the segments but the footer must still
        #: report what happened).
        self._shm_totals: Dict[str, int] = dict(_ZERO_SHM_STATS)
        # Backstop: a runner dropped without shutdown() must not keep worker
        # processes alive for the rest of the interpreter's lifetime.  The
        # segment registry carries its own finalizer.
        self._pool_finalizer = weakref.finalize(self, WorkerPool.shutdown, self._pool, False)

    # ------------------------------------------------------------- lifecycle --
    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Release the worker pool and unlink all shared-memory segments.

        Idempotent, and not terminal: a later :meth:`run` transparently
        respawns the pool (and republishes segments as needed).  Call it --
        or use the runner as a context manager -- when a sweep is done, so
        worker processes and ``/dev/shm`` blocks are returned promptly
        rather than at interpreter exit.
        """
        self._pool.shutdown()
        if self._segments is not None:
            self._segments.close()
            self._segments = None

    # ---------------------------------------------------------------- stores --
    @property
    def trace_store(self) -> Optional[TraceArtifactStore]:
        """This runner's trace artifact store (``None`` if disabled).

        A per-runner instance (not the per-process worker registry), so its
        hit/miss counters describe exactly this runner's serial traffic --
        like the result cache's counters.  Worker-side traffic is aggregated
        separately; :meth:`trace_stats` sums both.
        """
        return self._trace_store

    def trace_stats(self) -> Dict[str, int]:
        """Aggregated artifact-store traffic of this runner's runs.

        Sums the runner's own (serial/inline/publish-side) store counters
        with the per-task deltas reported back by worker processes, so
        parallel runs account their trace loads and generations exactly like
        serial ones.
        """
        totals = dict(self._worker_trace_stats)
        if self._trace_store is not None:
            for name, value in self._trace_store.stats().items():
                totals[name] += value
        return totals

    def shm_stats(self) -> Dict[str, int]:
        """Shared-memory substrate counters of this runner's runs.

        ``segments``/``bytes`` describe what is resident right now;
        ``published``/``reused``/``unlinked`` are cumulative across runs
        (and survive :meth:`shutdown`, so the CLI footer stays truthful
        after cleanup).
        """
        totals = dict(_ZERO_SHM_STATS)
        totals.update(self._shm_totals)
        if self._segments is not None:
            totals["segments"] = len(self._segments)
            totals["bytes"] = self._segments.nbytes
        return totals

    def _use_shared_memory(self) -> bool:
        """Whether parallel batches should ride shared-memory segments."""
        if self.shared_memory is False:
            return False
        if not shared_memory_available():  # pragma: no cover - platform-specific
            if self.shared_memory is True:
                warnings.warn(
                    "shared_memory=True requested but multiprocessing.shared_memory "
                    "is unavailable on this platform; falling back to the pickle path",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return False
        return True

    def _segment_registry(self) -> SegmentRegistry:
        if self._segments is None:
            self._segments = SegmentRegistry()
            # Adopt the cumulative counters so published/reused/unlinked keep
            # accumulating across shutdown()/respawn cycles.
            for name in ("published", "reused", "unlinked"):
                self._segments.stats[name] = self._shm_totals[name]
            self._shm_totals = self._segments.stats
        return self._segments

    def _absorb_task_result(self, result: Dict[str, object]) -> List[Dict[str, object]]:
        """Fold one worker task's trace traffic into the totals; return its dumps."""
        stats = result.get("trace_stats")
        if stats:
            for name in self._worker_trace_stats:
                self._worker_trace_stats[name] += stats.get(name, 0)
        return result["dumps"]

    # ----------------------------------------------------------- cancellation --
    def _cancel_queued(self) -> int:
        """Cancel every queued (not yet started) task of the current run.

        Pops successfully cancelled futures from the active set, releases
        their shared-memory references, and moves their jobs from
        ``executed_jobs`` to ``cancelled_jobs`` so the footer invariant
        ``jobs == executed_jobs + cached_jobs + cancelled_jobs`` holds even
        for abandoned runs.  Returns the number of jobs cancelled.
        """
        cancelled = 0
        for future in list(self._active_futures):
            if future.cancel():
                indices, trace_key = self._active_futures.pop(future)
                if self._segments is not None and trace_key is not None:
                    self._segments.release(trace_key)
                cancelled += len(indices)
        if cancelled:
            self.batch_stats["executed_jobs"] -= cancelled
            self.batch_stats["cancelled_jobs"] += cancelled
        return cancelled

    def cancel_pending(self) -> int:
        """Cancel the current run's not-yet-executed batches.

        Safe to call from the consumer of :meth:`run_stream` at any point
        (including when no run is active -- then it is a no-op).  Queued
        worker tasks are cancelled immediately; batches the inline serial
        loop has not reached yet are skipped when the generator resumes.
        Tasks already executing are never interrupted -- their results still
        stream back, and their jobs stay accounted as executed.  Cancelled
        jobs move from the ``executed`` to the ``cancelled`` footer counter,
        so ``configs == executed + cached + cancelled`` stays true.

        Returns the number of jobs whose worker tasks were retired
        immediately (the serial loop's later skips are not included -- they
        are accounted when the generator resumes).

        The next :meth:`run_stream` call clears the request; cancellation
        never outlives the run it was aimed at.
        """
        self._cancel_requested = True
        return self._cancel_queued()

    # ------------------------------------------------------------- execution --
    def run(self, jobs: Sequence[SimulationJob]) -> List[SimulationMetrics]:
        """Execute ``jobs`` and return their metrics in the same order.

        Configurations are declarative (registry names + parameters), so
        *every* job -- stock Table 3, variants, and user-registered custom
        policies alike -- may be served from the cache or fanned out to
        worker processes.  With batching enabled the jobs are regrouped into
        per-trace batches for execution; the returned list is always in the
        callers' job order (batching is a scheduling concern only).
        """
        results: List[Optional[SimulationMetrics]] = [None] * len(jobs)
        for index, metrics in self.run_stream(jobs):
            results[index] = metrics
        assert all(metrics is not None for metrics in results)
        return results  # every slot is filled: cached, inline, or streamed above

    def run_stream(
        self, jobs: Sequence[SimulationJob]
    ) -> Iterator[Tuple[int, SimulationMetrics]]:
        """Execute ``jobs``, yielding ``(index, metrics)`` as results land.

        Cached results are yielded first (immediately); the rest stream back
        per batch as worker tasks complete -- there is no barrier at the end
        of the run, so a consumer can fold long sweeps incrementally.  Each
        index is yielded exactly once; :meth:`run` is a thin order-restoring
        wrapper over this.
        """
        self._cancel_requested = False
        keys: List[Optional[str]] = [None] * len(jobs)
        if self.cache is not None:
            keys = [job.cache_key() for job in jobs]
            pending = []
            for index, cached in enumerate(self.cache.get_many(keys)):
                if cached is not None:
                    yield index, cached
                else:
                    pending.append(index)
        else:
            pending = list(range(len(jobs)))

        if self.batching:
            yield from self._run_batched(jobs, pending, keys)
        elif pending:
            yield from self._run_per_job(jobs, pending, keys)

    def _store_result(
        self,
        index: int,
        dump: Dict[str, object],
        keys: List[Optional[str]],
    ) -> Tuple[int, SimulationMetrics]:
        metrics = SimulationMetrics.from_dict(dump)
        if self.cache is not None:
            self.cache.put(keys[index], metrics)
        return index, metrics

    def _run_batched(
        self,
        jobs: Sequence[SimulationJob],
        pending: List[int],
        keys: List[Optional[str]],
    ) -> Iterator[Tuple[int, SimulationMetrics]]:
        """Execute the uncached jobs as per-trace batches, streaming results.

        One plan serves both purposes: its batches (narrowed to their
        uncached jobs) are the work units, and its shape feeds the footer
        counters -- fully-cached batches are counted and never reach a
        worker, and partially cached batches account their cached jobs too
        (so ``executed_jobs + cached_jobs == jobs`` holds).
        """
        plan = RunPlan.from_jobs(jobs)
        stats = self.batch_stats
        stats["batches"] += plan.num_traces
        stats["jobs"] += plan.num_jobs
        stats["max_width"] = max(stats["max_width"], plan.max_width)
        tasks: List[RoundTask] = []
        for task in plan.round_tasks(set(pending)):
            stats["cached_jobs"] += task.cached
            if not task.indices:
                stats["cached_batches"] += 1
            else:
                stats["executed_jobs"] += task.width
                tasks.append(task)
        if not tasks:
            return
        memo_cap = resolve_trace_memo_cap(self.trace_memo_cap, plan.mean_width)
        if self.max_workers == 1 or len(tasks) == 1:
            # Inline tasks hit this runner's own store, whose counters are
            # already reported by trace_stats(); absorbing their deltas too
            # would double-count, so read the dumps directly.
            for task in tasks:
                if self._cancel_requested:
                    # cancel_pending() was called between yields; the tasks
                    # not reached yet are skipped and re-accounted, exactly
                    # like cancelled worker futures.
                    stats["executed_jobs"] -= task.width
                    stats["cancelled_jobs"] += task.width
                    continue
                result = execute_batch(
                    task.jobs,
                    trace_root=self.trace_root,
                    trace_store=self._trace_store,
                    memo_cap=memo_cap,
                )
                for index, dump in zip(task.indices, result["dumps"]):
                    yield self._store_result(index, dump, keys)
            return
        yield from self._run_batched_parallel(tasks, keys, memo_cap)

    def _run_batched_parallel(
        self,
        tasks: List[RoundTask],
        keys: List[Optional[str]],
        memo_cap: int,
    ) -> Iterator[Tuple[int, SimulationMetrics]]:
        """Fan batch tasks out over the pool; yield per batch as they finish.

        With shared memory, each task's trace is acquired once in the parent
        (memo -> artifact store -> generate), published as a segment, and the
        worker receives only the jobs plus the segment name.  Without it,
        workers acquire traces themselves (the pickle path).  Either way the
        ``as_completed`` loop streams results; a worker crash discards the
        poisoned pool (no leaked executor processes) and surfaces as a clear
        error, and outstanding segment references are always released.

        In-flight futures live in ``self._active_futures`` so
        :meth:`cancel_pending` can retire queued tasks from the consumer
        side; retired futures leave the map, and the completion loop skips
        whatever :mod:`concurrent.futures` still reports for them.
        """
        use_shm = self._use_shared_memory()
        registry = self._segment_registry() if use_shm else None
        if registry is not None:
            # Submit warm batches first: their segments are already resident,
            # so workers start immediately while the parent generates (or
            # loads) the cold traces -- publish is parent-side work, and
            # front-loading the cheap submissions maximises its overlap with
            # worker execution.  Stable sort, so same-temperature batches
            # keep their deterministic plan order.
            tasks = sorted(
                tasks,
                key=lambda task: registry.get(task.trace_key) is None,
            )
        futures = self._active_futures
        futures.clear()
        try:
            for task in tasks:
                if self._cancel_requested:
                    # cancel_pending() landed while this loop was publishing
                    # or submitting; do not submit the rest.
                    self.batch_stats["executed_jobs"] -= task.width
                    self.batch_stats["cancelled_jobs"] += task.width
                    continue
                indices = list(task.indices)
                if registry is not None:
                    trace_key = task.trace_key
                    segment = registry.publish(
                        trace_key,
                        lambda job=task.jobs[0]: _trace_for(
                            job, self.trace_root, self._trace_store, memo_cap
                        ),
                    )
                    registry.acquire(trace_key)
                    try:
                        future = self._pool.submit(
                            _execute_segment_batch, task.jobs, segment.name
                        )
                    except BaseException:
                        # The task never existed, so the finally loop below
                        # will not release its reference -- do it here.
                        registry.release(trace_key)
                        raise
                    futures[future] = (indices, trace_key)
                else:
                    future = self._pool.submit(
                        execute_batch,
                        task.jobs,
                        trace_root=self.trace_root,
                        memo_cap=memo_cap,
                    )
                    futures[future] = (indices, None)
            for future in as_completed(list(futures)):
                entry = futures.get(future)
                if entry is None:
                    continue  # retired by cancel_pending() while queued
                indices, _ = entry
                dumps = self._absorb_task_result(future.result())
                for index, dump in zip(indices, dumps):
                    yield self._store_result(index, dump, keys)
        except BrokenProcessPool as exc:
            self._pool.mark_broken()
            raise RuntimeError(
                "a worker process died mid-run; the pool was discarded and "
                "will be respawned by the next run (results of this run are "
                "incomplete)"
            ) from exc
        finally:
            # Retire whatever never started (keeps the footer invariant for
            # abandoned runs), then drop references of the rest.
            self._cancel_queued()
            for _, trace_key in futures.values():
                if registry is not None and trace_key is not None:
                    registry.release(trace_key)
            futures.clear()

    def _run_per_job(
        self,
        jobs: Sequence[SimulationJob],
        pending: List[int],
        keys: List[Optional[str]],
    ) -> Iterator[Tuple[int, SimulationMetrics]]:
        """Legacy per-job scheduling (``batching=False``)."""
        memo_cap = resolve_trace_memo_cap(self.trace_memo_cap)
        if self.max_workers == 1 or len(pending) == 1:
            for index in pending:
                dump = execute_job(
                    jobs[index],
                    trace_root=self.trace_root,
                    trace_store=self._trace_store,
                    memo_cap=memo_cap,
                )
                yield self._store_result(index, dump, keys)
            return
        # Sort so jobs sharing a trace are adjacent and chunk the map
        # accordingly: a worker then receives a phase's configurations
        # together and loads (or generates and stores) the compiled trace
        # once -- the per-process memo and the shared artifact store do the
        # rest.  Results stay index-aligned via `pending`.
        pending = sorted(pending, key=lambda index: (jobs[index].trace_key(), index))
        chunksize = max(1, len(pending) // (self.max_workers * 4))
        try:
            for index, result in zip(
                pending,
                self._pool.executor().map(
                    partial(_execute_job_task, trace_root=self.trace_root, memo_cap=memo_cap),
                    [jobs[index] for index in pending],
                    chunksize=chunksize,
                ),
            ):
                yield self._store_result(index, self._absorb_task_result(result)[0], keys)
        except BrokenProcessPool as exc:
            self._pool.mark_broken()
            raise RuntimeError(
                "a worker process died mid-run; the pool was discarded and "
                "will be respawned by the next run (results of this run are "
                "incomplete)"
            ) from exc
