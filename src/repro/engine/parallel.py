"""Job execution: inline serial runs and process-pool fan-out.

:func:`execute_job` is the single code path that turns a
:class:`~repro.engine.job.SimulationJob` into metrics -- the serial executor
calls it inline, worker processes call it via ``ProcessPoolExecutor``.
Because trace generation is fully seeded (profile + phase) and the simulator
is deterministic, the same job produces bit-identical metrics in either mode;
:class:`ParallelRunner` only decides *where* jobs run and consults the
optional result cache, never *what* they compute.

Each process keeps a small memo of generated ``(program, trace)`` pairs keyed
by :meth:`SimulationJob.trace_key`, mirroring the trace sharing of the old
serial runner: all configurations of one phase see the exact same dynamic µop
stream without regenerating it per job.
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.metrics import SimulationMetrics
from repro.cluster.processor import ClusteredProcessor
from repro.engine.cache import ResultCache
from repro.engine.job import SimulationJob
from repro.workloads.generator import WorkloadGenerator

#: Per-process ``trace_key -> (program, trace)`` memo.  Bounded so a full
#: 40-trace suite cannot hold every generated trace alive at once.
_TRACE_MEMO: "OrderedDict[str, Tuple[object, list]]" = OrderedDict()
_TRACE_MEMO_CAP = 16


def _trace_for(job: SimulationJob):
    """Generate (or reuse) the program and dynamic trace of ``job``'s phase."""
    key = job.trace_key()
    cached = _TRACE_MEMO.get(key)
    if cached is not None:
        _TRACE_MEMO.move_to_end(key)
        return cached
    generator = WorkloadGenerator(job.profile, register_space=job.register_space)
    program, trace = generator.generate_trace(job.trace_length, phase=job.phase)
    _TRACE_MEMO[key] = (program, trace)
    while len(_TRACE_MEMO) > _TRACE_MEMO_CAP:
        _TRACE_MEMO.popitem(last=False)
    return program, trace


def execute_job(job: SimulationJob) -> Dict[str, object]:
    """Run one simulation job and return the lossless metrics dump.

    This is the engine's only execution path; it reproduces the serial
    runner's per-phase sequence exactly: build/reuse the phase trace,
    annotate the program with the configuration's compile-time pass (or clear
    stale annotations for hardware-only schemes), instantiate the run-time
    policy and the machine, simulate.  The dict return type keeps the
    cross-process payload plain (cheap to pickle, schema-checked on rebuild).
    """
    program, trace = _trace_for(job)
    configuration = job.configuration
    partitioner = configuration.make_partitioner(
        job.num_clusters, job.num_virtual_clusters, job.region_size
    )
    if partitioner is not None:
        partitioner.annotate_program(program)
    else:
        program.clear_annotations()
    policy = configuration.make_policy(job.num_clusters, job.num_virtual_clusters)
    processor = ClusteredProcessor(job.machine_config(), policy, job.register_space)
    return processor.run(trace).to_dict()


class ParallelRunner:
    """Fan simulation jobs out over processes, with optional result caching.

    Parameters
    ----------
    max_workers:
        Worker processes.  ``1`` (the default) executes jobs inline in the
        calling process -- the serial fallback -- and is bit-identical to any
        parallel run of the same jobs.
    cache:
        Optional :class:`~repro.engine.cache.ResultCache`; hits skip
        simulation entirely, results of fresh runs are stored back.
    """

    def __init__(self, max_workers: int = 1, cache: Optional[ResultCache] = None) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers
        self.cache = cache
        self._pool: Optional[ProcessPoolExecutor] = None

    def _get_pool(self) -> ProcessPoolExecutor:
        """The worker pool, created lazily and reused across :meth:`run` calls.

        Reuse matters for batched callers like the ablation sweeps: one
        shared engine then pays pool start-up (and, under the ``spawn`` start
        method, worker-side trace regeneration) once instead of per sweep
        point.  Idle workers are reclaimed by the interpreter's exit handler;
        call :meth:`shutdown` to release them earlier.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def shutdown(self) -> None:
        """Release the worker pool (a later :meth:`run` recreates it)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def run(self, jobs: Sequence[SimulationJob]) -> List[SimulationMetrics]:
        """Execute ``jobs`` and return their metrics in the same order.

        Configurations are declarative (registry names + parameters), so
        *every* job -- stock Table 3, variants, and user-registered custom
        policies alike -- may be served from the cache or fanned out to
        worker processes.
        """
        results: List[Optional[SimulationMetrics]] = [None] * len(jobs)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(jobs)
        for index, job in enumerate(jobs):
            if self.cache is not None:
                keys[index] = job.cache_key()
                cached = self.cache.get(keys[index])
                if cached is not None:
                    results[index] = cached
                    continue
            pending.append(index)

        if pending:
            if self.max_workers == 1 or len(pending) == 1:
                dumps = [execute_job(jobs[index]) for index in pending]
            else:
                # Sort so jobs sharing a trace are adjacent and chunk the map
                # accordingly: a worker then receives a phase's configurations
                # together and generates the trace once (the per-process memo
                # does the rest).  Results stay index-aligned via `pending`.
                pending.sort(key=lambda index: (jobs[index].trace_key(), index))
                chunksize = max(1, len(pending) // (self.max_workers * 4))
                pool = self._get_pool()
                dumps = list(
                    pool.map(
                        execute_job,
                        [jobs[index] for index in pending],
                        chunksize=chunksize,
                    )
                )
            for index, dump in zip(pending, dumps):
                metrics = SimulationMetrics.from_dict(dump)
                results[index] = metrics
                if self.cache is not None:
                    self.cache.put(keys[index], metrics)

        assert all(metrics is not None for metrics in results)
        return results  # every slot is filled: cached, inline, or executed above
