"""Parallel experiment engine with deterministic result caching.

The paper's methodology is an embarrassingly parallel job matrix: every
benchmark contributes up to ten PinPoints phases, every phase is simulated
under every steering configuration on the *same* dynamic trace, and
benchmark-level numbers are PinPoints-weighted averages of the per-phase
numbers.  This package turns that matrix into independent, picklable
:class:`~repro.engine.job.SimulationJob` units and executes them through a
single code path that is shared by the serial fallback, the process pool and
the cache-replay path:

``SimulationJob`` (:mod:`repro.engine.job`)
    One ``benchmark x phase x configuration`` cell, plus every knob that
    influences the result.  Exposes a stable content hash used as the cache
    key (PinPoints weights and display names are excluded -- they do not
    change the simulation).

``ResultCache`` (:mod:`repro.engine.cache`)
    Content-addressed on-disk store of lossless
    :meth:`~repro.cluster.metrics.SimulationMetrics.to_dict` dumps.  Repeated
    figure runs and overlapping ablation sweeps skip already-simulated
    points; integer counters survive the JSON round trip bit-for-bit.

``TraceArtifactStore`` (:mod:`repro.engine.artifacts`)
    Content-addressed on-disk store of compiled trace artifacts
    (:class:`~repro.uops.compiled.CompiledTrace` columns plus the pickled
    static program) keyed by :meth:`SimulationJob.trace_key`.  Workers load
    phase traces instead of regenerating them; every configuration of a
    phase shares one artifact.

``RunPlan`` / ``JobBatch`` / ``RoundTask`` (:mod:`repro.engine.batch`)
    The batch-scheduling layer: a run's jobs partitioned into one batch per
    distinct trace key (deterministic order, job order preserved), so fixed
    per-trace costs are paid once per trace instead of once per job.
    ``RoundTask`` narrows a plan to its still-pending jobs -- the round
    work units the runner executes and the adaptive scheduler cancels
    against.

Adaptive stopping rules (:mod:`repro.engine.adaptive`)
    Pure decision layer for adaptive sweeps: streaming
    :class:`~repro.engine.adaptive.Welford` statistics feed Student-t
    confidence intervals, and three drivers -- :func:`~repro.engine.adaptive.run_ci`
    (stop replicating once a figure is resolved),
    :func:`~repro.engine.adaptive.run_race` (retire configurations whose
    paired gap to the leader is resolved) and
    :func:`~repro.engine.adaptive.run_bisection` (locate a crossover with
    O(log n) axis probes) -- decide *what to sample next* as pure functions
    of already-completed results, never of arrival timing.

``SharedTraceSegment`` / ``SegmentRegistry`` (:mod:`repro.engine.shm`)
    The shared-memory substrate: each distinct compiled trace published once
    into a ``multiprocessing.shared_memory`` block (refcounted, unlinked on
    release), which warm workers attach to by name as zero-copy numpy views
    -- no column bytes cross the task queue, and segments stay resident
    across runs.

``WorkerPool`` (:mod:`repro.engine.pool`)
    The persistent process pool: spawned once per runner, reused across
    runs, transparently respawned after ``shutdown()`` or a worker crash,
    context-manager friendly.

``ParallelRunner`` (:mod:`repro.engine.parallel`)
    Expands nothing and decides nothing about results -- it only chooses
    where and in what grouping jobs run (inline for ``max_workers=1``, else
    the persistent pool; per-trace batches by default, per-job with
    ``batching=False``; shared-memory segments where available, the pickle
    path otherwise) and consults the caches first, per batch, so
    fully-cached batches never reach a worker.  ``run_stream`` delivers
    results per batch as tasks complete instead of at a barrier.

Determinism contract
--------------------
Serial, parallel and cache-replay runs of the same experiment are
**bit-identical**, enforced by ``tests/test_engine_determinism.py``:

* trace generation is fully seeded by ``(profile, phase)``; worker processes
  load the identical compiled trace from the shared artifact store (or
  regenerate it from the job description when artifacts are disabled) rather
  than receiving pickled µops,
* the cycle-level simulator contains no randomness of its own,
* per-phase metrics are integers (plus deterministic floats) that round-trip
  losslessly through the cache, and
* weighted reassembly happens in the parent process in a fixed order, using
  the same :func:`~repro.workloads.pinpoints.weighted_average` arithmetic as
  the original serial runner.

The experiment harness (:class:`~repro.experiments.runner.ExperimentRunner`,
the figure drivers and the ablation sweeps) routes all simulation through
this engine; ``repro.cli`` exposes it as ``--jobs N``, ``--cache-dir PATH``,
``--no-cache``, ``--trace-dir PATH`` and ``--no-trace-artifacts`` on every
experiment command.
"""

from __future__ import annotations

from repro.engine.adaptive import (
    SUPPORTED_CONFIDENCE,
    ZERO_ADAPTIVE_STATS,
    BisectOutcome,
    CIOutcome,
    ConfigOutcome,
    RaceOutcome,
    Welford,
    ci_halfwidth,
    run_bisection,
    run_ci,
    run_race,
    t_critical,
)
from repro.engine.artifacts import TRACE_ARTIFACT_VERSION, TraceArtifactStore
from repro.engine.batch import JobBatch, RoundTask, RunPlan
from repro.engine.cache import ResultCache
from repro.engine.job import CACHE_SCHEMA_VERSION, SimulationJob
from repro.engine.parallel import (
    AUTO_TRACE_ROOT,
    DEFAULT_TRACE_MEMO_CAP,
    TRACE_MEMO_CAP_ENV,
    ParallelRunner,
    execute_batch,
    execute_job,
    resolve_trace_memo_cap,
)
from repro.engine.pool import WorkerPool
from repro.engine.shm import (
    SegmentRegistry,
    SharedTraceSegment,
    shared_memory_available,
)

__all__ = [
    "AUTO_TRACE_ROOT",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_TRACE_MEMO_CAP",
    "SUPPORTED_CONFIDENCE",
    "TRACE_ARTIFACT_VERSION",
    "TRACE_MEMO_CAP_ENV",
    "ZERO_ADAPTIVE_STATS",
    "BisectOutcome",
    "CIOutcome",
    "ConfigOutcome",
    "JobBatch",
    "ParallelRunner",
    "RaceOutcome",
    "ResultCache",
    "RoundTask",
    "RunPlan",
    "SegmentRegistry",
    "SharedTraceSegment",
    "SimulationJob",
    "TraceArtifactStore",
    "Welford",
    "WorkerPool",
    "ci_halfwidth",
    "execute_batch",
    "execute_job",
    "resolve_trace_memo_cap",
    "run_bisection",
    "run_ci",
    "run_race",
    "shared_memory_available",
    "t_critical",
]
