"""A worker pool that outlives individual runs and survives breakage.

:class:`~repro.engine.parallel.ParallelRunner` used to hold a bare
``ProcessPoolExecutor`` with ad-hoc lifecycle rules: ``shutdown()`` left the
runner in an undefined state for later ``run()`` calls, and a worker crash
(``BrokenProcessPool``) silently poisoned the executor so every subsequent
run failed too.  :class:`WorkerPool` pins the rules down:

* **Lazy spawn, persistent reuse.**  Workers are spawned on first use and
  reused across every later ``run()`` -- warm workers keep their per-process
  trace memos and shared-memory attachments, which is where the substrate's
  cross-run wins come from.
* **Shutdown is a pause, not an end.**  ``shutdown()`` releases the
  processes; the next ``submit`` transparently respawns them.  A runner can
  therefore be used, shut down and used again without surprises.
* **Breakage is contained.**  ``mark_broken()`` (called by the runner when a
  task comes back with ``BrokenProcessPool``) discards the poisoned
  executor immediately -- without waiting on its corpse -- so no worker
  processes leak and the next use starts a fresh pool.
* **Context-manager support.**  ``with WorkerPool(n) as pool: ...``
  guarantees the processes are released on the way out, exceptions included.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from typing import Optional


class WorkerPool:
    """A respawnable ``ProcessPoolExecutor`` facade.

    Parameters
    ----------
    max_workers:
        Worker processes to spawn when the pool is (re)created.
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers
        self._executor: Optional[ProcessPoolExecutor] = None
        #: How many times the pool has been (re)spawned -- observability for
        #: tests and the curious.
        self.spawn_count = 0

    @property
    def alive(self) -> bool:
        """Whether worker processes are currently allocated."""
        return self._executor is not None

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, spawning the workers if needed."""
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
            self.spawn_count += 1
        return self._executor

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Submit one task, respawning the pool first if it was released."""
        return self.executor().submit(fn, *args, **kwargs)

    def mark_broken(self) -> None:
        """Discard a poisoned executor (after ``BrokenProcessPool``).

        The executor is shut down without waiting -- its workers are already
        dead or dying -- and dropped, so the next :meth:`submit` starts a
        fresh pool instead of failing forever.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def shutdown(self, wait: bool = True) -> None:
        """Release the worker processes (a later :meth:`submit` respawns)."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "idle"
        return f"WorkerPool(max_workers={self.max_workers}, {state}, spawns={self.spawn_count})"
