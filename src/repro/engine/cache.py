"""Content-addressed on-disk cache of simulation results.

Every cache entry is the lossless :meth:`SimulationMetrics.to_dict` dump of
one :class:`~repro.engine.job.SimulationJob`, stored as JSON under a path
derived from the job's content hash (``<root>/<key[:2]>/<key>.json``).  The
key covers every simulation *input* (see :meth:`SimulationJob.cache_key`),
so for unchanged simulator code a hit is exactly the metrics a fresh run
would produce -- integer counters survive the JSON round trip bit-for-bit,
which is what the determinism test suite enforces.  Edits to simulator
*logic* are invisible to the key: bump
:data:`~repro.engine.job.CACHE_SCHEMA_VERSION` after behaviour changes (the
golden-metrics test flags such changes, and the CLI prints hit/miss counts
so replayed results are never silent).

Writes are atomic (write to a temporary sibling, then ``os.replace``) so
parallel figure runs and overlapping ablation sweeps can safely share one
cache directory; corrupt or schema-incompatible entries are treated as
misses and overwritten rather than propagated.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.cluster.metrics import SimulationMetrics


class ResultCache:
    """Directory-backed map from job content hashes to simulation metrics.

    Parameters
    ----------
    root:
        Cache directory; created on first write.

    Attributes
    ----------
    hits / misses / stores:
        Running counters, exposed so the CLI and the engine benchmarks can
        report cache effectiveness.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimulationMetrics]:
        """Return the cached metrics for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
            metrics = SimulationMetrics.from_dict(data)
        except (OSError, ValueError, TypeError, KeyError):
            # Missing, corrupt or schema-incompatible entry: a miss.
            self.misses += 1
            return None
        self.hits += 1
        return metrics

    def get_many(self, keys: List[str]) -> List[Optional[SimulationMetrics]]:
        """Look up several keys at once (one slot per key, ``None`` on miss).

        The batch scheduler consults the cache per :class:`~repro.engine.batch.JobBatch`
        before dispatching it, so a fully-cached batch -- every slot filled
        -- never reaches a worker.  Counters advance exactly as per-key
        :meth:`get` calls would.
        """
        return [self.get(key) for key in keys]

    def put(self, key: str, metrics: SimulationMetrics) -> None:
        """Store ``metrics`` under ``key`` (atomic, last-writer-wins)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(metrics.to_dict(), handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1

    def stats(self) -> Dict[str, int]:
        """Hit/miss/store counters as a plain dictionary."""
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}
