"""Job descriptions for the parallel experiment engine.

A :class:`SimulationJob` is the unit of work of the engine: one
``(benchmark profile, PinPoints phase, steering configuration)`` triple plus
every knob that influences the simulation result (trace length, region size,
machine geometry, configuration overrides, register space).  Jobs are plain
frozen dataclasses built only from picklable values -- the configuration is
itself declarative data (registry names plus parameters, see
:mod:`repro.experiments.configs`) -- so every job can be shipped to
``ProcessPoolExecutor`` workers, and each exposes a stable content hash
(:meth:`SimulationJob.cache_key`) used by the on-disk result cache.

Two invariants matter here:

* **Everything that changes the metrics is part of the key.**  The key covers
  the full benchmark profile (including its ``base_seed``), the phase, the
  trace length, the machine geometry and overrides, the region size, the
  register space and the configuration's registry identity (policy and
  partitioner names plus their parameters).
* **Nothing presentation-only is part of the key.**  PinPoints weights only
  affect the *aggregation* of per-phase metrics, and a configuration's
  display name only affects table headings; both are excluded so overlapping
  sweeps share cache entries.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from repro.cluster.config import ClusterConfig
from repro.uops.registers import DEFAULT_REGISTER_SPACE, RegisterSpace
from repro.workloads.generator import BenchmarkProfile

if TYPE_CHECKING:  # import at type-check time only: repro.experiments imports
    # the engine back, and jobs only *hold* configurations (the instances
    # carry their own make_policy()/cache_identity() methods), so no runtime
    # import is needed.
    from repro.experiments.configs import SteeringConfiguration

#: Bump when the simulator or workload substrate changes in a way that makes
#: previously cached metrics stale.  (2: declarative registry-based
#: configuration identities replaced the Table 3 base-name identities.)
CACHE_SCHEMA_VERSION = 2


def _canonical_json(payload: object) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _profile_identity(profile: BenchmarkProfile) -> Dict[str, object]:
    """JSON-compatible dump of every profile field (enum keys by name)."""
    data = asdict(profile)
    data["kernel_mix"] = {kind.name: weight for kind, weight in profile.kernel_mix.items()}
    return data


@dataclass(frozen=True)
class SimulationJob:
    """One independent simulation: a benchmark phase under one configuration.

    Parameters
    ----------
    profile:
        The benchmark profile; carried whole (not by name) so custom profiles
        work and so renamed-but-identical profiles never collide in the cache.
    phase:
        PinPoints phase index (selects the per-phase seed and working set).
        The phase *weight* is deliberately not part of the job: it only
        affects the benchmark-level reassembly, which the runner performs
        from its simulation-point plan.
    configuration:
        The declarative steering configuration (registry names + parameters).
    trace_length:
        Dynamic µops to simulate.
    region_size:
        Compiler window of the software passes.
    num_clusters / num_virtual_clusters:
        Machine geometry.
    config_overrides:
        Sorted ``(field, value)`` pairs applied on top of the Table 2
        :class:`~repro.cluster.config.ClusterConfig`.
    register_space:
        Architectural register namespace of the generated trace.
    """

    profile: BenchmarkProfile
    phase: int
    configuration: "SteeringConfiguration"
    trace_length: int
    region_size: int
    num_clusters: int
    num_virtual_clusters: int
    config_overrides: Tuple[Tuple[str, object], ...] = ()
    register_space: RegisterSpace = DEFAULT_REGISTER_SPACE

    @property
    def label(self) -> str:
        """Human-readable job label, e.g. ``"164.gzip-1/p0/VC"``."""
        return f"{self.profile.name}/p{self.phase}/{self.configuration.name}"

    def trace_key(self) -> str:
        """Stable hash of everything that determines the generated trace.

        Jobs running different configurations on the same phase share this
        key, which lets workers memoise the (expensive) trace generation: the
        dynamic µop stream is identical across configurations by design, as
        in the paper's methodology.
        """
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "profile": _profile_identity(self.profile),
            "phase": self.phase,
            "trace_length": self.trace_length,
            "register_space": {
                "num_int": self.register_space.num_int,
                "num_fp": self.register_space.num_fp,
            },
        }
        return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()

    def machine_config(self) -> ClusterConfig:
        """The resolved :class:`ClusterConfig` this job simulates on."""
        config = ClusterConfig(num_clusters=self.num_clusters)
        if self.config_overrides:
            config = config.with_overrides(**dict(self.config_overrides))
        return config

    def machine_key(self) -> Tuple[object, ...]:
        """Hashable identity of the simulated machine (geometry + overrides).

        Jobs of one trace batch that share this key can share one
        :class:`~repro.cluster.processor.ClusteredProcessor` instance across
        configurations (architectural state is reset between runs); jobs with
        different keys need different processors.  The register space is
        included for completeness even though jobs sharing a
        :meth:`trace_key` agree on it by construction.
        """
        return (
            self.num_clusters,
            self.config_overrides,
            self.register_space.num_int,
            self.register_space.num_fp,
        )

    def cache_key(self) -> str:
        """Stable content hash identifying this job's simulation result.

        The machine is keyed by the *resolved* :class:`ClusterConfig` --
        every field, not just the overrides -- so editing a default in
        ``cluster/config.py`` invalidates old cache entries automatically.
        Conversely, only the knobs the configuration actually *consumes* are
        keyed: the virtual-cluster count enters as its effective value
        (configuration override folded over the settings value) and only for
        configurations that use it, and the compiler region size only for
        configurations with a compile-time pass.  Hence ``VC(2->4)`` shares
        entries with an equivalently configured plain VC run, and the OP
        baseline of a virtual-cluster or region-size sweep is simulated once,
        not once per swept value.  Changes to simulator *logic* are invisible
        to hashing; bump :data:`CACHE_SCHEMA_VERSION` for those.
        """
        configuration = self.configuration
        # A pinned count is an explicit declaration that the count matters,
        # so it is keyed even when uses_virtual_clusters was (mis)left False
        # -- e.g. a hand-written scenario pinning VC variants must never
        # share cache entries across counts.
        if configuration.uses_virtual_clusters or configuration.num_virtual_clusters is not None:
            effective_vcs = configuration.effective_virtual_clusters(self.num_virtual_clusters)
        else:
            effective_vcs = None
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "profile": _profile_identity(self.profile),
            "phase": self.phase,
            "configuration": configuration.cache_identity(),
            "trace_length": self.trace_length,
            "region_size": self.region_size if configuration.uses_compiler else None,
            "num_virtual_clusters": effective_vcs,
            "machine_config": asdict(self.machine_config()),
            "register_space": {
                "num_int": self.register_space.num_int,
                "num_fp": self.register_space.num_fp,
            },
        }
        return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()
