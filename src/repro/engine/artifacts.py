"""Content-addressed on-disk store of compiled trace artifacts.

Trace generation -- synthesising the static program and expanding the
dynamic µop stream -- is the second-most expensive step of a simulation job
after the simulation itself, and it is *shared*: every configuration of a
``(benchmark, phase)`` pair consumes the exact same stream (the paper's
methodology).  :class:`TraceArtifactStore` makes that stream a durable
artifact: one ``.npz`` file per :meth:`SimulationJob.trace_key
<repro.engine.job.SimulationJob.trace_key>`, holding the
:class:`~repro.uops.compiled.CompiledTrace` columns plus the pickled static
program, stored under ``<root>/<key[:2]>/<key>.npz``.  Parallel workers (and
later invocations, sweeps, figure reruns) load the artifact instead of
regenerating the trace; the per-process ``_TRACE_MEMO`` in
:mod:`repro.engine.parallel` is just a thin in-memory layer over this store.

Trace artifacts are independent of the steering configuration by design:
annotation columns are refreshed per job via
:meth:`CompiledTrace.annotate_from`, and the µop-class-derived columns
(latency, queue routing) are recomputed on load, so neither compiler passes
nor opcode-table edits can stale an artifact.  What *does* invalidate them
-- changes to the workload synthesis itself -- is exactly what
:meth:`trace_key` covers (profile, phase, length, register space and the
engine schema version), plus this module's :data:`TRACE_ARTIFACT_VERSION`
for layout changes.

Writes are atomic (temporary sibling + ``os.replace``) so concurrent workers
sharing one cache directory race benignly; corrupt, truncated or
version-mismatched files are treated as misses and rewritten.

Security note: the program half of an artifact is a pickle, so artifacts are
trusted local cache state (the same trust level as the result cache), not an
interchange format.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import zipfile
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.program.program import Program
from repro.uops.compiled import CompiledTrace

#: Bump when the artifact layout changes (stored columns, program pickling).
TRACE_ARTIFACT_VERSION = 1


class TraceArtifactStore:
    """Directory-backed map from trace keys to ``(program, compiled trace)``.

    Parameters
    ----------
    root:
        Artifact directory; created on first write.  The engine defaults to
        ``<result-cache>/traces`` so one ``--cache-dir`` governs both caches.

    Attributes
    ----------
    hits / misses / stores:
        Running counters, exposed for the CLI footer and the tests.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.npz"

    def get(self, key: str) -> Optional[Tuple[Program, CompiledTrace]]:
        """Load the artifact for ``key``, or ``None`` on any kind of miss."""
        path = self._path(key)
        try:
            with np.load(path, allow_pickle=False) as data:
                if int(data["artifact_version"][0]) != TRACE_ARTIFACT_VERSION:
                    raise ValueError("trace artifact version mismatch")
                trace = CompiledTrace(
                    **{name: data[name] for name in CompiledTrace.STORED_FIELDS}
                )
                program = pickle.loads(data["program_pickle"].tobytes())
        except (OSError, ValueError, KeyError, TypeError, EOFError, IndexError,
                AttributeError, ImportError, zipfile.BadZipFile,
                pickle.UnpicklingError):
            # Missing, corrupt, truncated or incompatible artifact: a miss.
            # IndexError covers out-of-range opclass codes hitting the derived
            # lookup tables; AttributeError/ImportError cover program pickles
            # written by builds whose classes have since moved or changed.
            self.misses += 1
            return None
        self.hits += 1
        return program, trace

    def put(self, key: str, program: Program, trace: CompiledTrace) -> None:
        """Store ``(program, trace)`` under ``key`` (atomic, last-writer-wins)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = dict(trace.stored_columns())
        payload["program_pickle"] = np.frombuffer(
            pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL), dtype=np.uint8
        )
        payload["artifact_version"] = np.array([TRACE_ARTIFACT_VERSION], dtype=np.int64)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1

    def stats(self) -> Dict[str, int]:
        """Hit/miss/store counters as a plain dictionary."""
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def stats_since(self, snapshot: Dict[str, int]) -> Dict[str, int]:
        """Counter deltas since a previous :meth:`stats` snapshot.

        Worker processes keep one long-lived store per root whose counters
        accumulate across tasks; a task that wants to report *its own*
        traffic snapshots the counters on entry and returns the delta, which
        the parent then sums into its run-level totals (the CLI ``[traces]``
        footer).  Deltas are safe to add across tasks and processes;
        cumulative counters are not.
        """
        return {name: value - snapshot.get(name, 0) for name, value in self.stats().items()}
