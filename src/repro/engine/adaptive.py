"""Adaptive sweep scheduling: stop sampling once the report is resolved.

Replicated statistical scenarios expand every sweep point into a
``configuration x replication`` grid of seed blocks.  Exhaustive expansion
pays for every cell; most cells only confirm what the first few already
established.  This module supplies the *decision layer* that stops sampling
early, in three modes:

``run_ci``  (stopping mode ``"ci"``)
    Per-configuration estimation: stream replication values into a
    :class:`Welford` accumulator and stop once the Student-t confidence
    interval is tight enough for the reported precision.

``run_race``  (stopping mode ``"race"``)
    Ranking: only the best configuration is reported, so configurations are
    *raced*.  Every replication is a seed block shared by all racers
    (common random numbers), so decisions use **paired** per-replication
    differences against the current leader -- seed noise cancels in the
    pairing, which separates configurations far faster than comparing raw
    means.  A racer retires when its paired CI lies entirely above zero
    (significantly worse) or entirely within the tie margin
    (indistinguishable from the leader, which then represents it).

``run_bisection``  (stopping mode ``"bisect"``)
    Crossover location: when a sweep axis is consumed only to find where one
    configuration overtakes another, binary-search the sign change instead
    of evaluating the whole grid.

Determinism contract
--------------------
Every driver is a **pure function of the sampled values**: it consumes
samples through a caller-supplied callback at explicit round barriers
(replication ``r`` of every active configuration, then a decision), and
nothing about arrival timing, worker count or substrate can influence a
decision.  Two consequences, both load-bearing:

* The *set of runs executed* by an adaptive campaign is bit-identical
  across serial / parallel / shm / cache-replay execution -- the decision
  sequence depends only on metric values, and those are bit-identical by
  the engine's contract.
* An exhaustive campaign (``--no-adaptive``) can run the full grid and then
  **replay** the same decision functions over the prefix of values the
  adaptive schedule would have sampled -- producing byte-identical report
  tables.  Adaptive execution changes only what is *paid for*, never what
  is printed.

The drivers know nothing about engines or scenarios;
:mod:`repro.scenarios.adaptive` supplies the sampling callbacks and report
formatting, and :class:`~repro.engine.parallel.ParallelRunner` hosts the
``adaptive_stats`` counters behind the CLI ``[adaptive]`` footer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

#: Confidence levels with committed critical-value tables (two-sided).
SUPPORTED_CONFIDENCE = (0.90, 0.95, 0.99)

#: Two-sided Student-t critical values, df 1..30, then the normal asymptote.
#: A fixed table keeps the decision layer dependency-free (no scipy) and --
#: more importantly -- *stable*: a library upgrade can never nudge a
#: stopping decision.
_T_TABLE: Dict[float, Tuple[float, ...]] = {
    0.90: (
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
        1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
        1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
    ),
    0.95: (
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
        2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
        2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ),
    0.99: (
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
        3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
        2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
    ),
}

_T_ASYMPTOTE: Dict[float, float] = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}

#: Zeroed ``[adaptive]`` footer counters (template for
#: :attr:`ParallelRunner.adaptive_stats`).  ``planned`` counts the
#: simulation runs of the exhaustive grid, ``executed`` the runs the
#: adaptive schedule actually submitted; the ``stop_*`` keys count why
#: sampling stopped, per configuration (or, for bisection, how many grid
#: points were never evaluated).
ZERO_ADAPTIVE_STATS: Dict[str, int] = {
    "planned": 0,
    "executed": 0,
    "stop_resolved": 0,   # ci: the interval got tight enough
    "stop_retired": 0,    # race: significantly worse than the leader
    "stop_tied": 0,       # race: within the tie margin of the leader
    "stop_won": 0,        # race: last racer standing
    "stop_capped": 0,     # the replication cap was reached first
    "stop_bisected": 0,   # bisection: axis points never evaluated
}


def t_critical(confidence: float, df: int) -> float:
    """Two-sided Student-t critical value at ``confidence`` for ``df`` >= 1."""
    table = _T_TABLE.get(confidence)
    if table is None:
        raise ValueError(
            f"confidence {confidence!r} has no committed critical-value table; "
            f"supported: {SUPPORTED_CONFIDENCE}"
        )
    if df < 1:
        raise ValueError("t_critical needs at least one degree of freedom")
    if df <= len(table):
        return table[df - 1]
    return _T_ASYMPTOTE[confidence]


class Welford:
    """Streaming mean/variance accumulator (Welford's online algorithm).

    Numerically stable for incremental use: each :meth:`add` updates the
    running mean and the sum of squared deviations without ever forming a
    catastrophic large-minus-large difference.
    """

    __slots__ = ("count", "mean", "_m2")

    def __init__(self, values: Sequence[float] = ()) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        for value in values:
            self.add(value)

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); ``inf`` below two samples."""
        if self.count < 2:
            return math.inf
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation; ``inf`` below two samples."""
        variance = self.variance
        return math.sqrt(variance) if math.isfinite(variance) else math.inf


def ci_halfwidth(stats: Welford, confidence: float) -> float:
    """Half-width of the two-sided ``confidence`` CI around ``stats.mean``.

    ``inf`` below two samples (no variance estimate -> nothing is resolved),
    ``0`` for a degenerate zero-variance sample.
    """
    if stats.count < 2:
        return math.inf
    return t_critical(confidence, stats.count - 1) * stats.std / math.sqrt(stats.count)


#: A sampling barrier: ``sample_round(rep, active_names) -> {name: value}``.
#: Called once per replication round with the configurations still sampling;
#: must return one value per requested name.  The call is the round barrier:
#: the driver does not decide anything until it returns.
SampleRound = Callable[[int, Tuple[str, ...]], Mapping[str, float]]


@dataclass(frozen=True)
class ConfigOutcome:
    """Terminal state of one configuration in an adaptive campaign."""

    name: str
    reps: int          #: replications actually sampled
    reason: str        #: "resolved" | "retired" | "tied" | "won" | "capped"
    mean: float        #: mean of the sampled replications
    halfwidth: float   #: CI half-width of the *decision* statistic


@dataclass(frozen=True)
class CIOutcome:
    """Result of :func:`run_ci`: per-configuration resolved estimates."""

    configs: Tuple[ConfigOutcome, ...]
    rounds: int
    samples: Mapping[str, Tuple[float, ...]]


@dataclass(frozen=True)
class RaceOutcome:
    """Result of :func:`run_race`: a winner plus every racer's terminal state."""

    winner: str
    configs: Tuple[ConfigOutcome, ...]
    rounds: int
    samples: Mapping[str, Tuple[float, ...]]


@dataclass(frozen=True)
class BisectOutcome:
    """Result of :func:`run_bisection` over axis indices ``0..num_points-1``.

    ``path`` lists the evaluated ``(index, probe value)`` pairs in evaluation
    order; ``bracket`` is the adjacent index pair enclosing the sign change
    (``None`` when the probe never changes sign across the axis).
    """

    path: Tuple[Tuple[int, float], ...]
    bracket: Tuple[int, int] | None
    num_points: int

    @property
    def evaluated(self) -> Tuple[int, ...]:
        return tuple(index for index, _ in self.path)

    @property
    def skipped(self) -> int:
        return self.num_points - len(self.path)


def _validate_common(names: Sequence[str], min_reps: int, max_reps: int,
                     confidence: float) -> None:
    if not names:
        raise ValueError("an adaptive campaign needs at least one configuration")
    if len(set(names)) != len(names):
        raise ValueError("configuration names must be unique")
    if min_reps < 2:
        raise ValueError("min_replications must be at least 2 (a CI needs variance)")
    if max_reps < min_reps:
        raise ValueError("replications must be >= min_replications")
    t_critical(confidence, 1)  # validates the confidence level


def run_ci(
    names: Sequence[str],
    sample_round: SampleRound,
    *,
    confidence: float,
    min_reps: int,
    max_reps: int,
    rel_precision: float,
) -> CIOutcome:
    """Estimate every configuration's mean to the requested precision.

    Round ``r`` samples replication ``r`` of every unresolved configuration;
    a configuration resolves once it has ``min_reps`` samples and its CI
    half-width is at most ``rel_precision * |mean|``.  Pure function of the
    sampled values (see the module docstring).
    """
    _validate_common(names, min_reps, max_reps, confidence)
    if rel_precision <= 0:
        raise ValueError("rel_precision must be positive")
    stats: Dict[str, Welford] = {name: Welford() for name in names}
    samples: Dict[str, List[float]] = {name: [] for name in names}
    reasons: Dict[str, str] = {}
    active = list(names)
    rounds = 0
    for rep in range(max_reps):
        values = sample_round(rep, tuple(active))
        rounds = rep + 1
        for name in active:
            value = float(values[name])
            samples[name].append(value)
            stats[name].add(value)
        still = []
        for name in active:
            halfwidth = ci_halfwidth(stats[name], confidence)
            if rounds >= min_reps and halfwidth <= rel_precision * abs(stats[name].mean):
                reasons[name] = "resolved"
            else:
                still.append(name)
        active = still
        if not active:
            break
    for name in active:
        reasons[name] = "capped"
    configs = tuple(
        ConfigOutcome(
            name=name,
            reps=len(samples[name]),
            reason=reasons[name],
            mean=stats[name].mean,
            halfwidth=ci_halfwidth(stats[name], confidence),
        )
        for name in names
    )
    return CIOutcome(
        configs=configs,
        rounds=rounds,
        samples={name: tuple(values) for name, values in samples.items()},
    )


def _paired_stats(subject: Sequence[float], leader: Sequence[float]) -> Welford:
    """Welford stats of the per-replication differences ``subject - leader``.

    Both sequences index the same seed blocks (replication ``r`` of every
    racer runs the same traces), so the difference cancels the shared seed
    noise -- the common-random-numbers pairing that makes racing converge.
    """
    return Welford([a - b for a, b in zip(subject, leader)])


def run_race(
    names: Sequence[str],
    sample_round: SampleRound,
    *,
    confidence: float,
    min_reps: int,
    max_reps: int,
    tie_margin: float = 0.0,
) -> RaceOutcome:
    """Race configurations for the lowest mean; return the winner.

    Every round samples one replication (a shared seed block) of every racer
    still standing, then decides against the current leader -- the racer
    with the lowest running mean, ties broken by position in ``names``:

    * a racer whose paired-difference CI lies entirely above zero is
      **retired** (significantly worse than the leader at ``confidence``),
    * with ``tie_margin > 0``, a racer whose paired-difference CI lies
      entirely inside ``(-margin, +margin)`` -- margin being ``tie_margin *
      |leader mean|`` -- is **tied**: statistically indistinguishable from
      the leader at the margin, so the leader represents it from here on,
    * when one racer remains it has **won**; when the replication cap is
      reached the surviving racers are **capped** and the winner is the
      final leader.

    Pure function of the sampled values; exhaustive mode replays it over the
    full grid and reports identically (see the module docstring).
    """
    _validate_common(names, min_reps, max_reps, confidence)
    if len(names) < 2:
        raise ValueError("a race needs at least two configurations")
    if tie_margin < 0:
        raise ValueError("tie_margin must be non-negative")
    samples: Dict[str, List[float]] = {name: [] for name in names}
    reasons: Dict[str, str] = {}
    halfwidths: Dict[str, float] = {name: math.inf for name in names}
    active = list(names)
    rounds = 0
    for rep in range(max_reps):
        values = sample_round(rep, tuple(active))
        rounds = rep + 1
        for name in active:
            samples[name].append(float(values[name]))
        if rounds < min_reps:
            continue
        means = {name: sum(samples[name]) / rounds for name in active}
        # min() keeps the first minimum in iteration order, and `active`
        # preserves the caller's configuration order -- deterministic ties.
        leader = min(active, key=lambda name: means[name])
        margin = tie_margin * abs(means[leader])
        eliminated = []
        for name in active:
            if name == leader:
                continue
            diff = _paired_stats(samples[name], samples[leader])
            halfwidth = ci_halfwidth(diff, confidence)
            halfwidths[name] = halfwidth
            if diff.mean - halfwidth > 0:
                reasons[name] = "retired"
                eliminated.append(name)
            elif margin > 0 and math.isfinite(halfwidth) and (
                -margin < diff.mean - halfwidth and diff.mean + halfwidth < margin
            ):
                reasons[name] = "tied"
                eliminated.append(name)
        if eliminated:
            active = [name for name in active if name not in eliminated]
        if len(active) == 1:
            reasons[active[0]] = "won"
            halfwidths[active[0]] = 0.0
            break
    else:
        for name in active:
            reasons[name] = "capped"
    final_means = {name: sum(samples[name]) / len(samples[name]) for name in active}
    winner = min(active, key=lambda name: final_means[name])
    configs = tuple(
        ConfigOutcome(
            name=name,
            reps=len(samples[name]),
            reason=reasons[name],
            mean=sum(samples[name]) / len(samples[name]),
            halfwidth=halfwidths[name],
        )
        for name in names
    )
    return RaceOutcome(
        winner=winner,
        configs=configs,
        rounds=rounds,
        samples={name: tuple(values) for name, values in samples.items()},
    )


def run_bisection(num_points: int, probe: Callable[[int], float]) -> BisectOutcome:
    """Locate the sign change of ``probe`` over axis indices ``0..num_points-1``.

    ``probe(i)`` evaluates axis point ``i`` and returns a signed statistic
    (here: subject-minus-baseline cycles; positive = subject behind).  The
    endpoints are always evaluated; when their signs differ, the adjacent
    pair bracketing the change is found by bisection -- ``2 + O(log n)``
    evaluations instead of ``n``.  Assumes the underlying response is
    monotone in the axis (the caller's modelling responsibility; with
    multiple crossings, one bracket is still found deterministically).
    """
    if num_points < 1:
        raise ValueError("bisection needs at least one axis point")
    path: List[Tuple[int, float]] = []

    def evaluate(index: int) -> float:
        value = float(probe(index))
        path.append((index, value))
        return value

    lo, hi = 0, num_points - 1
    f_lo = evaluate(lo)
    if num_points == 1:
        return BisectOutcome(path=tuple(path), bracket=None, num_points=num_points)
    f_hi = evaluate(hi)
    positive = (f_lo > 0, f_hi > 0)
    if positive[0] == positive[1]:
        return BisectOutcome(path=tuple(path), bracket=None, num_points=num_points)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        f_mid = evaluate(mid)
        if (f_mid > 0) == positive[0]:
            lo = mid
        else:
            hi = mid
    return BisectOutcome(path=tuple(path), bracket=(lo, hi), num_points=num_points)
