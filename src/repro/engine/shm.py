"""Shared-memory trace segments: publish a compiled trace once, attach everywhere.

The batch scheduler (PR 4) made each worker task acquire its compiled trace
on its own -- load the ``.npz`` artifact (decompress) or regenerate from the
seed -- so a run over ``T`` traces and ``W`` warm workers can pay for the
same trace up to ``W`` times, and *every* run pays again because nothing
survives between :meth:`ParallelRunner.run` calls except the per-process
memo.  This module makes a compiled trace a process-shared resource instead:

:class:`SharedTraceSegment`
    One ``multiprocessing.shared_memory`` block holding a
    :class:`~repro.uops.compiled.CompiledTrace`'s stored columns (raw,
    uncompressed, 64-byte aligned) plus the pickled static program and a
    small JSON header describing the layout.  The parent *publishes* a
    segment once per trace; workers *attach* by name and rebuild the trace
    as zero-copy numpy views over the block -- no column bytes ever travel
    through the task queue or the filesystem.

:class:`SegmentRegistry`
    The parent-side owner of all segments of one
    :class:`~repro.engine.parallel.ParallelRunner`.  Segments are keyed by
    :meth:`~repro.engine.job.SimulationJob.trace_key` and refcounted: the
    registry itself holds one resident reference (so segments stay warm
    across ``run()`` calls -- the whole point), every in-flight worker task
    holds one more, and a segment is closed *and unlinked* exactly when its
    count reaches zero (``discard``/``close``).  A :mod:`weakref` finalizer
    backstops ``close()`` so a dropped runner cannot leak ``/dev/shm``
    blocks.

Worker-side attachments are cached per process (:func:`attach_segment`) in a
small LRU keyed by segment name, mirroring the trace memo: one batch task
per trace attaches once, later batches of the same trace reuse the mapping.
Attachments deliberately *unregister* from the ``multiprocessing`` resource
tracker -- on Python < 3.13 an attaching process otherwise claims unlink
responsibility for a block it does not own, and its exit would tear the
segment out from under the parent (and spam spurious leak warnings).

Lifetime invariant
------------------
Only the creating process ever unlinks a segment, and it does so exactly
once: on the last ``release``/``discard``/``close``.  Workers only ever
``close`` their own mapping.  On Linux an unlink while workers are still
attached is benign (the kernel keeps the memory alive until the last map
closes), so parent-side cleanup never races worker-side use.

Correctness invariant
---------------------
Attached traces are bit-identical to published ones: the stored columns are
copied byte-for-byte into the block and viewed back with the same dtypes and
shapes (the derived columns are recomputed by ``CompiledTrace.__init__``
exactly as on every other construction path), and the annotation scatter
(:meth:`CompiledTrace.annotate_from`) *replaces* the annotation arrays
rather than writing in place, so the block itself is effectively immutable
-- attached views are marked read-only unconditionally (sanitizer or not;
see :mod:`repro.sanitize`) so an in-place write from a worker raises at the
offending line instead of corrupting every sibling attached to the block.
Simulating against an attached trace is therefore bit-identical to
simulating against the original (pinned by the round-trip property tests).
"""

from __future__ import annotations

import json
import os
import pickle
import weakref
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

import numpy as np

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - e.g. stripped-down interpreters
    _shared_memory = None

from repro.uops.compiled import CompiledTrace

#: Bump when the in-block layout changes (header schema, alignment).
SEGMENT_LAYOUT_VERSION = 1

#: Column start alignment inside a segment; generous enough for every dtype
#: the stored columns use and cache-line friendly.
_ALIGN = 64

#: Size of the little-endian header-length prefix at offset 0.
_PREFIX = 8


def shared_memory_available() -> bool:
    """Whether this platform can back :class:`SharedTraceSegment` at all."""
    return _shared_memory is not None


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _unregister_from_tracker(shm) -> None:
    """Drop an *attached* block from this process's resource tracker.

    Attaching registers the block with ``multiprocessing.resource_tracker``
    on Python < 3.13, which would make this process unlink the segment on
    exit even though the publishing process still owns it.  Unregistering is
    the documented workaround; failures are ignored (newer interpreters may
    not register attachments in the first place).
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by version
        pass


class SharedTraceSegment:
    """A compiled trace (plus its program) published in one shared block.

    Instances come in two flavours: *owners* (built by :meth:`create`, the
    only side that may :meth:`unlink`) and *attachments* (built by
    :meth:`attach`, which only ever :meth:`close` their mapping).
    """

    __slots__ = ("name", "trace_key", "nbytes", "owner", "_shm", "__weakref__")

    def __init__(self, shm, trace_key: str, owner: bool) -> None:
        self._shm = shm
        self.name = shm.name
        self.trace_key = trace_key
        self.nbytes = shm.size
        self.owner = owner

    # ------------------------------------------------------------- publish --
    @classmethod
    def create(
        cls, trace_key: str, program, compiled: CompiledTrace, name: Optional[str] = None
    ) -> "SharedTraceSegment":
        """Publish ``(program, compiled)`` as a new shared block.

        The block holds an 8-byte header-length prefix, a JSON header
        (layout version, trace key, per-column dtype/shape/offset, program
        extent), the pickled program, then the raw column bytes, each
        aligned to 64 bytes.
        """
        if _shared_memory is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        program_bytes = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
        columns = compiled.stored_columns()
        arrays = {key: np.ascontiguousarray(array) for key, array in columns.items()}

        # Column offsets relative to the start of the data region.
        relative = 0
        layouts = {}
        for key, array in arrays.items():
            relative = _align(relative)
            layouts[key] = relative
            relative += array.nbytes
        # The absolute offsets depend on the header's own length, so reserve
        # a slot and grow it until the serialised header fits (stable after
        # at most two passes -- only offset digit counts can move it).
        slot = 512
        while True:
            program_offset = _align(_PREFIX + slot)
            data_base = _align(program_offset + len(program_bytes))
            header: Dict[str, object] = {
                "version": SEGMENT_LAYOUT_VERSION,
                "trace_key": trace_key,
                "program": [program_offset, len(program_bytes)],
                "columns": {
                    key: {
                        "dtype": arrays[key].dtype.str,
                        "shape": list(arrays[key].shape),
                        "offset": layouts[key] + data_base,
                    }
                    for key in arrays
                },
            }
            header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
            if len(header_bytes) <= slot:
                break
            slot = len(header_bytes) + _ALIGN
        total = data_base + relative

        shm = _shared_memory.SharedMemory(create=True, size=max(total, 1), name=name)
        try:
            buffer = shm.buf
            buffer[0:_PREFIX] = len(header_bytes).to_bytes(_PREFIX, "little")
            buffer[_PREFIX:_PREFIX + len(header_bytes)] = header_bytes
            buffer[program_offset:program_offset + len(program_bytes)] = program_bytes
            for key, array in arrays.items():
                offset = header["columns"][key]["offset"]
                target = np.ndarray(array.shape, dtype=array.dtype, buffer=buffer, offset=offset)
                target[...] = array
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return cls(shm, trace_key, owner=True)

    # -------------------------------------------------------------- attach --
    @classmethod
    def attach(cls, name: str) -> "SharedTraceSegment":
        """Map an existing segment by name (no unlink responsibility)."""
        if _shared_memory is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        shm = _shared_memory.SharedMemory(name=name)
        _unregister_from_tracker(shm)
        header = cls._read_header(shm)
        return cls(shm, str(header["trace_key"]), owner=False)

    @staticmethod
    def _read_header(shm) -> Dict[str, object]:
        length = int.from_bytes(bytes(shm.buf[0:_PREFIX]), "little")
        if not 0 < length <= shm.size - _PREFIX:
            raise ValueError(f"segment {shm.name!r} has a corrupt header length {length}")
        header = json.loads(bytes(shm.buf[_PREFIX:_PREFIX + length]).decode("utf-8"))
        if int(header.get("version", -1)) != SEGMENT_LAYOUT_VERSION:
            raise ValueError(
                f"segment {shm.name!r} has layout version {header.get('version')!r}, "
                f"expected {SEGMENT_LAYOUT_VERSION}"
            )
        return header

    def load(self) -> Tuple[object, CompiledTrace]:
        """Rebuild ``(program, compiled trace)`` from the block.

        The program is unpickled (each attaching process needs its own
        mutable copy -- annotation passes write to it); the trace columns are
        read-only zero-copy views over the shared buffer.
        """
        header = self._read_header(self._shm)
        program_offset, program_length = header["program"]
        program = pickle.loads(
            bytes(self._shm.buf[program_offset:program_offset + program_length])
        )
        columns: Dict[str, np.ndarray] = {}
        for key in CompiledTrace.STORED_FIELDS:
            spec = header["columns"][key]
            view = np.ndarray(
                tuple(spec["shape"]),
                dtype=np.dtype(spec["dtype"]),
                buffer=self._shm.buf,
                offset=int(spec["offset"]),
            )
            view.flags.writeable = False
            columns[key] = view
        return program, CompiledTrace(**columns)

    # ------------------------------------------------------------- cleanup --
    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - exported views still alive
                # Numpy views over the buffer are still referenced somewhere;
                # the mapping dies with the process instead.  Unlink (below)
                # is unaffected, so nothing persistent leaks.
                return
            self._shm = None

    def unlink(self) -> None:
        """Remove the segment from the system (owner side, after close)."""
        if not self.owner:
            raise RuntimeError(f"segment {self.name!r} is attached, not owned; not unlinking")
        try:
            _shared_memory.SharedMemory(name=self.name).unlink()  # lifelint: ok RES302 (owner guard above; re-open by name is how the owner unlinks after close)
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "owner" if self.owner else "attached"
        return f"SharedTraceSegment({self.name!r}, {self.nbytes} bytes, {role})"


#: Default cap on resident segments per registry.  Shared memory is tmpfs
#: (typically bounded at half of RAM), so a paper-scale sweep over dozens of
#: traces must not pin every one of them forever: beyond the cap, the
#: least-recently-used segment with no in-flight task references is unlinked
#: and simply republished if its trace comes around again.
DEFAULT_RESIDENT_CAP = 32


class SegmentRegistry:
    """Parent-side table of published segments, refcounted by trace key.

    ``publish`` installs a segment with one *resident* reference held by the
    registry (segments stay warm across runs until evicted past
    ``max_resident``, :meth:`discard`-ed or :meth:`close`-d);
    ``acquire``/``release`` bracket each in-flight worker task.  The count
    reaching zero closes *and unlinks* the segment -- exactly once, and only
    here.
    """

    _COUNTER = 0

    def __init__(self, max_resident: int = DEFAULT_RESIDENT_CAP) -> None:
        if max_resident < 1:
            raise ValueError("max_resident must be at least 1")
        self.max_resident = max_resident
        self._entries: "OrderedDict[str, Tuple[SharedTraceSegment, int]]" = OrderedDict()
        self.stats: Dict[str, int] = {"published": 0, "reused": 0, "unlinked": 0}
        # Backstop: a runner dropped without shutdown() must still unlink.
        self._finalizer = weakref.finalize(
            self, SegmentRegistry._cleanup, self._entries, self.stats
        )

    @staticmethod
    def _cleanup(entries: Dict[str, Tuple[SharedTraceSegment, int]], stats: Dict[str, int]) -> None:
        for segment, _ in entries.values():
            segment.close()
            segment.unlink()
            stats["unlinked"] += 1
        entries.clear()

    @classmethod
    def _next_name(cls) -> str:
        # Short (macOS caps names around 30 chars), unique per process.
        cls._COUNTER += 1
        return f"repro-{os.getpid()}-{cls._COUNTER}"

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Total bytes currently published."""
        return sum(segment.nbytes for segment, _ in self._entries.values())

    def get(self, trace_key: str) -> Optional[SharedTraceSegment]:
        entry = self._entries.get(trace_key)
        return entry[0] if entry is not None else None

    def publish(
        self, trace_key: str, loader: Callable[[], Tuple[object, CompiledTrace]]
    ) -> SharedTraceSegment:
        """The segment for ``trace_key``, creating it from ``loader()`` if new."""
        entry = self._entries.get(trace_key)
        if entry is not None:
            self._entries.move_to_end(trace_key)
            self.stats["reused"] += 1
            return entry[0]
        program, compiled = loader()
        segment = SharedTraceSegment.create(trace_key, program, compiled, name=self._next_name())
        self._entries[trace_key] = (segment, 1)  # the registry's resident ref
        self.stats["published"] += 1
        self._evict()
        return segment

    def _evict(self) -> None:
        """Unlink LRU resident-only segments beyond ``max_resident``.

        Segments with in-flight task references are never evicted, and
        neither is the most recently published entry (its caller has not had
        the chance to ``acquire`` it yet); if nothing else is evictable the
        registry temporarily exceeds the cap rather than pulling work out
        from under a task.
        """
        while len(self._entries) > self.max_resident:
            newest = next(reversed(self._entries))
            victim = next(
                (
                    key
                    for key, (_, refs) in self._entries.items()
                    if refs <= 1 and key != newest
                ),
                None,
            )
            if victim is None:
                break
            segment, _ = self._entries.pop(victim)
            segment.close()
            segment.unlink()
            self.stats["unlinked"] += 1

    def acquire(self, trace_key: str) -> SharedTraceSegment:
        """Take a task reference on an existing segment."""
        segment, refs = self._entries[trace_key]
        self._entries[trace_key] = (segment, refs + 1)
        self._entries.move_to_end(trace_key)
        return segment

    def release(self, trace_key: str) -> None:
        """Drop a task reference; unlink when the count reaches zero."""
        entry = self._entries.get(trace_key)
        if entry is None:
            return
        segment, refs = entry
        refs -= 1
        if refs <= 0:
            del self._entries[trace_key]
            segment.close()
            segment.unlink()
            self.stats["unlinked"] += 1
        else:
            self._entries[trace_key] = (segment, refs)

    def discard(self, trace_key: str) -> None:
        """Drop the resident reference (same zero-count unlink rule)."""
        self.release(trace_key)

    def close(self) -> None:
        """Unlink every remaining segment, whatever its count (idempotent)."""
        self._cleanup(self._entries, self.stats)


# --------------------------------------------------------------------------
# Worker-side attachment cache
# --------------------------------------------------------------------------

#: Per-process ``segment name -> (segment, program, compiled)`` LRU.  One
#: batch task per trace attaches; later batches of the same trace (warm
#: workers across runs) reuse the mapping and the rebuilt objects.
_ATTACHMENTS: "OrderedDict[str, Tuple[SharedTraceSegment, object, CompiledTrace]]" = OrderedDict()

#: Default attachment-cache capacity; like the trace memo it only needs to
#: cover the traces a worker cycles through, not a whole suite.
DEFAULT_ATTACH_CAP = 8


def attach_segment(name: str, cap: int = DEFAULT_ATTACH_CAP) -> Tuple[object, CompiledTrace]:
    """The ``(program, compiled trace)`` of segment ``name``, cached per process."""
    entry = _ATTACHMENTS.get(name)
    if entry is not None:
        _ATTACHMENTS.move_to_end(name)
        return entry[1], entry[2]
    segment = SharedTraceSegment.attach(name)
    program, compiled = segment.load()
    _ATTACHMENTS[name] = (segment, program, compiled)
    while len(_ATTACHMENTS) > max(1, cap):
        _, (old_segment, _, _) = _ATTACHMENTS.popitem(last=False)
        old_segment.close()
    return program, compiled


def drop_attachments() -> None:
    """Close every cached attachment (test isolation; idempotent)."""
    while _ATTACHMENTS:
        _, (segment, _, _) = _ATTACHMENTS.popitem(last=False)
        segment.close()
