"""Clustered out-of-order microarchitecture simulator.

A trace-driven, cycle-stepped model of the paper's baseline machine
(Figure 1 / Table 2): a monolithic front end (fetch, decode/rename/steer,
ROB) feeding a clustered back end where every cluster has its own integer,
floating-point and copy issue queues, register files and functional units,
connected by point-to-point links.  The load/store queue and the data cache
are unified and shared by all clusters.

Sub-modules:

* :mod:`repro.cluster.config` -- architectural parameters (Table 2).
* :mod:`repro.cluster.cache` -- L1 / L2 / memory hierarchy.
* :mod:`repro.cluster.interconnect` -- point-to-point copy links.
* :mod:`repro.cluster.rename` -- value tracking and the register-location
  table used by dependence-based steering and copy generation.
* :mod:`repro.cluster.issue_queue` -- per-cluster issue queues with ready
  lists.
* :mod:`repro.cluster.rob` -- reorder buffer.
* :mod:`repro.cluster.lsq` -- unified load/store queue occupancy.
* :mod:`repro.cluster.regfile` -- per-cluster physical register file capacity.
* :mod:`repro.cluster.metrics` -- per-simulation statistics.
* :mod:`repro.cluster.processor` -- the pipeline putting it all together.
"""

from repro.cluster.cache import CacheStats, MemoryHierarchy, SetAssociativeCache
from repro.cluster.config import ClusterConfig, two_cluster_config, four_cluster_config
from repro.cluster.interconnect import Interconnect
from repro.cluster.metrics import SimulationMetrics
from repro.cluster.processor import ClusteredProcessor, simulate_trace

__all__ = [
    "ClusterConfig",
    "two_cluster_config",
    "four_cluster_config",
    "SetAssociativeCache",
    "MemoryHierarchy",
    "CacheStats",
    "Interconnect",
    "SimulationMetrics",
    "ClusteredProcessor",
    "simulate_trace",
]
