"""Data-cache hierarchy: set-associative L1 and L2 plus main memory.

The paper's machine has a unified (shared by all clusters) L1 data cache and
a unified L2.  Loads pay 3 cycles on an L1 hit, 13 on an L2 hit and at least
500 on a memory access (Table 2).  The model here is a standard LRU
set-associative tag array -- timing only, no data -- which is all the
steering comparison needs: what matters is that some benchmarks (mcf, art,
swim...) suffer long-latency misses that create the dynamic load imbalance
the hybrid scheme exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass
class CacheStats:
    """Hit/miss counters of one cache level."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        """Number of misses."""
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        """Hit rate in [0, 1] (1.0 when the cache was never accessed)."""
        return self.hits / self.accesses if self.accesses else 1.0


class SetAssociativeCache:
    """LRU set-associative cache (tags only).

    Parameters
    ----------
    size_kb:
        Total capacity in kibibytes.
    assoc:
        Associativity (ways per set).
    line_size:
        Cache line size in bytes.
    hit_latency:
        Access latency on a hit, in cycles.
    """

    def __init__(self, size_kb: int, assoc: int, line_size: int, hit_latency: int) -> None:
        if size_kb < 1 or assoc < 1 or line_size < 1:
            raise ValueError("cache geometry parameters must be positive")
        total_lines = (size_kb * 1024) // line_size
        if total_lines < assoc:
            raise ValueError("cache too small for the requested associativity")
        self.num_sets = max(1, total_lines // assoc)
        self.assoc = int(assoc)
        self.line_size = int(line_size)
        self.hit_latency = int(hit_latency)
        # Per set: list of tags in LRU order (index 0 = most recently used).
        # Sets materialise lazily on first touch -- an absent key is an empty
        # set -- so constructing a hierarchy (every simulation run builds a
        # fresh one) does not pay for the tens of thousands of sets of an L2
        # the trace may never reach.
        self._sets: Dict[int, List[int]] = {}
        self.stats = CacheStats()

    def _locate(self, address: int):
        line = address // self.line_size
        return line % self.num_sets, line // self.num_sets

    def access(self, address: int, allocate: bool = True) -> bool:
        """Access ``address``; return ``True`` on a hit.

        On a miss the line is allocated (LRU replacement) unless
        ``allocate`` is ``False``.
        """
        set_index, tag = self._locate(address)
        self.stats.accesses += 1
        ways = self._sets.get(set_index)
        if ways is None:
            if allocate:
                self._sets[set_index] = [tag]
            return False
        if tag in ways:
            if ways[0] != tag:
                ways.remove(tag)
                ways.insert(0, tag)
            self.stats.hits += 1
            return True
        if allocate:
            ways.insert(0, tag)
            if len(ways) > self.assoc:
                ways.pop()
        return False

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (contents are kept)."""
        self.stats = CacheStats()


class MemoryHierarchy:
    """L1 + L2 + memory; returns load latencies and records statistics.

    Parameters
    ----------
    l1 / l2:
        The two cache levels.
    memory_latency:
        Latency of an access that misses in both caches.
    """

    def __init__(self, l1: SetAssociativeCache, l2: SetAssociativeCache, memory_latency: int) -> None:
        self.l1 = l1
        self.l2 = l2
        self.memory_latency = int(memory_latency)

    @classmethod
    def from_config(cls, config) -> "MemoryHierarchy":
        """Build the hierarchy described by a :class:`~repro.cluster.config.ClusterConfig`."""
        l1 = SetAssociativeCache(
            config.l1_size_kb, config.l1_assoc, config.line_size, config.l1_hit_latency
        )
        l2 = SetAssociativeCache(
            config.l2_size_kb, config.l2_assoc, config.line_size, config.l2_hit_latency
        )
        return cls(l1, l2, config.memory_latency)

    def load_latency(self, address: int) -> int:
        """Latency (cycles) of a load to ``address``, updating both levels."""
        if self.l1.access(address):
            return self.l1.hit_latency
        if self.l2.access(address):
            return self.l2.hit_latency
        return self.memory_latency

    def store_access(self, address: int) -> None:
        """Record a store (write-allocate in both levels, latency hidden by the LSQ)."""
        self.l1.access(address)
        self.l2.access(address)

    def summary(self) -> Dict[str, float]:
        """Flat statistics dictionary for reports."""
        return {
            "l1_accesses": float(self.l1.stats.accesses),
            "l1_hit_rate": self.l1.stats.hit_rate,
            "l2_accesses": float(self.l2.stats.accesses),
            "l2_hit_rate": self.l2.stats.hit_rate,
        }
