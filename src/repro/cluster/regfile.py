"""Per-cluster physical register files.

Each cluster owns a 256-entry integer and a 256-entry floating-point register
file (Table 2).  A µop with a destination register claims a physical register
in its cluster at dispatch and returns it at commit; dispatch stalls when the
target cluster has no free physical register of the required kind.  This is
one of the resources that make the ``one-cluster`` configuration slow: with
every µop in the same cluster, a single register file has to hold the entire
in-flight window.
"""

from __future__ import annotations

from typing import List

from repro.cluster.config import ClusterConfig
from repro.uops.registers import RegisterKind, RegisterSpace


class RegisterFiles:
    """Free-register accounting for every cluster.

    Parameters
    ----------
    config:
        Machine configuration (register file sizes and cluster count).
    register_space:
        Architectural register namespace (to classify destinations as INT/FP).
    """

    def __init__(self, config: ClusterConfig, register_space: RegisterSpace) -> None:
        self.config = config
        self.register_space = register_space
        self._free_int: List[int] = [config.regfile_int_size] * config.num_clusters
        self._free_fp: List[int] = [config.regfile_fp_size] * config.num_clusters

    def _pool(self, kind: RegisterKind) -> List[int]:
        return self._free_int if kind == RegisterKind.INT else self._free_fp

    # -- flat-state views (the vectorized kernel's borrow surface) -----------------
    def free_int_list(self) -> List[int]:
        """The *live* per-cluster free-INT-register list (mutated in place)."""
        return self._free_int

    def free_fp_list(self) -> List[int]:
        """The *live* per-cluster free-FP-register list (mutated in place)."""
        return self._free_fp

    def free_registers(self, cluster: int, kind: RegisterKind) -> int:
        """Free physical registers of ``kind`` in ``cluster``."""
        return self._pool(kind)[cluster]

    def can_allocate(self, cluster: int, dests) -> bool:
        """True when every destination in ``dests`` can get a physical register."""
        need_int = need_fp = 0
        for reg in dests:
            if self.register_space.kind_of(reg) == RegisterKind.INT:
                need_int += 1
            else:
                need_fp += 1
        return self._free_int[cluster] >= need_int and self._free_fp[cluster] >= need_fp

    # -- count-based fast paths ------------------------------------------------
    # The compiled-trace kernel classifies every destination register once at
    # trace compilation (see CompiledTrace.dest_kind_counts) and then moves
    # plain (int, fp) counts through dispatch and commit, skipping the
    # per-register kind_of() classification in the hot loop.
    def can_allocate_counts(self, cluster: int, need_int: int, need_fp: int) -> bool:
        """True when ``need_int`` INT and ``need_fp`` FP registers are free."""
        return self._free_int[cluster] >= need_int and self._free_fp[cluster] >= need_fp

    def allocate_counts(self, cluster: int, need_int: int, need_fp: int) -> None:
        """Claim registers by kind count (caller checked :meth:`can_allocate_counts`)."""
        if self._free_int[cluster] < need_int or self._free_fp[cluster] < need_fp:
            raise RuntimeError("physical register file underflow")
        self._free_int[cluster] -= need_int
        self._free_fp[cluster] -= need_fp

    def release_counts(self, cluster: int, need_int: int, need_fp: int) -> None:
        """Return registers by kind count (at commit)."""
        free_int = self._free_int[cluster] + need_int
        free_fp = self._free_fp[cluster] + need_fp
        if free_int > self.config.regfile_int_size or free_fp > self.config.regfile_fp_size:
            raise RuntimeError("physical register file overflow on release")
        self._free_int[cluster] = free_int
        self._free_fp[cluster] = free_fp

    def allocate(self, cluster: int, dests) -> None:
        """Claim physical registers for ``dests`` (caller checked :meth:`can_allocate`)."""
        for reg in dests:
            pool = self._pool(self.register_space.kind_of(reg))
            if pool[cluster] <= 0:
                raise RuntimeError("physical register file underflow")
            pool[cluster] -= 1

    def release(self, cluster: int, dests) -> None:
        """Return the physical registers of ``dests`` (at commit)."""
        for reg in dests:
            kind = self.register_space.kind_of(reg)
            pool = self._pool(kind)
            limit = (
                self.config.regfile_int_size
                if kind == RegisterKind.INT
                else self.config.regfile_fp_size
            )
            if pool[cluster] >= limit:
                raise RuntimeError("physical register file overflow on release")
            pool[cluster] += 1
