"""Reorder buffer (ROB).

The front end allocates one ROB entry per µop at dispatch (copies excluded --
they are a back-end artefact of the clustered design and retire with the µop
that required them), and the commit stage retires completed µops in order at
the commit width of Table 2.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional


class ReorderBuffer:
    """In-order retirement window.

    Parameters
    ----------
    size:
        Maximum number of in-flight (dispatched, not yet committed) µops.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("ROB size must be positive")
        self.size = int(size)
        self._entries: Deque[object] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def free_entries(self) -> int:
        """Number of µops that can still be dispatched before the ROB fills up."""
        return self.size - len(self._entries)

    @property
    def is_full(self) -> bool:
        """True when no further µop can be dispatched."""
        return len(self._entries) >= self.size

    @property
    def is_empty(self) -> bool:
        """True when nothing is in flight."""
        return not self._entries

    def allocate(self, record: object) -> bool:
        """Append ``record``; return ``False`` when the ROB is full."""
        if self.is_full:
            return False
        self._entries.append(record)
        return True

    def head(self) -> Optional[object]:
        """Oldest in-flight µop (next to commit), or ``None``."""
        return self._entries[0] if self._entries else None

    def commit_head(self) -> object:
        """Remove and return the oldest µop (caller checks it completed)."""
        return self._entries.popleft()

    def commit_ready(self, width: int, is_completed) -> List[object]:
        """Retire up to ``width`` completed µops from the head, in order.

        ``is_completed`` is a predicate applied to each head entry; retirement
        stops at the first incomplete µop, preserving in-order semantics.
        """
        retired: List[object] = []
        while self._entries and len(retired) < width and is_completed(self._entries[0]):
            retired.append(self._entries.popleft())
        return retired

    def commit_completed(self, width: int) -> List[object]:
        """Retire up to ``width`` entries whose ``completed`` attribute is set.

        Specialisation of :meth:`commit_ready` for records that expose a
        ``completed`` attribute: the per-head predicate call is measurable in
        the commit stage's profile, so the common case reads the attribute
        directly.  Retirement order and stop condition are identical.
        """
        entries = self._entries
        retired: List[object] = []
        while entries and len(retired) < width and entries[0].completed:
            retired.append(entries.popleft())
        return retired

    def __iter__(self) -> Iterable[object]:
        return iter(self._entries)
