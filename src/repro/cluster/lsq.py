"""Unified load/store queue (LSQ).

Loads and stores reserve an LSQ slot at dispatch and keep it until they
commit (Section 2: "At dispatch time, loads and stores reserve a slot in LSQ
... Memory operations are stored in the LSQ, and remain there until they
access the data cache").  The LSQ is shared by all clusters, so it never
contributes to workload imbalance -- but it can stall dispatch when memory
operations back up behind long-latency misses, which is one of the dynamic
effects the compile-time workload estimates cannot see.

Memory disambiguation is not modelled (loads never wait for older stores);
the steering comparison is insensitive to it and the paper does not describe
a disambiguation policy.
"""

from __future__ import annotations


class LoadStoreQueue:
    """Occupancy tracking of the unified LSQ.

    Parameters
    ----------
    size:
        Number of entries (256 in Table 2).
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("LSQ size must be positive")
        self.size = int(size)
        self._occupancy = 0
        #: Total memory µops that ever allocated an entry (statistics).
        self.total_allocated = 0

    @property
    def occupancy(self) -> int:
        """Currently allocated entries."""
        return self._occupancy

    @property
    def free_entries(self) -> int:
        """Entries still available for dispatch."""
        return self.size - self._occupancy

    @property
    def is_full(self) -> bool:
        """True when a memory µop cannot be dispatched."""
        return self._occupancy >= self.size

    def allocate(self) -> bool:
        """Reserve a slot for a load/store; ``False`` when the queue is full."""
        if self.is_full:
            return False
        self._occupancy += 1
        self.total_allocated += 1
        return True

    def release(self) -> None:
        """Free a slot (when the memory µop commits)."""
        if self._occupancy <= 0:
            raise RuntimeError("releasing an empty LSQ")
        self._occupancy -= 1
