"""The vectorized two-tier simulation kernel.

:class:`VectorizedKernel` executes a bound :class:`~repro.uops.compiled.
CompiledTrace` on flat, preallocated structure-of-arrays state instead of the
interpreter's per-µop ``_InFlight``/:class:`~repro.cluster.rename.Value`
object graph.  The design is two-tier (see DESIGN.md):

* **Python tier** -- the dispatch stage and the steering-policy callback.
  Policies may be stateful and are guaranteed to observe every cycle in
  which the dispatch stage acts, in dispatch order, with the exact
  machine-state view (:class:`~repro.steering.base.SteeringContext`) the
  interpreter provides.  The kernel object *is* the context: occupancy,
  queue-free and register-location queries read the same flat arrays the
  kernel mutates.
* **Array tier** -- everything else.  Issue/writeback/commit state lives in
  preallocated parallel arrays indexed by *record slot* (µops and copy µops
  share one slot space; slot order equals creation order, so the ready heaps
  hold bare ints).  The per-trace dependence structure is precomputed once
  (:meth:`~repro.uops.compiled.CompiledTrace.dependency_plan`, optionally
  numba-jitted) and idle stretches are skipped in bulk exactly as the
  interpreter does.

A third tier -- the **compiled steering tier** -- removes the per-µop Python
frames entirely for policies that declare their decision function: a policy
exposing :meth:`~repro.steering.base.SteeringPolicy.compiled_spec` has its
decision (one of the closed :data:`~repro.steering.base.SPEC_FORMS`) inlined
into the dispatch loop of the array tier (the *fused fast path*), and the
``vectorized-jit`` kernel additionally runs the whole inner loop through
:mod:`repro.cluster.jitloop` -- numba-jitted when numba is installed, the
same code executed as plain Python otherwise.  Un-lowered policies fall
through to the per-µop callback path unchanged, per dispatch, mid-batch.

The kernel is bit-identical to the interpreter: the golden-metrics suite and
the kernel-parity suite run both on the same traces and compare metrics
field-for-field.  The interpreter remains the golden reference
(``kernel="interpreter"``); the vectorized kernel is the default.
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.steering.base import (
    SPEC_FORMS,
    CompiledSteeringSpec,
    SteeringContext,
    SteeringPolicy,
)
from repro.uops.compiled import NO_ANNOTATION, CompiledTrace

try:  # pragma: no cover - exercised only where numba is installed (CI matrix)
    import numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default environment
    HAVE_NUMBA = False

#: Environment variable overriding the default kernel choice.
KERNEL_ENV = "REPRO_KERNEL"

#: Recognised kernel implementations.
KERNELS = ("interpreter", "vectorized", "vectorized-jit")

#: Kernel used when neither the constructor nor the environment picks one.
DEFAULT_KERNEL = "vectorized"

#: Integer codes of the lowered decision forms (0 = no spec, callback path).
#: The codes follow :data:`~repro.steering.base.SPEC_FORMS` order.
_FORM_CALLBACK = 0
_FORM_CODES = {name: code for code, name in enumerate(SPEC_FORMS, start=1)}
_FORM_CONSTANT = _FORM_CODES["constant"]
_FORM_TABLE = _FORM_CODES["static-table"]
_FORM_MODULO = _FORM_CODES["modulo"]
_FORM_LEAST = _FORM_CODES["least-loaded"]
_FORM_DEP = _FORM_CODES["dependence-count"]
_FORM_OCC = _FORM_CODES["occupancy-stall"]
_FORM_MAP = _FORM_CODES["mapping-table"]


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """Resolve a kernel choice to one of :data:`KERNELS`.

    An explicit ``kernel`` argument wins (so parity tests can pin both sides
    regardless of the environment); ``None``/``"auto"`` defers to
    ``$REPRO_KERNEL`` when set and non-blank, and falls back to
    :data:`DEFAULT_KERNEL` otherwise.  Unknown values -- explicit or from the
    environment -- are rejected with an error naming every valid kernel (and
    the environment variable when that is where the value came from), never
    silently remapped.
    """
    choice = kernel
    from_env = False
    if choice is None or choice == "auto":
        env = os.environ.get(KERNEL_ENV)
        if env is not None and env.strip():
            choice = env.strip().lower()
            from_env = True
        else:
            choice = DEFAULT_KERNEL
    if choice not in KERNELS:
        source = f" (from ${KERNEL_ENV})" if from_env else ""
        valid = ", ".join(repr(name) for name in KERNELS)
        raise ValueError(
            f"unknown simulation kernel {choice!r}{source}; "
            f"valid kernels: {valid} (or 'auto')"
        )
    return choice


def _resolve_spec(steering, num_clusters: int) -> Tuple[Optional[CompiledSteeringSpec], int]:
    """The policy's validated lowering for this run: ``(spec, form code)``.

    Returns ``(None, _FORM_CALLBACK)`` for policies without a lowering.
    Malformed specs (custom policies declaring impossible parameters) are
    rejected here with a clear error instead of steering µops out of range.

    A lowering is only honoured when it was declared at (or below) the class
    that defined ``pick_cluster``: a subclass overriding ``pick_cluster``
    while inheriting ``compiled_spec`` would otherwise fuse the *parent's*
    decision function and silently ignore the override.
    """
    mro = type(steering).__mro__
    pick_owner = next(c for c in mro if "pick_cluster" in c.__dict__)
    spec_owner = next(
        (c for c in mro if "compiled_spec" in c.__dict__), SteeringPolicy
    )
    if not issubclass(spec_owner, pick_owner):
        return None, _FORM_CALLBACK
    spec = steering.compiled_spec()
    if spec is None:
        return None, _FORM_CALLBACK
    form = _FORM_CODES[spec.form]  # CompiledSteeringSpec validated the name
    if form == _FORM_CONSTANT and not 0 <= spec.target_cluster < num_clusters:
        raise ValueError(
            f"compiled spec of policy {steering.name}: target cluster "
            f"{spec.target_cluster} does not exist in a {num_clusters}-cluster machine"
        )
    if form == _FORM_MAP:
        if len(spec.mapping) != spec.num_virtual_clusters:
            raise ValueError(
                f"compiled spec of policy {steering.name}: mapping has "
                f"{len(spec.mapping)} entries, expected {spec.num_virtual_clusters}"
            )
        for target in spec.mapping:
            if not 0 <= target < num_clusters:
                raise ValueError(
                    f"compiled spec of policy {steering.name}: mapping entry "
                    f"{target} is not a valid cluster"
                )
    return spec, form


def _sync_spec_state(steering, form: int, mod_next: int, vc_map, vc_remaps: int) -> None:
    """Hand a fused run's final policy state back to the policy object."""
    if form == _FORM_MODULO:
        steering.sync_compiled_state({"next": mod_next})
    elif form == _FORM_MAP:
        steering.sync_compiled_state(
            {"mapping": tuple(vc_map), "remap_count": vc_remaps}
        )
    elif form != _FORM_CALLBACK:
        steering.sync_compiled_state({})


class VectorizedKernel(SteeringContext):
    """Flat-state cycle kernel bound to one :class:`ClusteredProcessor`.

    The processor owns configuration, policy, memory hierarchy, interconnect
    and metrics; the kernel owns the execution state.  Mutable per-cluster
    accounting (issue-queue occupancy, free physical registers, in-flight
    counters) is *borrowed* from the processor's models via their live-list
    accessors, so those models remain the single source of truth and the
    steering-visible context stays consistent with the interpreter's.
    """

    __slots__ = (
        # ``num_clusters`` implements the SteeringContext property as a slot:
        # the descriptor shadows the abstract property, and policies (which
        # read it on every pick) get a plain attribute load instead of a
        # Python-level property call.
        "num_clusters",
        "_processor",
        "_all_mask",
        "_num_regs",
        "_qcap",
        "_issue_widths",
        # per-trace hoists (bind time)
        "_n",
        "_compiled",
        "_u_meta",
        "_def_uop",
        "_def_reg",
        "_dest_start",
        "_num_defs",
        "_u_latency",
        "_u_is_memory",
        "_u_address",
        "_u_dest_counts",
        # run-time state exposed through the SteeringContext interface
        "_occ",
        "_inflight",
        "_cur_def",
        "_def_mask",
        "_def_home",
    )

    def __init__(self, processor) -> None:
        self._processor = processor
        config = processor.config
        self.num_clusters = config.num_clusters
        self._all_mask = (1 << config.num_clusters) - 1
        self._num_regs = processor.register_space.total
        self._qcap = processor.issue_queues.capacity_list()
        self._issue_widths = processor.issue_queues.issue_width_list()
        self._n = 0
        self._compiled: Optional[CompiledTrace] = None
        self._occ: List[int] = []
        self._inflight: List[int] = []
        self._cur_def: List[int] = []
        self._def_mask: List[int] = []
        self._def_home: List[int] = []

    # ------------------------------------------------ SteeringContext interface --
    def cluster_occupancy(self, cluster: int) -> int:
        """In-flight µops (including pending copies) assigned to ``cluster``."""
        return self._inflight[cluster]

    def queue_free(self, cluster: int, kind) -> int:
        """Free entries of the ``kind`` issue queue of ``cluster``."""
        return self._qcap[kind] - self._occ[cluster * 3 + kind]

    def register_location_mask(self, reg: int) -> int:
        """Location bitmask of architectural register ``reg`` (rename-table view)."""
        d = self._cur_def[reg]
        if d < 0:
            # Live-in: available in every cluster (warmed-up machine), same
            # as the interpreter's initial rename-table state.
            return self._all_mask
        return self._def_mask[d] | (1 << self._def_home[d])

    # ------------------------------------------------------------------- binding --
    def bind(self, compiled: CompiledTrace) -> None:
        """Hoist the per-µop columns and the dependence plan of ``compiled``.

        All hoists are shared caches on the trace (the interpreter uses the
        same ones), so binding the same trace to many processors -- the batch
        scheduler's layout -- pays the materialisation once.
        """
        plan = compiled.dependency_plan()
        self._n = len(compiled)
        self._compiled = compiled
        self._def_uop = plan.def_uop
        self._def_reg = plan.def_reg
        self._dest_start = plan.dest_offsets
        self._num_defs = plan.num_defs
        self._u_meta = compiled.dispatch_meta(self._processor.register_space)
        self._u_latency = compiled.latency_list()
        self._u_is_memory = compiled.is_memory_list()
        self._u_address = compiled.address_list()
        self._u_dest_counts = compiled.dest_kind_counts(self._processor.register_space)

    # ------------------------------------------------------------------- running --
    def run(self, limit: int) -> None:
        """Simulate the bound trace on the processor's freshly-reset state.

        Mirrors the interpreter stage-for-stage (commit, writeback, issue,
        dispatch, fetch, idle skip); every divergence would show up in the
        parity suites.  On return ``processor.cycle`` and the scalar metric
        counters are written back; list-valued metrics are updated in place.
        """
        proc = self._processor
        config = proc.config
        num_clusters = self.num_clusters
        metrics = proc.metrics
        view = proc._view
        steering = proc.steering

        # Compiled steering tier: resolve the policy's lowering for this run.
        # The spec is requested fresh per run -- after the processor reset the
        # policy -- so stateful forms snapshot their post-reset state and get
        # the final state handed back when the run ends.  ``fused_steering``
        # (a processor knob, like ``idle_skip``) pins the per-µop callback
        # path for parity tests and baselines.
        spec, form = (
            _resolve_spec(steering, num_clusters)
            if proc.fused_steering
            else (None, _FORM_CALLBACK)
        )
        if proc.kernel == "vectorized-jit" and form != _FORM_CALLBACK:
            # Lowered policy on the jit kernel: the whole inner loop runs in
            # :mod:`repro.cluster.jitloop` when numba is available (cache
            # warm-up happens inside its array-form memory model, so it is
            # not repeated here).  Without numba the fused loop below *is*
            # the pure-Python twin of the jitted kernel -- same algorithm,
            # list-based data structures (which pure Python executes faster
            # than the array transcription) -- so execution simply falls
            # through.  ``jitloop.FORCE_PURE`` overrides the choice so the
            # parity suite can pin the transcription's semantics un-jitted.
            from repro.cluster import jitloop

            if jitloop.jit_active():
                status, mod_next, vc_map, vc_remaps = jitloop.run_fused(
                    self, spec, form, limit
                )
                _sync_spec_state(steering, form, mod_next, vc_map, vc_remaps)
                if status:
                    raise RuntimeError(
                        f"simulation exceeded {limit} cycles "
                        f"({proc.metrics.committed_uops} µops committed); "
                        f"possible deadlock"
                    )
                return
        if config.warm_caches:
            # Warm-up is owned by the kernel (not ``run_bound``) so the jit
            # path above can replay the same access plan inside its own model
            # without paying the object-model pass first.
            proc._warm_caches(self._compiled)

        # Per-form precomputation of the fused fast path (cheap, per run).
        const_cluster = 0
        table: List[int] = []
        mod_next = 0
        idle_fraction = 0.0
        srcs_rows = None
        counts_buf: List[int] = []
        vc_col: List[int] = []
        leader_col: List[bool] = []
        vc_map: List[int] = []
        num_vc = 1
        fallback_balance = True
        vc_remaps = 0
        all_mask = self._all_mask
        if form == _FORM_CONSTANT:
            const_cluster = spec.target_cluster
        elif form == _FORM_TABLE:
            # Annotations are re-read every run (like the view), so the
            # choice table is rebuilt from the live column each time.
            col = self._compiled.static_cluster
            table = (
                np.where(col == NO_ANNOTATION, spec.default_cluster, col).astype(
                    np.int64
                )
                % num_clusters
            ).tolist()
        elif form == _FORM_DEP or form == _FORM_OCC:
            srcs_rows = self._compiled.src_tuples()
            counts_buf = [0] * num_clusters
            idle_fraction = spec.idle_fraction
        elif form == _FORM_MAP:
            vc_col = self._compiled.vc_id.tolist()
            leader_col = self._compiled.chain_leader_list()
            num_vc = spec.num_virtual_clusters
            fallback_balance = spec.fallback_balance
            vc_map = list(spec.mapping)

        # Borrowed live accounting (fresh from _reset_state): the issue-queue
        # occupancy, register-file free counts and per-cluster in-flight
        # counters stay owned by their models; the kernel mutates them in
        # place so context queries and post-run introspection agree.
        occ = proc.issue_queues.occupancy_list()
        inflight = proc._cluster_inflight
        free_int = proc.regfiles.free_int_list()
        free_fp = proc.regfiles.free_fp_list()
        self._occ = occ
        self._inflight = inflight

        # Per-trace hoists.
        n = self._n
        meta = self._u_meta
        def_uop = self._def_uop
        def_reg = self._def_reg
        dest_start = self._dest_start
        latency = self._u_latency
        is_memory = self._u_is_memory
        address = self._u_address
        dcounts = self._u_dest_counts

        # Register-definition state: one slot per in-trace definition
        # (replaces the interpreter's per-definition Value objects).
        def_mask = [0] * self._num_defs
        def_home = [0] * self._num_defs
        cur_def = [-1] * self._num_regs
        self._def_mask = def_mask
        self._def_home = def_home
        self._cur_def = cur_def
        copy_map: Dict[int, int] = {}  # def id * num_clusters + target -> copy slot

        # Record slots (µops and copies share one space; slot order equals
        # creation order, so heaps of bare slot ints pop oldest-first exactly
        # like the interpreter's (seq, record) heaps).
        cap = n + 16
        rec_uop = [-1] * cap  # trace index, -1 for copy µops
        rec_cluster = [0] * cap
        rec_qslot = [0] * cap  # cluster * 3 + queue kind
        rec_pending = [0] * cap
        rec_completed = [False] * cap
        rec_isload = [False] * cap
        rec_copydef = [0] * cap
        rec_copytarget = [0] * cap
        rec_waiters: List[Optional[List[int]]] = [None] * cap
        next_slot = 0
        uop_slot = [0] * n
        # Trace-index mirrors of the commit-relevant record state: commit
        # retires in trace order, so reading these avoids the slot
        # indirection on the (µop-count) hottest retirement path.
        uop_completed = [False] * n
        uop_cluster = [0] * n

        # Ready heaps per (cluster, kind); loads separate (L1 port sharing).
        ready: List[List[int]] = [[] for _ in range(num_clusters * 3)]
        ready_loads: List[List[int]] = [[] for _ in range(num_clusters * 3)]
        total_ready = 0
        events: Dict[int, List[int]] = {}
        event_heap: List[int] = []

        # In-order window counters: µops dispatch in trace order, so the ROB
        # and the dispatch buffer are index ranges over the trace.
        commit_idx = 0  # next µop (trace index) to commit
        dispatch_pos = 0  # next µop to dispatch; [commit_idx, dispatch_pos) = ROB
        fetch_pos = 0  # [dispatch_pos, fetch_pos) = dispatch buffer
        ready_at = [0] * n  # dispatch-ready cycle per fetched µop
        trace_exhausted = False
        lsq_count = 0
        uops_in_flight = 0
        redirect_slot = -1
        blocked_until = 0
        cycle = 0

        # Configuration scalars.
        commit_width = config.commit_width
        dispatch_width = config.dispatch_width
        fetch_width = config.fetch_width
        fetch_latency = config.fetch_to_dispatch_latency
        rob_size = config.rob_size
        lsq_size = config.lsq_size
        read_ports = config.l1_read_ports
        redirect_penalty = config.mispredict_redirect_penalty
        model_mispredict = config.model_branch_mispredictions
        buffer_cap = proc._dispatch_buffer_cap
        qcap = self._qcap
        cap_copy = qcap[2]
        issue_widths = self._issue_widths
        qslot_range = range(num_clusters * 3)
        width_by_qslot = [issue_widths[qslot % 3] for qslot in qslot_range]
        idle_skip = proc.idle_skip

        # Scalar metrics as locals (flushed in the finally block); the
        # list-valued ones are cheap enough to update in place.
        m_committed = 0
        m_dispatched = 0
        m_copies = 0
        m_steer = 0
        m_rob = 0
        m_lsq = 0
        m_mispredict_stalls = 0
        m_branches = 0
        m_mispredictions = 0
        alloc_stalls = metrics.allocation_stalls
        cluster_dispatch = metrics.cluster_dispatch
        cluster_copies = metrics.cluster_copies

        heappush = heapq.heappush
        heappop = heapq.heappop
        pick_cluster = steering.pick_cluster
        steering_name = steering.name
        schedule_transfer = proc.interconnect.schedule_transfer
        load_latency = proc.memory.load_latency
        store_access = proc.memory.store_access
        copy_map_get = copy_map.get
        events_get = events.get
        events_pop = events.pop

        try:
            while True:
                if (
                    trace_exhausted
                    and dispatch_pos == fetch_pos
                    and commit_idx == dispatch_pos
                    and uops_in_flight == 0
                ):
                    break

                # ------------------------------------------------------ commit --
                if commit_idx < dispatch_pos and uop_completed[commit_idx]:
                    committed = 0
                    while True:
                        cluster = uop_cluster[commit_idx]
                        inflight[cluster] -= 1
                        uops_in_flight -= 1
                        di, df = dcounts[commit_idx]
                        if di or df:
                            free_int[cluster] += di
                            free_fp[cluster] += df
                        if is_memory[commit_idx]:
                            lsq_count -= 1
                        commit_idx += 1
                        committed += 1
                        if (
                            committed >= commit_width
                            or commit_idx >= dispatch_pos
                            or not uop_completed[commit_idx]
                        ):
                            break
                    m_committed += committed

                # --------------------------------------------------- writeback --
                bucket = events_pop(cycle, None)
                if bucket is not None:
                    # Drop the drained key (and any already-drained stragglers)
                    # so the idle skip reads the next event in O(1).
                    while event_heap and event_heap[0] <= cycle:
                        heappop(event_heap)
                    for slot in bucket:
                        rec_completed[slot] = True
                        uop = rec_uop[slot]
                        if uop < 0:
                            # Copy arrived: value now available in the target
                            # cluster, producing cluster no longer loaded.
                            def_mask[rec_copydef[slot]] |= 1 << rec_copytarget[slot]
                            inflight[rec_cluster[slot]] -= 1
                            uops_in_flight -= 1
                        else:
                            uop_completed[uop] = True
                            bit = 1 << rec_cluster[slot]
                            for d in range(dest_start[uop], dest_start[uop + 1]):
                                def_mask[d] |= bit
                            if slot == redirect_slot:
                                # Mispredicted branch resolved: front end
                                # restarts after the redirect penalty.
                                redirect_slot = -1
                                blocked_until = cycle + redirect_penalty
                        waiters = rec_waiters[slot]
                        if waiters is not None:
                            for waiter in waiters:
                                pending = rec_pending[waiter] - 1
                                rec_pending[waiter] = pending
                                if pending == 0:
                                    qslot = rec_qslot[waiter]
                                    heappush(
                                        ready_loads[qslot]
                                        if rec_isload[waiter]
                                        else ready[qslot],
                                        waiter,
                                    )
                                    total_ready += 1
                            rec_waiters[slot] = None

                # ------------------------------------------------------- issue --
                if total_ready:
                    loads_issued = 0
                    for qslot in qslot_range:
                        main = ready[qslot]
                        loads = ready_loads[qslot]
                        if not main and not loads:
                            continue
                        width = width_by_qslot[qslot]
                        issued = 0
                        while issued < width:
                            # Merge the two heaps by age; once the shared
                            # L1 read ports are saturated, ready loads
                            # stay untouched on theirs.
                            if (
                                loads
                                and loads_issued < read_ports
                                and (not main or loads[0] < main[0])
                            ):
                                slot = heappop(loads)
                                was_load = True
                            elif main:
                                slot = heappop(main)
                                was_load = False
                            else:
                                break
                            total_ready -= 1
                            occ[qslot] -= 1
                            uop = rec_uop[slot]
                            if uop < 0:
                                # One execute cycle in the producing
                                # cluster, then the link.
                                when = schedule_transfer(
                                    rec_cluster[slot], rec_copytarget[slot], cycle + 1
                                )
                            elif was_load:
                                lat = latency[uop] + load_latency(address[uop])
                                loads_issued += 1
                                when = cycle + (lat if lat > 1 else 1)
                            else:
                                lat = latency[uop]
                                if is_memory[uop]:
                                    store_access(address[uop])
                                when = cycle + (lat if lat > 1 else 1)
                            bucket = events_get(when)
                            if bucket is None:
                                events[when] = [slot]
                                heappush(event_heap, when)
                            else:
                                bucket.append(slot)
                            issued += 1

                # ---------------------------------------------------- dispatch --
                if dispatch_pos < fetch_pos:
                    dispatched = 0
                    # The front-end redirect state only changes in writeback
                    # (resolution) and right here (a mispredicted branch
                    # dispatching), so it is a flag, not a per-µop re-check.
                    blocked = redirect_slot >= 0 or cycle < blocked_until
                    while dispatched < dispatch_width and dispatch_pos < fetch_pos:
                        index = dispatch_pos
                        if ready_at[index] > cycle:
                            break
                        if blocked:
                            m_mispredict_stalls += 1
                            break
                        # The meta unpack has no side effects, so hoisting it
                        # above the steering decision (the occupancy form
                        # needs the queue kind) cannot perturb any metric.
                        (
                            kind,
                            uop_is_memory,
                            uop_is_load,
                            uop_is_branch,
                            uop_mispredicted,
                            di,
                            df,
                            dep_row,
                            dest_lo,
                            dest_hi,
                        ) = meta[index]
                        # ---- steering decision (fused forms or callback) -------
                        # Every fused form replicates its policy's
                        # ``pick_cluster`` verbatim over the same observables
                        # (the kernel's own context arrays), at the same point
                        # in the loop -- the lowered parity suite pins
                        # bit-identity against the callback path.
                        if form == _FORM_CALLBACK:
                            view.index = index
                            cluster = pick_cluster(view, self)
                            if cluster is None:
                                m_steer += 1
                                break
                            if cluster < 0 or cluster >= num_clusters:
                                raise ValueError(
                                    f"steering policy {steering_name} returned "
                                    f"invalid cluster {cluster}"
                                )
                        elif form == _FORM_OCC:
                            for c in range(num_clusters):
                                counts_buf[c] = 0
                            for reg in srcs_rows[index]:
                                d = cur_def[reg]
                                mask = (
                                    all_mask
                                    if d < 0
                                    else def_mask[d] | (1 << def_home[d])
                                )
                                for c in range(num_clusters):
                                    if mask >> c & 1:
                                        counts_buf[c] += 1
                            best_count = -1
                            preferred = 0
                            preferred_occ = 0
                            for c in range(num_clusters):
                                count = counts_buf[c]
                                if count > best_count:
                                    best_count = count
                                    preferred = c
                                    preferred_occ = inflight[c]
                                elif count == best_count:
                                    occupancy = inflight[c]
                                    if occupancy < preferred_occ:
                                        preferred = c
                                        preferred_occ = occupancy
                            if qcap[kind] - occ[preferred * 3 + kind] > 0:
                                cluster = preferred
                            else:
                                threshold = preferred_occ * idle_fraction
                                diverted = -1
                                diverted_occ = 0
                                for c in range(num_clusters):
                                    if (
                                        c == preferred
                                        or qcap[kind] - occ[c * 3 + kind] <= 0
                                    ):
                                        continue
                                    occupancy = inflight[c]
                                    if occupancy <= threshold and (
                                        diverted < 0 or occupancy < diverted_occ
                                    ):
                                        diverted = c
                                        diverted_occ = occupancy
                                if diverted < 0:
                                    m_steer += 1
                                    break
                                cluster = diverted
                        elif form == _FORM_MAP:
                            vc = vc_col[index]
                            if vc < 0:
                                if fallback_balance:
                                    cluster = 0
                                    best_occ = inflight[0]
                                    for c in range(1, num_clusters):
                                        occupancy = inflight[c]
                                        if occupancy < best_occ:
                                            cluster = c
                                            best_occ = occupancy
                                else:
                                    cluster = 0
                            else:
                                vc = vc % num_vc
                                if leader_col[index]:
                                    cluster = 0
                                    best_occ = inflight[0]
                                    for c in range(1, num_clusters):
                                        occupancy = inflight[c]
                                        if occupancy < best_occ:
                                            cluster = c
                                            best_occ = occupancy
                                    if vc_map[vc] != cluster:
                                        vc_remaps += 1
                                    vc_map[vc] = cluster
                                else:
                                    cluster = vc_map[vc]
                        elif form == _FORM_CONSTANT:
                            cluster = const_cluster
                        elif form == _FORM_TABLE:
                            cluster = table[index]
                        elif form == _FORM_MODULO:
                            cluster = mod_next
                            mod_next = cluster + 1
                            if mod_next >= num_clusters:
                                mod_next = 0
                        elif form == _FORM_LEAST:
                            cluster = 0
                            best_occ = inflight[0]
                            for c in range(1, num_clusters):
                                occupancy = inflight[c]
                                if occupancy < best_occ:
                                    cluster = c
                                    best_occ = occupancy
                        else:  # _FORM_DEP
                            for c in range(num_clusters):
                                counts_buf[c] = 0
                            for reg in srcs_rows[index]:
                                d = cur_def[reg]
                                mask = (
                                    all_mask
                                    if d < 0
                                    else def_mask[d] | (1 << def_home[d])
                                )
                                for c in range(num_clusters):
                                    if mask >> c & 1:
                                        counts_buf[c] += 1
                            best_count = 0
                            for c in range(num_clusters):
                                if counts_buf[c] > best_count:
                                    best_count = counts_buf[c]
                            if best_count == 0:
                                cluster = 0
                            else:
                                cluster = counts_buf.index(best_count)
                        # ---- resource checks (the interpreter's _try_dispatch) --
                        if dispatch_pos - commit_idx >= rob_size:
                            m_rob += 1
                            break
                        if uop_is_memory and lsq_count >= lsq_size:
                            m_lsq += 1
                            break
                        qslot = cluster * 3 + kind
                        if qcap[kind] - occ[qslot] <= 0:
                            alloc_stalls[cluster] += 1
                            break
                        if (di or df) and (
                            free_int[cluster] < di or free_fp[cluster] < df
                        ):
                            alloc_stalls[cluster] += 1
                            break
                        # ---- operand planning over definition ids --------------
                        wait_on = None
                        new_copies = None
                        for d in dep_row:
                            if def_mask[d] >> cluster & 1:
                                continue
                            pslot = uop_slot[def_uop[d]]
                            if not rec_completed[pslot] and rec_cluster[pslot] == cluster:
                                if wait_on is None:
                                    wait_on = [pslot]
                                else:
                                    wait_on.append(pslot)
                                continue
                            cslot = copy_map_get(d * num_clusters + cluster)
                            if cslot is not None and not rec_completed[cslot]:
                                if wait_on is None:
                                    wait_on = [cslot]
                                else:
                                    wait_on.append(cslot)
                                continue
                            source = def_home[d]
                            if source == cluster:
                                # The value appears here without a copy; wait
                                # on the producer if it is still in flight.
                                if not rec_completed[pslot]:
                                    if wait_on is None:
                                        wait_on = [pslot]
                                    else:
                                        wait_on.append(pslot)
                                continue
                            if new_copies is None:
                                new_copies = [(d, source)]
                            else:
                                new_copies.append((d, source))
                        if new_copies is not None:
                            # Every needed copy queue must have room, counting
                            # multiple copies from the same source cluster.
                            if len(new_copies) == 1:
                                source = new_copies[0][1]
                                if cap_copy - occ[source * 3 + 2] < 1:
                                    alloc_stalls[source] += 1
                                    break
                            else:
                                demand: Dict[int, int] = {}
                                for d, source in new_copies:
                                    demand[source] = demand.get(source, 0) + 1
                                blocked_source = -1
                                for source, need in demand.items():
                                    if cap_copy - occ[source * 3 + 2] < need:
                                        blocked_source = source
                                        break
                                if blocked_source >= 0:
                                    alloc_stalls[blocked_source] += 1
                                    break
                        # ---- every resource available: perform the dispatch ----
                        # One dispatch consumes a slot for the µop plus one per
                        # copy µop (a µop can need several copies, possibly
                        # from the same source cluster).
                        need_slots = 1 if new_copies is None else 1 + len(new_copies)
                        if next_slot + need_slots > cap:
                            grow = max(cap, need_slots)
                            rec_uop += [-1] * grow
                            rec_cluster += [0] * grow
                            rec_qslot += [0] * grow
                            rec_pending += [0] * grow
                            rec_completed += [False] * grow
                            rec_isload += [False] * grow
                            rec_copydef += [0] * grow
                            rec_copytarget += [0] * grow
                            rec_waiters += [None] * grow
                            cap += grow
                        slot = next_slot
                        next_slot = slot + 1
                        rec_uop[slot] = index
                        rec_cluster[slot] = cluster
                        rec_qslot[slot] = qslot
                        rec_isload[slot] = uop_is_load
                        uop_slot[index] = slot
                        uop_cluster[index] = cluster
                        if new_copies is not None:
                            for d, source in new_copies:
                                cslot = next_slot
                                next_slot = cslot + 1
                                rec_cluster[cslot] = source
                                rec_qslot[cslot] = source * 3 + 2
                                rec_copydef[cslot] = d
                                rec_copytarget[cslot] = cluster
                                pslot = uop_slot[def_uop[d]]
                                if rec_completed[pslot]:
                                    rec_pending[cslot] = 0
                                    heappush(ready[source * 3 + 2], cslot)
                                    total_ready += 1
                                else:
                                    rec_pending[cslot] = 1
                                    waiters = rec_waiters[pslot]
                                    if waiters is None:
                                        rec_waiters[pslot] = [cslot]
                                    else:
                                        waiters.append(cslot)
                                occ[source * 3 + 2] += 1
                                inflight[source] += 1
                                uops_in_flight += 1
                                m_copies += 1
                                cluster_copies[source] += 1
                                copy_map[d * num_clusters + cluster] = cslot
                                if wait_on is None:
                                    wait_on = [cslot]
                                else:
                                    wait_on.append(cslot)
                        if wait_on is None:
                            heappush(
                                ready_loads[qslot] if uop_is_load else ready[qslot],
                                slot,
                            )
                            total_ready += 1
                        else:
                            rec_pending[slot] = len(wait_on)
                            for dep_slot in wait_on:
                                waiters = rec_waiters[dep_slot]
                                if waiters is None:
                                    rec_waiters[dep_slot] = [slot]
                                else:
                                    waiters.append(slot)
                        occ[qslot] += 1
                        if di or df:
                            free_int[cluster] -= di
                            free_fp[cluster] -= df
                        if uop_is_memory:
                            lsq_count += 1
                        inflight[cluster] += 1
                        uops_in_flight += 1
                        m_dispatched += 1
                        cluster_dispatch[cluster] += 1
                        for d in range(dest_lo, dest_hi):
                            cur_def[def_reg[d]] = d
                            def_home[d] = cluster
                        if uop_is_branch:
                            m_branches += 1
                            if uop_mispredicted and model_mispredict:
                                m_mispredictions += 1
                                redirect_slot = slot
                                blocked = True
                        dispatch_pos += 1
                        dispatched += 1

                # ------------------------------------------------------- fetch --
                if not trace_exhausted:
                    ready_cycle = cycle + fetch_latency
                    fetched = 0
                    while fetched < fetch_width and fetch_pos - dispatch_pos < buffer_cap:
                        if fetch_pos >= n:
                            trace_exhausted = True
                            break
                        ready_at[fetch_pos] = ready_cycle
                        fetch_pos += 1
                        fetched += 1

                cycle += 1
                if cycle > limit:
                    raise RuntimeError(
                        f"simulation exceeded {limit} cycles "
                        f"({m_committed} µops committed); possible deadlock"
                    )

                # --------------------------------------------------- idle skip --
                # Same veto conditions and candidate set as the interpreter's
                # _skip_idle_cycles (see its docstring for the argument);
                # cycles in which the dispatch stage would act are never
                # skipped, so stateful policies observe every acting cycle.
                if not idle_skip:
                    continue
                if total_ready:
                    continue
                if commit_idx < dispatch_pos and uop_completed[commit_idx]:
                    continue
                if not trace_exhausted and fetch_pos - dispatch_pos < buffer_cap:
                    continue
                buffer = dispatch_pos < fetch_pos
                if (
                    trace_exhausted
                    and not buffer
                    and commit_idx == dispatch_pos
                    and uops_in_flight == 0
                ):
                    continue  # finished; the loop head breaks
                redirect = redirect_slot >= 0
                blocked = redirect or cycle < blocked_until
                head_ready = ready_at[dispatch_pos] if buffer else 0
                if buffer and not blocked and head_ready <= cycle:
                    continue  # the dispatch stage acts this cycle
                goal = limit + 1
                if event_heap:
                    next_event = event_heap[0]
                    if next_event < goal:
                        goal = next_event
                if buffer and not blocked:
                    if head_ready < goal:
                        goal = head_ready
                elif blocked and not redirect:
                    if blocked_until < goal:
                        goal = blocked_until
                if goal <= cycle:
                    continue
                if buffer and blocked:
                    # Redirect-stalled cycles with a dispatch-ready head count
                    # one mispredict stall each; account the skipped ones.
                    stalled = goal - (cycle if cycle > head_ready else head_ready)
                    if stalled > 0:
                        m_mispredict_stalls += stalled
                cycle = goal
        finally:
            _sync_spec_state(steering, form, mod_next, vc_map, vc_remaps)
            proc.cycle = cycle
            metrics.committed_uops += m_committed
            metrics.dispatched_uops += m_dispatched
            metrics.copies_generated += m_copies
            metrics.steering_stalls += m_steer
            metrics.rob_stalls += m_rob
            metrics.lsq_stalls += m_lsq
            metrics.mispredict_stalls += m_mispredict_stalls
            metrics.branches += m_branches
            metrics.mispredictions += m_mispredictions
