"""The clustered out-of-order pipeline.

:class:`ClusteredProcessor` ties the front end, the clustered back end, the
memory hierarchy and a run-time steering policy together into a trace-driven,
cycle-stepped simulation.  One simulated cycle performs, in order:

1. **commit** -- retire completed µops in order from the ROB head,
2. **writeback** -- process completion/arrival events scheduled for this
   cycle, mark values ready and wake dependent µops,
3. **issue** -- per cluster and per issue queue, issue the oldest ready µops
   up to the queue's issue width (loads also compete for the shared L1 read
   ports),
4. **dispatch** -- steer, rename, generate copy µops and allocate resources
   for the µops whose fetch-to-dispatch delay has elapsed,
5. **fetch** -- pull µops from the trace into the dispatch buffer.

The model follows Section 2 of the paper: once a µop is steered to a cluster
it stays there; if an operand lives in another cluster an explicit copy µop
is inserted in the *producing* cluster's copy queue and must traverse the
point-to-point link before the consumer can issue.

Performance notes (see DESIGN.md): the simulator is cycle-stepped but all
per-µop work is event-driven -- ready lists and waiter lists mean the inner
loops only touch µops whose state changes, never the full contents of the
48-entry issue queues.  The kernel consumes a
:class:`~repro.uops.compiled.CompiledTrace` -- every per-µop fact (queue
kind, latency, memory flags, deduplicated sources, destination register
kinds) is precomputed into flat lists before the first cycle, so dispatch
indexes instead of chasing ``DynamicUop`` properties -- and the cycle loop
*skips idle cycles*: when no µop is ready, no event is due and the front end
is blocked or drained, the clock jumps straight to the next scheduled
event/dispatch-ready cycle.  Both restructurings are bit-identical to the
naive cycle-by-cycle object-chasing simulation (the golden-metrics suite
pins this).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.cache import MemoryHierarchy
from repro.cluster.config import ClusterConfig
from repro.cluster.interconnect import Interconnect
from repro.cluster.issue_queue import IssueQueues
from repro.cluster.kernel import VectorizedKernel, resolve_kernel
from repro.cluster.lsq import LoadStoreQueue
from repro.cluster.metrics import SimulationMetrics
from repro.cluster.regfile import RegisterFiles
from repro.cluster.rename import RegisterLocationTable, Value
from repro.cluster.rob import ReorderBuffer
from repro.sanitize import resolve_sanitize
from repro.steering.base import SteeringContext, SteeringPolicy
from repro.uops.compiled import CompiledTrace, CompiledUopView, compile_trace
from repro.uops.opcodes import IssueQueueKind
from repro.uops.registers import DEFAULT_REGISTER_SPACE, RegisterSpace
from repro.uops.uop import DynamicUop

#: Issue-queue kinds in the order the issue stage services them.
_ISSUE_KINDS = (IssueQueueKind.INT, IssueQueueKind.FP, IssueQueueKind.COPY)


class _InFlight:
    """Book-keeping record of one in-flight µop or copy µop."""

    __slots__ = (
        "order",
        "index",
        "cluster",
        "queue_kind",
        "latency",
        "pending",
        "issued",
        "completed",
        "is_copy",
        "copy_value",
        "copy_target",
        "dest_values",
        "waiters",
        "is_memory",
        "is_load",
        "address",
        "dests",
        "dest_int",
        "dest_fp",
    )

    def __init__(self, order: int, cluster: int, queue_kind: IssueQueueKind) -> None:
        self.order = order
        self.index = -1
        self.cluster = cluster
        self.queue_kind = queue_kind
        self.latency = 1
        self.pending = 0
        self.issued = False
        self.completed = False
        self.is_copy = False
        self.copy_value: Optional[Value] = None
        self.copy_target = -1
        self.dest_values: List[Value] = []
        self.waiters: List["_InFlight"] = []
        self.is_memory = False
        self.is_load = False
        self.address = 0
        self.dests: Tuple[int, ...] = ()
        self.dest_int = 0
        self.dest_fp = 0

    def __lt__(self, other: "_InFlight") -> bool:  # pragma: no cover - heap tie-break
        return self.order < other.order


class ClusteredProcessor(SteeringContext):
    """Cycle-level model of the clustered machine driven by a steering policy.

    Parameters
    ----------
    config:
        Architectural parameters (Table 2 defaults).
    steering:
        The run-time steering policy (one of :mod:`repro.steering`).
    register_space:
        Architectural register namespace of the traces to be executed.
    kernel:
        Simulation kernel: ``"interpreter"`` (the original object-graph
        reference implementation), ``"vectorized"`` (the flat-state two-tier
        kernel, bit-identical and several times faster),
        ``"vectorized-jit"`` (the vectorized kernel with the inner loop run
        through :mod:`repro.cluster.jitloop` for policies that expose a
        :meth:`~repro.steering.base.SteeringPolicy.compiled_spec` --
        numba-jitted when numba is installed, the pure-Python twin otherwise)
        or ``"auto"``/``None`` to follow ``$REPRO_KERNEL`` and the built-in
        default.  The choice affects throughput only -- never metrics -- so
        it is a processor knob, not a :class:`ClusterConfig` field (result
        caches key on the config and must not fragment by kernel).
    """

    def __init__(
        self,
        config: ClusterConfig,
        steering: SteeringPolicy,
        register_space: RegisterSpace = DEFAULT_REGISTER_SPACE,
        kernel: Optional[str] = None,
    ) -> None:
        self.config = config
        self.steering = steering
        self.register_space = register_space
        self.kernel = resolve_kernel(kernel)
        #: Test/debug knob: ``False`` steps every cycle instead of skipping
        #: provably idle stretches (the skip-vs-step parity suite pins that
        #: both settings produce bit-identical metrics on both kernels).
        self.idle_skip = True
        #: Test/debug knob: ``False`` keeps every policy on the per-µop
        #: callback path even when it exposes a ``compiled_spec`` (the
        #: lowered parity suite pins that the fused fast path is bit-identical
        #: to the callback path; benchmarks use it as the pre-fusion baseline).
        self.fused_steering = True
        self._bound: Optional[CompiledTrace] = None
        self._reset_state()
        self._vkernel = (
            VectorizedKernel(self)
            if self.kernel in ("vectorized", "vectorized-jit")
            else None
        )

    # ------------------------------------------------------------------ state --
    def _reset_state(self) -> None:
        config = self.config
        self.cycle = 0
        self.metrics = SimulationMetrics(num_clusters=config.num_clusters)
        self.memory = MemoryHierarchy.from_config(config)
        self.interconnect = Interconnect(
            config.num_clusters, config.link_latency, config.copies_per_link_per_cycle
        )
        self.issue_queues = IssueQueues(config)
        self.rob = ReorderBuffer(config.rob_size)
        self.lsq = LoadStoreQueue(config.lsq_size)
        self.regfiles = RegisterFiles(config, self.register_space)
        self.rename = RegisterLocationTable(
            self.register_space.total, config.num_clusters
        )
        self.steering.reset(config.num_clusters)
        self._cluster_inflight = [0] * config.num_clusters
        self._events: Dict[int, List[_InFlight]] = {}
        self._event_heap: List[int] = []
        self._dispatch_buffer: Deque[Tuple[int, int]] = deque()
        self._dispatch_buffer_cap = config.fetch_width * (config.fetch_to_dispatch_latency + 2)
        self._trace_exhausted = False
        self._fetch_pos = 0
        self._num_uops = 0
        self._order = 0
        self._pending_redirect: Optional[_InFlight] = None
        self._dispatch_blocked_until = 0
        self._uops_in_flight = 0

    def _bind_trace(self, compiled: CompiledTrace) -> None:
        """Hoist every per-µop fact the pipeline needs into flat Python lists.

        This is the whole point of the compiled representation: after this,
        the per-cycle loops never call a property, classify a register or
        convert an enum -- they index (see DESIGN.md).
        """
        self._num_uops = len(compiled)
        self._u_queue = compiled.queue_kinds()
        self._u_latency = compiled.latency_list()
        self._u_is_memory = compiled.is_memory_list()
        self._u_is_load = compiled.is_load_list()
        self._u_is_branch = compiled.is_branch_list()
        self._u_address = compiled.address_list()
        self._u_mispredicted = compiled.mispredicted_list()
        self._u_dests = compiled.dest_tuples()
        self._u_usrcs = compiled.unique_src_tuples()
        self._u_dest_counts = compiled.dest_kind_counts(self.register_space)
        if self._vkernel is not None:
            self._vkernel.bind(compiled)

    # ------------------------------------------------ SteeringContext interface --
    @property
    def num_clusters(self) -> int:
        """Number of physical clusters of the machine."""
        return self.config.num_clusters

    def cluster_occupancy(self, cluster: int) -> int:
        """In-flight µops (including pending copies) assigned to ``cluster``."""
        return self._cluster_inflight[cluster]

    def queue_free(self, cluster: int, kind: IssueQueueKind) -> int:
        """Free entries of the ``kind`` issue queue of ``cluster``."""
        return self.issue_queues.free_entries(cluster, kind)

    def register_location_mask(self, reg: int) -> int:
        """Location bitmask of architectural register ``reg`` (rename table view)."""
        return self.rename.location_mask(reg)

    # ----------------------------------------------------------------- running --
    def bind(self, trace: Union[CompiledTrace, Sequence[DynamicUop]]) -> CompiledTrace:
        """Hoist ``trace``'s per-µop columns for repeated :meth:`run_bound` calls.

        Binding pays the compile-and-hoist cost once; every subsequent
        :meth:`run_bound` simulates the bound trace from a clean architectural
        state.  Annotation columns are *not* snapshotted here -- each run
        re-reads them, so callers may re-annotate the compiled trace (via
        :meth:`~repro.uops.compiled.CompiledTrace.annotate_from`) between
        runs.  Returns the bound :class:`CompiledTrace`.
        """
        compiled = compile_trace(trace)
        if resolve_sanitize():
            # Write sanitizer (`$REPRO_SANITIZE=1`): the bound trace may be
            # shared with sibling batches through the memo/artifact/shm
            # layers, so freeze its stored columns -- any in-place mutation
            # then raises at the offending line instead of corrupting a
            # sibling's run (see repro/sanitize.py and DESIGN.md §7).
            compiled.freeze()
        self._bind_trace(compiled)
        self._bound = compiled
        return compiled

    def run(
        self,
        trace: Union[CompiledTrace, Sequence[DynamicUop]],
        max_cycles: Optional[int] = None,
    ) -> SimulationMetrics:
        """Execute ``trace`` to completion and return the collected metrics.

        ``trace`` may be a :class:`~repro.uops.compiled.CompiledTrace` (the
        fast path -- compile once, simulate many times) or a plain sequence
        of :class:`DynamicUop`, which is compiled on entry.  Both forms
        produce bit-identical metrics.

        Raises
        ------
        RuntimeError
            If the simulation exceeds ``max_cycles`` (deadlock guard).
        """
        self.bind(trace)
        return self.run_bound(max_cycles=max_cycles)

    def run_bound(
        self,
        steering: Optional[SteeringPolicy] = None,
        max_cycles: Optional[int] = None,
    ) -> SimulationMetrics:
        """Simulate the bound trace from a clean architectural state.

        The batch-execution path: after one :meth:`bind`, every configuration
        of a trace runs through here -- optionally swapping in its own
        ``steering`` policy -- without re-hoisting the trace columns.  All
        architectural state (ROB, queues, register files, rename map, memory
        hierarchy, interconnect, metrics, the policy's own state via
        ``reset``) is rebuilt per run, so a ``run_bound`` is bit-identical to
        a fresh processor's :meth:`run` of the same trace (the batch
        determinism suite pins this).  Only the steering-annotation columns
        are re-read each run: callers may ``annotate_from`` the compiled
        trace between runs.
        """
        compiled = self._bound
        if compiled is None:
            raise RuntimeError("no trace bound; call bind() (or run()) first")
        if steering is not None:
            self.steering = steering
        self._reset_state()
        self._num_uops = len(compiled)  # _reset_state clears the fetch window
        # Fresh per run, not per bind: the view snapshots annotation lists
        # (and reconstructs statics from them), which change between the runs
        # of a batch.
        self._view = CompiledUopView(compiled)
        limit = max_cycles if max_cycles is not None else self.config.max_cycles
        if self._vkernel is not None:
            # Cache warm-up is owned by the kernel: the jitted fast path
            # replays the access plan inside its own array-form cache model,
            # so warming the object model here would double the cost.
            self._vkernel.run(limit)
        else:
            if self.config.warm_caches:
                self._warm_caches(compiled)
            idle_skip = self.idle_skip
            while not self._finished():
                self._step()
                if self.cycle > limit:
                    raise RuntimeError(
                        f"simulation exceeded {limit} cycles "
                        f"({self.metrics.committed_uops} µops committed); possible deadlock"
                    )
                if idle_skip:
                    self._skip_idle_cycles(limit)
        self.metrics.cycles = self.cycle
        self.metrics.cache = self.memory.summary()
        self.metrics.vc_remaps = getattr(self.steering, "remap_count", 0)
        return self.metrics

    def run_many(
        self,
        trace: Union[CompiledTrace, Sequence[DynamicUop]],
        steerings: Sequence[SteeringPolicy],
        max_cycles: Optional[int] = None,
        prepare=None,
    ) -> List[SimulationMetrics]:
        """Run every policy in ``steerings`` against one in-memory trace.

        The trace is bound once; each policy then simulates it via
        :meth:`run_bound`, so the per-trace fixed costs are shared across the
        whole configuration axis.  ``prepare`` (if given) is called with the
        run index right before each run -- the engine uses it to refresh the
        trace's steering annotations for the next configuration.  Metrics are
        fresh objects per run, element-for-element identical to running each
        policy on its own processor.
        """
        self.bind(trace)
        results: List[SimulationMetrics] = []
        for index, steering in enumerate(steerings):
            if prepare is not None:
                prepare(index)
            results.append(self.run_bound(steering, max_cycles=max_cycles))
        return results

    def _warm_caches(self, compiled: CompiledTrace) -> None:
        """Pre-touch the trace's memory footprint, then zero the cache statistics.

        This models the steady state deep inside a PinPoints region: capacity
        and conflict behaviour are preserved (the working set still may not
        fit), but one-time compulsory misses do not dominate the short trace.
        """
        addresses, loads = compiled.memory_access_plan()
        load_latency = self.memory.load_latency
        store_access = self.memory.store_access
        for address, is_load in zip(addresses, loads):
            if is_load:
                load_latency(address)
            else:
                store_access(address)
        self.memory.l1.reset_stats()
        self.memory.l2.reset_stats()

    def _finished(self) -> bool:
        return (
            self._trace_exhausted
            and not self._dispatch_buffer
            and self.rob.is_empty
            and self._uops_in_flight == 0
        )

    def _step(self) -> None:
        self._commit()
        self._writeback()
        self._issue()
        self._dispatch()
        self._fetch()
        self.cycle += 1

    # ------------------------------------------------------------ idle skipping --
    def _next_event_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending writeback event, or ``None``.

        ``_writeback`` drops drained keys from the heap eagerly, so the heap
        top is always live -- the old lazy-deletion pop loop here paid
        O(log n) per stale key on every idle-skip probe (the heap-hygiene
        regression test pins the invariant).
        """
        heap = self._event_heap
        return heap[0] if heap else None

    def _skip_idle_cycles(self, limit: int) -> None:
        """Jump the clock over cycles in which provably nothing can happen.

        A cycle is skippable only when every stage is inert: no ready µop to
        issue, no completed ROB head to commit, no due event, the fetch
        stage drained or blocked on a full dispatch buffer, and the dispatch
        stage either idle (empty buffer / head still in the fetch pipeline)
        or stalled on a branch redirect.  Redirect-stall cycles increment
        ``mispredict_stalls`` exactly as stepped cycles would, so skipping is
        invisible in the metrics.  Cycles in which the dispatch stage would
        *act* (even just to consult the steering policy or bump a stall
        counter that depends on machine state) are never skipped -- policies
        may be stateful, so they must observe every such cycle.
        """
        if self.issue_queues.total_ready:
            return
        head = self.rob.head()
        if head is not None and head.completed:
            return
        if not self._trace_exhausted and len(self._dispatch_buffer) < self._dispatch_buffer_cap:
            return
        if self._finished():
            return
        cycle = self.cycle
        buffer = self._dispatch_buffer
        redirect = self._pending_redirect is not None
        blocked = redirect or cycle < self._dispatch_blocked_until
        head_ready = buffer[0][0] if buffer else 0
        if buffer and not blocked and head_ready <= cycle:
            return  # the dispatch stage acts this cycle
        candidates = []
        next_event = self._next_event_cycle()
        if next_event is not None:
            candidates.append(next_event)
        if buffer and not blocked:
            candidates.append(head_ready)
        elif blocked and not redirect:
            candidates.append(self._dispatch_blocked_until)
        # No candidate means deadlock; jump to the guard so the run loop
        # raises exactly as cycle-by-cycle stepping eventually would.
        goal = min(min(candidates) if candidates else limit + 1, limit + 1)
        if goal <= cycle:
            return
        if buffer and blocked:
            # The redirect block is checked before the steering policy, so a
            # stalled cycle with a dispatch-ready head counts one mispredict
            # stall and touches nothing else -- account the skipped ones.
            stalled = goal - max(cycle, head_ready)
            if stalled > 0:
                self.metrics.mispredict_stalls += stalled
        self.cycle = goal

    # ------------------------------------------------------------------ commit --
    def _commit(self) -> None:
        retired = self.rob.commit_completed(self.config.commit_width)
        for record in retired:
            self.metrics.committed_uops += 1
            self._cluster_inflight[record.cluster] -= 1
            self._uops_in_flight -= 1
            if record.dests:
                self.regfiles.release_counts(record.cluster, record.dest_int, record.dest_fp)
            if record.is_memory:
                self.lsq.release()

    # --------------------------------------------------------------- writeback --
    def _writeback(self) -> None:
        records = self._events.pop(self.cycle, None)
        if not records:
            return
        # Eager heap hygiene: this cycle's key (and any already-drained
        # stragglers) leave the heap with the bucket, so the idle skip's
        # next-event probe is a plain heap peek.  Skipping never jumps past
        # an event cycle, so every key at or below the current cycle is
        # necessarily drained.
        heap = self._event_heap
        while heap and heap[0] <= self.cycle:
            heapq.heappop(heap)
        push_ready = self.issue_queues.push_ready
        for record in records:
            record.completed = True
            if record.is_copy:
                # The copy arrived at its target cluster: the value is now
                # available there and the copy no longer loads its producer
                # cluster.
                record.copy_value.mark_ready(record.copy_target)
                self._cluster_inflight[record.cluster] -= 1
                self._uops_in_flight -= 1
            else:
                for value in record.dest_values:
                    value.mark_ready(record.cluster)
                if record is self._pending_redirect:
                    # Mispredicted branch resolved: the front end restarts
                    # after the redirect penalty.
                    self._pending_redirect = None
                    self._dispatch_blocked_until = (
                        self.cycle + self.config.mispredict_redirect_penalty
                    )
            for waiter in record.waiters:
                waiter.pending -= 1
                if waiter.pending == 0 and not waiter.issued:
                    push_ready(
                        waiter.cluster, waiter.queue_kind, waiter.order, waiter,
                        is_load=waiter.is_load,
                    )
            record.waiters = []

    # ------------------------------------------------------------------- issue --
    def _issue(self) -> None:
        config = self.config
        issue_queues = self.issue_queues
        if not issue_queues.total_ready:
            return
        loads_issued = 0
        read_ports = config.l1_read_ports
        for cluster in range(config.num_clusters):
            for kind in _ISSUE_KINDS:
                width = issue_queues.issue_width(kind)
                issued = 0
                while issued < width:
                    # Once the shared L1 read ports are saturated, ready
                    # loads stay on their heap untouched (see DESIGN.md) --
                    # the selection is identical to popping, deferring and
                    # requeueing them, without the O(ready-list) churn.
                    record = issue_queues.pop_ready(
                        cluster, kind, allow_loads=loads_issued < read_ports
                    )
                    if record is None:
                        break
                    self._issue_record(record)
                    issued += 1
                    if record.is_load:
                        loads_issued += 1

    def _issue_record(self, record: _InFlight) -> None:
        record.issued = True
        self.issue_queues.release(record.cluster, record.queue_kind)
        if record.is_copy:
            # One cycle of execution in the producing cluster, then the link.
            value_ready = self.cycle + 1
            arrival = self.interconnect.schedule_transfer(
                record.cluster, record.copy_target, value_ready
            )
            self._schedule(arrival, record)
            return
        if record.is_load:
            latency = record.latency + self.memory.load_latency(record.address)
        elif record.is_memory:
            latency = record.latency
            self.memory.store_access(record.address)
        else:
            latency = record.latency
        self._schedule(self.cycle + max(1, latency), record)

    def _schedule(self, when: int, record: _InFlight) -> None:
        bucket = self._events.get(when)
        if bucket is None:
            self._events[when] = [record]
            heapq.heappush(self._event_heap, when)
        else:
            bucket.append(record)

    # ---------------------------------------------------------------- dispatch --
    def _dispatch(self) -> None:
        config = self.config
        buffer = self._dispatch_buffer
        if not buffer:
            return
        view = self._view
        steering = self.steering
        dispatched = 0
        while dispatched < config.dispatch_width and buffer:
            ready_cycle, index = buffer[0]
            if ready_cycle > self.cycle:
                break
            if self._pending_redirect is not None or self.cycle < self._dispatch_blocked_until:
                self.metrics.mispredict_stalls += 1
                break
            view.index = index
            cluster = steering.pick_cluster(view, self)
            if cluster is None:
                self.metrics.steering_stalls += 1
                break
            if not 0 <= cluster < config.num_clusters:
                raise ValueError(
                    f"steering policy {steering.name} returned invalid cluster {cluster}"
                )
            if not self._try_dispatch(index, cluster):
                break
            buffer.popleft()
            dispatched += 1

    def _try_dispatch(self, index: int, cluster: int) -> bool:
        """Allocate every resource for µop ``index`` on ``cluster``; ``False`` stalls dispatch."""
        kind = self._u_queue[index]
        if self.rob.is_full:
            self.metrics.rob_stalls += 1
            return False
        is_memory = self._u_is_memory[index]
        if is_memory and self.lsq.is_full:
            self.metrics.lsq_stalls += 1
            return False
        issue_queues = self.issue_queues
        if issue_queues.free_entries(cluster, kind) <= 0:
            self.metrics.allocation_stalls[cluster] += 1
            return False
        dests = self._u_dests[index]
        dest_int, dest_fp = self._u_dest_counts[index]
        if dests and not self.regfiles.can_allocate_counts(cluster, dest_int, dest_fp):
            self.metrics.allocation_stalls[cluster] += 1
            return False

        # Plan operand availability and the copies that must be generated.
        # ``wait_on``/``new_copies`` hold one entry per *distinct* source
        # operand that is not yet ready in the target cluster: either an
        # existing record to wait on, or a new copy that must be created (and
        # for which the source cluster's copy queue needs a free entry).  The
        # sources were deduplicated at trace compilation.
        rename = self.rename
        wait_on: List[_InFlight] = []
        new_copies: List[Tuple[Value, int]] = []  # (value, source cluster)
        copy_queue_demand: Optional[Dict[int, int]] = None
        for reg in self._u_usrcs[index]:
            value = rename.current(reg)
            if value.is_ready_in(cluster):
                continue
            producer = value.producer
            if producer is not None and not producer.completed and producer.cluster == cluster:
                wait_on.append(producer)
                continue
            existing_copy = value.copies.get(cluster)
            if existing_copy is not None and not existing_copy.completed:
                wait_on.append(existing_copy)
                continue
            source_cluster = value.home_cluster
            if source_cluster == cluster:
                # The value will appear in this cluster without a copy (its
                # producer completed between renaming and now, or it is a
                # live-in homed here); wait on the producer if still pending.
                if producer is not None and not producer.completed:
                    wait_on.append(producer)
                continue
            new_copies.append((value, source_cluster))
            if copy_queue_demand is None:
                copy_queue_demand = {}
            copy_queue_demand[source_cluster] = copy_queue_demand.get(source_cluster, 0) + 1

        if copy_queue_demand is not None:
            for source_cluster, demand in copy_queue_demand.items():
                if issue_queues.free_entries(source_cluster, IssueQueueKind.COPY) < demand:
                    self.metrics.allocation_stalls[source_cluster] += 1
                    return False

        # Every resource is available: perform the dispatch.
        record = _InFlight(self._next_order(), cluster, kind)
        record.index = index
        record.latency = self._u_latency[index]
        record.is_memory = is_memory
        record.is_load = self._u_is_load[index]
        record.address = self._u_address[index]
        record.dests = dests
        record.dest_int = dest_int
        record.dest_fp = dest_fp

        for value, source_cluster in new_copies:
            copy = self._create_copy(value, source_cluster, cluster)
            wait_on.append(copy)

        record.pending = len(wait_on)
        for dependency in wait_on:
            dependency.waiters.append(record)

        issue_queues.allocate(cluster, kind)
        if dests:
            self.regfiles.allocate_counts(cluster, dest_int, dest_fp)
        if is_memory:
            self.lsq.allocate()
        self.rob.allocate(record)
        self._cluster_inflight[cluster] += 1
        self._uops_in_flight += 1
        self.metrics.dispatched_uops += 1
        self.metrics.cluster_dispatch[cluster] += 1

        for reg in dests:
            value = rename.define(reg, record, cluster)
            record.dest_values.append(value)

        if self._u_is_branch[index]:
            self.metrics.branches += 1
            if self._u_mispredicted[index] and self.config.model_branch_mispredictions:
                self.metrics.mispredictions += 1
                self._pending_redirect = record

        if record.pending == 0:
            issue_queues.push_ready(cluster, kind, record.order, record, is_load=record.is_load)
        return True

    def _create_copy(self, value: Value, source_cluster: int, target_cluster: int) -> _InFlight:
        """Insert a copy µop in ``source_cluster`` moving ``value`` to ``target_cluster``."""
        copy = _InFlight(self._next_order(), source_cluster, IssueQueueKind.COPY)
        copy.is_copy = True
        copy.copy_value = value
        copy.copy_target = target_cluster
        producer = value.producer
        if producer is not None and not producer.completed:
            copy.pending = 1
            producer.waiters.append(copy)
        self.issue_queues.allocate(source_cluster, IssueQueueKind.COPY)
        self._cluster_inflight[source_cluster] += 1
        self._uops_in_flight += 1
        self.metrics.copies_generated += 1
        self.metrics.cluster_copies[source_cluster] += 1
        value.copies[target_cluster] = copy
        if copy.pending == 0:
            self.issue_queues.push_ready(source_cluster, IssueQueueKind.COPY, copy.order, copy)
        return copy

    def _next_order(self) -> int:
        self._order += 1
        return self._order

    # ------------------------------------------------------------------- fetch --
    def _fetch(self) -> None:
        if self._trace_exhausted:
            return
        config = self.config
        buffer = self._dispatch_buffer
        cap = self._dispatch_buffer_cap
        position = self._fetch_pos
        total = self._num_uops
        ready_cycle = self.cycle + config.fetch_to_dispatch_latency
        fetched = 0
        while fetched < config.fetch_width and len(buffer) < cap:
            if position >= total:
                self._trace_exhausted = True
                break
            buffer.append((ready_cycle, position))
            position += 1
            fetched += 1
        self._fetch_pos = position


def simulate_trace(
    trace: Union[CompiledTrace, Sequence[DynamicUop]],
    steering: SteeringPolicy,
    config: Optional[ClusterConfig] = None,
    register_space: RegisterSpace = DEFAULT_REGISTER_SPACE,
    max_cycles: Optional[int] = None,
    kernel: Optional[str] = None,
) -> SimulationMetrics:
    """Convenience wrapper: run ``trace`` on a machine with ``steering``.

    Parameters
    ----------
    trace:
        Dynamic µops in program order -- a
        :class:`~repro.uops.compiled.CompiledTrace` or a ``DynamicUop``
        sequence (compiled on entry).
    steering:
        Run-time steering policy.
    config:
        Machine configuration; Table 2's 2-cluster machine by default.
    register_space:
        Architectural register namespace used by the trace.
    max_cycles:
        Optional override of the deadlock guard.
    kernel:
        Simulation kernel override (see :class:`ClusteredProcessor`).
    """
    processor = ClusteredProcessor(
        config or ClusterConfig(), steering, register_space, kernel=kernel
    )
    return processor.run(trace, max_cycles=max_cycles)
