"""The optionally numba-jitted inner loop of the ``vectorized-jit`` kernel.

:func:`run_fused` executes a complete fused-steering run -- commit,
writeback, issue, fused dispatch, fetch and idle skip -- as **one** compiled
function over flat ``int64``/``bool`` numpy arrays, with no Python frames at
all between cycle 0 and the final cycle.  It is a transcription of
:meth:`repro.cluster.kernel.VectorizedKernel.run`'s array tier into
numba-compatible form; the two differ only in data-structure realisation:

* the per-cycle event buckets (dict + key heap) become a binary heap of
  ``(cycle, slot)`` pairs held in two parallel arrays.  Within one cycle the
  pop order is arbitrary, which is safe because writeback is commutative
  inside a cycle: completions OR location bits, decrement distinct waiters'
  pending counts and push ready slots into heaps whose *content* (not
  insertion order) determines every later pop; completing records and their
  waiters are necessarily disjoint (a waiter has not issued yet).
* the ready heaps become fixed-capacity array heaps (per-queue ready count
  is bounded by the queue capacity, since entries exist only between
  dispatch and issue).
* waiter lists become linked edge arrays, the copy map becomes a flat
  ``definition x cluster`` array, and the LRU caches / interconnect become
  tag matrices and ``N x N`` counter matrices (same geometry, same
  replacement arithmetic as the object models).

**Bit-identity.**  When numba is absent the very same function body runs as
plain Python (the ``_scan_last_writers`` convention), and the jit parity
suite executes it that way (``FORCE_PURE``) against the interpreter and the
fused Python tier -- so the semantics of the transcription are pinned in
every environment, and the numba leg of CI only has to establish that
compilation preserves them (integer/bool/float64 array arithmetic, on which
numba follows CPython semantics, including floor division).

For production runs without numba the kernel does **not** route through this
module: the fused Python tier of :class:`VectorizedKernel` *is* the
pure-Python twin of this loop, and it is strictly faster than executing the
array transcription under the interpreter.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed (CI matrix)
    from numba import njit as _njit
except ImportError:  # pragma: no cover - the default environment
    _njit = None

from repro.cluster.kernel import (
    _FORM_CONSTANT,
    _FORM_DEP,
    _FORM_LEAST,
    _FORM_MAP,
    _FORM_MODULO,
    _FORM_OCC,
    _FORM_TABLE,
)
from repro.uops.compiled import NO_ANNOTATION

#: True when numba is importable (the jitted loop is in use).
JIT_ENABLED = _njit is not None

#: Test knob: route ``vectorized-jit`` runs through the *un-jitted* loop
#: body even when numba is absent (or present).  The parity suite uses this
#: to pin the transcription's semantics in pure Python; production runs
#: never set it.
FORCE_PURE = False


def jit_active() -> bool:
    """Whether ``vectorized-jit`` should delegate to this module at all."""
    return JIT_ENABLED or FORCE_PURE


# --------------------------------------------------------------- config slots --
# One flat int64 config vector keeps the compiled signature short; globals
# used inside jitted functions are compile-time constants to numba.
CFG_COMMIT_W = 0
CFG_DISPATCH_W = 1
CFG_FETCH_W = 2
CFG_FETCH_LAT = 3
CFG_ROB = 4
CFG_LSQ = 5
CFG_READ_PORTS = 6
CFG_REDIRECT_PEN = 7
CFG_MODEL_MISPRED = 8
CFG_BUFFER_CAP = 9
CFG_IDLE_SKIP = 10
CFG_NUM_REGS = 11
CFG_LINK_LAT = 12
CFG_COPIES_PER_CYCLE = 13
CFG_L1_SETS = 14
CFG_L1_ASSOC = 15
CFG_L1_LAT = 16
CFG_L2_SETS = 17
CFG_L2_ASSOC = 18
CFG_L2_LAT = 19
CFG_MEM_LAT = 20
CFG_LINE_SIZE = 21
CFG_ALL_MASK = 22
CFG_LIMIT = 23
CFG_DO_WARM = 24
CFG_SIZE = 25

# ---------------------------------------------------------------- output slots --
OUT_STATUS = 0  # 0 = completed, 1 = cycle limit exceeded (deadlock guard)
OUT_CYCLE = 1
OUT_COMMITTED = 2
OUT_DISPATCHED = 3
OUT_COPIES = 4
OUT_STEER = 5
OUT_ROB = 6
OUT_LSQ = 7
OUT_MISPRED_STALLS = 8
OUT_BRANCHES = 9
OUT_MISPREDICTIONS = 10
OUT_MOD_NEXT = 11
OUT_VC_REMAPS = 12
OUT_SIZE = 13


# ------------------------------------------------------------------ array heaps --
def _heap_push(heap, size, value):
    """Push ``value`` onto the min-heap prefix ``heap[:size]``; new size."""
    heap[size] = value
    i = size
    while i > 0:
        parent = (i - 1) >> 1
        if heap[parent] <= heap[i]:
            break
        tmp = heap[parent]
        heap[parent] = heap[i]
        heap[i] = tmp
        i = parent
    return size + 1


def _heap_pop(heap, size):
    """Pop the minimum of ``heap[:size]``; returns ``(value, new size)``."""
    top = heap[0]
    size -= 1
    heap[0] = heap[size]
    i = 0
    while True:
        left = 2 * i + 1
        if left >= size:
            break
        child = left
        right = left + 1
        if right < size and heap[right] < heap[left]:
            child = right
        if heap[i] <= heap[child]:
            break
        tmp = heap[i]
        heap[i] = heap[child]
        heap[child] = tmp
        i = child
    return top, size


def _ev_push(ev_cycle, ev_slot, size, when, slot):
    """Push a ``(when, slot)`` event; ordered by cycle only (see module doc)."""
    ev_cycle[size] = when
    ev_slot[size] = slot
    i = size
    while i > 0:
        parent = (i - 1) >> 1
        if ev_cycle[parent] <= ev_cycle[i]:
            break
        tc = ev_cycle[parent]
        ev_cycle[parent] = ev_cycle[i]
        ev_cycle[i] = tc
        ts = ev_slot[parent]
        ev_slot[parent] = ev_slot[i]
        ev_slot[i] = ts
        i = parent
    return size + 1


def _ev_pop(ev_cycle, ev_slot, size):
    """Pop the earliest event; returns ``(slot, new size)``."""
    slot = ev_slot[0]
    size -= 1
    ev_cycle[0] = ev_cycle[size]
    ev_slot[0] = ev_slot[size]
    i = 0
    while True:
        left = 2 * i + 1
        if left >= size:
            break
        child = left
        right = left + 1
        if right < size and ev_cycle[right] < ev_cycle[left]:
            child = right
        if ev_cycle[i] <= ev_cycle[child]:
            break
        tc = ev_cycle[i]
        ev_cycle[i] = ev_cycle[child]
        ev_cycle[child] = tc
        ts = ev_slot[i]
        ev_slot[i] = ev_slot[child]
        ev_slot[child] = ts
        i = child
    return slot, size


# ------------------------------------------------------------------ cache model --
def _cache_access(tags, num_sets, assoc, line):
    """LRU set-associative access; allocate on miss; True on hit.

    ``tags[set]`` holds tags MRU-first with ``-1`` padding past the filled
    prefix -- the array form of ``SetAssociativeCache``'s per-set lists, with
    identical indexing (``set = line % num_sets``, ``tag = line // num_sets``)
    and identical replacement (insert at front, drop the last way).
    """
    s = line % num_sets
    tag = line // num_sets
    row = tags[s]
    for way in range(assoc):
        t = row[way]
        if t == tag:
            if way != 0:
                for k in range(way, 0, -1):
                    row[k] = row[k - 1]
                row[0] = tag
            return True
        if t == -1:
            for k in range(way, 0, -1):
                row[k] = row[k - 1]
            row[0] = tag
            return False
    for k in range(assoc - 1, 0, -1):
        row[k] = row[k - 1]
    row[0] = tag
    return False


def _mem_load(l1_tags, l2_tags, stats, cfg, address):
    """``MemoryHierarchy.load_latency`` over the tag matrices."""
    line = address // cfg[CFG_LINE_SIZE]
    stats[0] += 1
    if _cache_access(l1_tags, cfg[CFG_L1_SETS], cfg[CFG_L1_ASSOC], line):
        stats[1] += 1
        return cfg[CFG_L1_LAT]
    stats[2] += 1
    if _cache_access(l2_tags, cfg[CFG_L2_SETS], cfg[CFG_L2_ASSOC], line):
        stats[3] += 1
        return cfg[CFG_L2_LAT]
    return cfg[CFG_MEM_LAT]


def _mem_store(l1_tags, l2_tags, stats, cfg, address):
    """``MemoryHierarchy.store_access``: write-allocate in both levels."""
    line = address // cfg[CFG_LINE_SIZE]
    stats[0] += 1
    if _cache_access(l1_tags, cfg[CFG_L1_SETS], cfg[CFG_L1_ASSOC], line):
        stats[1] += 1
    stats[2] += 1
    if _cache_access(l2_tags, cfg[CFG_L2_SETS], cfg[CFG_L2_ASSOC], line):
        stats[3] += 1


def _schedule_transfer(ic_next_free, ic_started, ic_transfers, src, dst,
                       ready_cycle, cfg):
    """``Interconnect.schedule_transfer`` over ``N x N`` counter matrices."""
    next_free = ic_next_free[src, dst]
    start = ready_cycle if ready_cycle > next_free else next_free
    if start > next_free:
        ic_started[src, dst] = 0
    started = ic_started[src, dst] + 1
    if started >= cfg[CFG_COPIES_PER_CYCLE]:
        ic_next_free[src, dst] = start + 1
        ic_started[src, dst] = 0
    else:
        ic_next_free[src, dst] = start
        ic_started[src, dst] = started
    ic_transfers[src, dst] += 1
    return start + cfg[CFG_LINK_LAT]


# -------------------------------------------------------------------- the loop --
def _fused_loop(
    u_queue, u_is_memory, u_is_load, u_is_branch, u_mispred,
    u_di, u_df, latency, address,
    src_off, src_regs, dep_off, dep_defs, dest_off, def_uop, def_reg,
    form, const_cluster, table, idle_fraction,
    vc_col, leader_col, vc_map, num_vc, fallback_balance,
    occ, inflight, free_int, free_fp,
    alloc_stalls, cluster_dispatch, cluster_copies,
    qcap, issue_widths, cfg,
    l1_tags, l2_tags, cache_stats,
    warm_addr, warm_isload,
    ic_next_free, ic_started, ic_transfers,
    out,
):
    """One complete fused-steering run (see the module docstring).

    Stage order, stall accounting and steering-form arithmetic follow
    ``VectorizedKernel.run`` statement for statement; only the data
    structures differ (array heaps, edge lists, tag matrices).
    """
    n = u_queue.shape[0]
    num_clusters = inflight.shape[0]

    # Cache warm-up: replay the memory-access plan through the tag arrays
    # (tags persist, statistics stay zero -- the array form of replay +
    # ``reset_stats``).
    if cfg[CFG_DO_WARM] != 0:
        for i in range(warm_addr.shape[0]):
            line = warm_addr[i] // cfg[CFG_LINE_SIZE]
            hit = _cache_access(l1_tags, cfg[CFG_L1_SETS], cfg[CFG_L1_ASSOC], line)
            if not hit or not warm_isload[i]:
                _cache_access(l2_tags, cfg[CFG_L2_SETS], cfg[CFG_L2_ASSOC], line)

    # Register-definition state (one slot per in-trace definition).
    num_defs = def_uop.shape[0]
    def_mask = np.zeros(num_defs, np.int64)
    def_home = np.zeros(num_defs, np.int64)
    cur_def = np.full(cfg[CFG_NUM_REGS], -1, np.int64)
    copy_map = np.full(num_defs * num_clusters, -1, np.int64)

    # Record slots (µops and copies share one space; slot order equals
    # creation order, so min-heaps of bare slots pop oldest-first).
    cap = n + 16
    rec_uop = np.full(cap, -1, np.int64)
    rec_cluster = np.zeros(cap, np.int64)
    rec_qslot = np.zeros(cap, np.int64)
    rec_pending = np.zeros(cap, np.int64)
    rec_completed = np.zeros(cap, np.bool_)
    rec_isload = np.zeros(cap, np.bool_)
    rec_copydef = np.zeros(cap, np.int64)
    rec_copytarget = np.zeros(cap, np.int64)
    rec_whead = np.full(cap, -1, np.int64)
    next_slot = 0
    uop_slot = np.zeros(n, np.int64)
    uop_completed = np.zeros(n, np.bool_)
    uop_cluster = np.zeros(n, np.int64)

    # Waiter edges: ``rec_whead[s]`` heads a linked list of records waiting
    # on slot ``s`` (prepend order; waiter processing is order-independent).
    ecap = cap
    edge_to = np.zeros(ecap, np.int64)
    edge_next = np.full(ecap, -1, np.int64)
    edge_n = 0

    # Ready heaps per (cluster, kind); loads separate (L1 port sharing).
    # Per-queue ready count is bounded by queue capacity, so the heaps are
    # fixed-size rows.
    nq = num_clusters * 3
    rcap = qcap[0]
    if qcap[1] > rcap:
        rcap = qcap[1]
    if qcap[2] > rcap:
        rcap = qcap[2]
    rcap += 1
    ready = np.zeros((nq, rcap), np.int64)
    ready_n = np.zeros(nq, np.int64)
    ready_loads = np.zeros((nq, rcap), np.int64)
    ready_loads_n = np.zeros(nq, np.int64)
    total_ready = 0

    # Writeback events as a (cycle, slot) heap (see module docstring).
    ev_cap = 1024
    ev_cycle = np.zeros(ev_cap, np.int64)
    ev_slot = np.zeros(ev_cap, np.int64)
    ev_n = 0

    # Per-dispatch scratch: wait-on / new-copy rows are bounded by the
    # longest dependence row of the trace.
    maxdep = 0
    for i in range(n):
        row = dep_off[i + 1] - dep_off[i]
        if row > maxdep:
            maxdep = row
    copy_d = np.zeros(maxdep + 1, np.int64)
    copy_src = np.zeros(maxdep + 1, np.int64)
    wait_buf = np.zeros(2 * maxdep + 2, np.int64)
    counts_buf = np.zeros(num_clusters, np.int64)

    # In-order window counters and front-end state.
    commit_idx = 0
    dispatch_pos = 0
    fetch_pos = 0
    ready_at = np.zeros(n, np.int64)
    trace_exhausted = False
    lsq_count = 0
    uops_in_flight = 0
    redirect_slot = -1
    blocked_until = 0
    cycle = 0
    status = 0
    mod_next = 0
    vc_remaps = 0

    # Configuration scalars.
    commit_width = cfg[CFG_COMMIT_W]
    dispatch_width = cfg[CFG_DISPATCH_W]
    fetch_width = cfg[CFG_FETCH_W]
    fetch_latency = cfg[CFG_FETCH_LAT]
    rob_size = cfg[CFG_ROB]
    lsq_size = cfg[CFG_LSQ]
    read_ports = cfg[CFG_READ_PORTS]
    redirect_penalty = cfg[CFG_REDIRECT_PEN]
    model_mispredict = cfg[CFG_MODEL_MISPRED]
    buffer_cap = cfg[CFG_BUFFER_CAP]
    idle_skip = cfg[CFG_IDLE_SKIP]
    all_mask = cfg[CFG_ALL_MASK]
    limit = cfg[CFG_LIMIT]
    cap_copy = qcap[2]

    # Scalar metrics.
    m_committed = 0
    m_dispatched = 0
    m_copies = 0
    m_steer = 0
    m_rob = 0
    m_lsq = 0
    m_mispredict_stalls = 0
    m_branches = 0
    m_mispredictions = 0

    while True:
        if (
            trace_exhausted
            and dispatch_pos == fetch_pos
            and commit_idx == dispatch_pos
            and uops_in_flight == 0
        ):
            break

        # -------------------------------------------------------- commit --
        if commit_idx < dispatch_pos and uop_completed[commit_idx]:
            committed = 0
            while True:
                cluster = uop_cluster[commit_idx]
                inflight[cluster] -= 1
                uops_in_flight -= 1
                di = u_di[commit_idx]
                df = u_df[commit_idx]
                if di > 0 or df > 0:
                    free_int[cluster] += di
                    free_fp[cluster] += df
                if u_is_memory[commit_idx]:
                    lsq_count -= 1
                commit_idx += 1
                committed += 1
                if (
                    committed >= commit_width
                    or commit_idx >= dispatch_pos
                    or not uop_completed[commit_idx]
                ):
                    break
            m_committed += committed

        # ----------------------------------------------------- writeback --
        while ev_n > 0 and ev_cycle[0] == cycle:
            slot, ev_n = _ev_pop(ev_cycle, ev_slot, ev_n)
            rec_completed[slot] = True
            uop = rec_uop[slot]
            if uop < 0:
                # Copy arrived: value available in the target cluster,
                # producing cluster no longer loaded.
                def_mask[rec_copydef[slot]] |= 1 << rec_copytarget[slot]
                inflight[rec_cluster[slot]] -= 1
                uops_in_flight -= 1
            else:
                uop_completed[uop] = True
                bit = 1 << rec_cluster[slot]
                for d in range(dest_off[uop], dest_off[uop + 1]):
                    def_mask[d] |= bit
                if slot == redirect_slot:
                    redirect_slot = -1
                    blocked_until = cycle + redirect_penalty
            edge = rec_whead[slot]
            while edge >= 0:
                waiter = edge_to[edge]
                pending = rec_pending[waiter] - 1
                rec_pending[waiter] = pending
                if pending == 0:
                    qslot = rec_qslot[waiter]
                    if rec_isload[waiter]:
                        ready_loads_n[qslot] = _heap_push(
                            ready_loads[qslot], ready_loads_n[qslot], waiter
                        )
                    else:
                        ready_n[qslot] = _heap_push(
                            ready[qslot], ready_n[qslot], waiter
                        )
                    total_ready += 1
                edge = edge_next[edge]
            rec_whead[slot] = -1

        # --------------------------------------------------------- issue --
        if total_ready > 0:
            loads_issued = 0
            for qslot in range(nq):
                if ready_n[qslot] == 0 and ready_loads_n[qslot] == 0:
                    continue
                width = issue_widths[qslot % 3]
                issued = 0
                while issued < width:
                    # Merge the two heaps by age; once the shared L1 read
                    # ports are saturated, ready loads stay on theirs.
                    ln = ready_loads_n[qslot]
                    mn = ready_n[qslot]
                    if (
                        ln > 0
                        and loads_issued < read_ports
                        and (mn == 0 or ready_loads[qslot, 0] < ready[qslot, 0])
                    ):
                        slot, ln = _heap_pop(ready_loads[qslot], ln)
                        ready_loads_n[qslot] = ln
                        was_load = True
                    elif mn > 0:
                        slot, mn = _heap_pop(ready[qslot], mn)
                        ready_n[qslot] = mn
                        was_load = False
                    else:
                        break
                    total_ready -= 1
                    occ[qslot] -= 1
                    uop = rec_uop[slot]
                    if uop < 0:
                        # One execute cycle in the producing cluster, then
                        # the link.
                        when = _schedule_transfer(
                            ic_next_free, ic_started, ic_transfers,
                            rec_cluster[slot], rec_copytarget[slot],
                            cycle + 1, cfg,
                        )
                    elif was_load:
                        lat = latency[uop] + _mem_load(
                            l1_tags, l2_tags, cache_stats, cfg, address[uop]
                        )
                        loads_issued += 1
                        when = cycle + (lat if lat > 1 else 1)
                    else:
                        lat = latency[uop]
                        if u_is_memory[uop]:
                            _mem_store(
                                l1_tags, l2_tags, cache_stats, cfg, address[uop]
                            )
                        when = cycle + (lat if lat > 1 else 1)
                    if ev_n >= ev_cap:
                        new_cap = ev_cap * 2
                        tc = np.zeros(new_cap, np.int64)
                        tc[:ev_cap] = ev_cycle
                        ev_cycle = tc
                        ts = np.zeros(new_cap, np.int64)
                        ts[:ev_cap] = ev_slot
                        ev_slot = ts
                        ev_cap = new_cap
                    ev_n = _ev_push(ev_cycle, ev_slot, ev_n, when, slot)
                    issued += 1

        # ------------------------------------------------------ dispatch --
        if dispatch_pos < fetch_pos:
            dispatched = 0
            blocked = redirect_slot >= 0 or cycle < blocked_until
            while dispatched < dispatch_width and dispatch_pos < fetch_pos:
                index = dispatch_pos
                if ready_at[index] > cycle:
                    break
                if blocked:
                    m_mispredict_stalls += 1
                    break
                kind = u_queue[index]
                # ---- steering decision (fused forms only; the callback
                # path never reaches this kernel) -------------------------
                if form == _FORM_OCC:
                    for c in range(num_clusters):
                        counts_buf[c] = 0
                    for si in range(src_off[index], src_off[index + 1]):
                        d = cur_def[src_regs[si]]
                        if d < 0:
                            mask = all_mask
                        else:
                            mask = def_mask[d] | (1 << def_home[d])
                        for c in range(num_clusters):
                            if mask >> c & 1:
                                counts_buf[c] += 1
                    best_count = -1
                    preferred = 0
                    preferred_occ = 0
                    for c in range(num_clusters):
                        count = counts_buf[c]
                        if count > best_count:
                            best_count = count
                            preferred = c
                            preferred_occ = inflight[c]
                        elif count == best_count:
                            occupancy = inflight[c]
                            if occupancy < preferred_occ:
                                preferred = c
                                preferred_occ = occupancy
                    if qcap[kind] - occ[preferred * 3 + kind] > 0:
                        cluster = preferred
                    else:
                        threshold = preferred_occ * idle_fraction
                        diverted = -1
                        diverted_occ = 0
                        for c in range(num_clusters):
                            if (
                                c == preferred
                                or qcap[kind] - occ[c * 3 + kind] <= 0
                            ):
                                continue
                            occupancy = inflight[c]
                            if occupancy <= threshold and (
                                diverted < 0 or occupancy < diverted_occ
                            ):
                                diverted = c
                                diverted_occ = occupancy
                        if diverted < 0:
                            m_steer += 1
                            break
                        cluster = diverted
                elif form == _FORM_MAP:
                    vc = vc_col[index]
                    if vc < 0:
                        if fallback_balance != 0:
                            cluster = 0
                            best_occ = inflight[0]
                            for c in range(1, num_clusters):
                                occupancy = inflight[c]
                                if occupancy < best_occ:
                                    cluster = c
                                    best_occ = occupancy
                        else:
                            cluster = 0
                    else:
                        vc = vc % num_vc
                        if leader_col[index]:
                            cluster = 0
                            best_occ = inflight[0]
                            for c in range(1, num_clusters):
                                occupancy = inflight[c]
                                if occupancy < best_occ:
                                    cluster = c
                                    best_occ = occupancy
                            if vc_map[vc] != cluster:
                                vc_remaps += 1
                            vc_map[vc] = cluster
                        else:
                            cluster = vc_map[vc]
                elif form == _FORM_CONSTANT:
                    cluster = const_cluster
                elif form == _FORM_TABLE:
                    cluster = table[index]
                elif form == _FORM_MODULO:
                    cluster = mod_next
                    mod_next = cluster + 1
                    if mod_next >= num_clusters:
                        mod_next = 0
                elif form == _FORM_LEAST:
                    cluster = 0
                    best_occ = inflight[0]
                    for c in range(1, num_clusters):
                        occupancy = inflight[c]
                        if occupancy < best_occ:
                            cluster = c
                            best_occ = occupancy
                else:  # _FORM_DEP
                    for c in range(num_clusters):
                        counts_buf[c] = 0
                    for si in range(src_off[index], src_off[index + 1]):
                        d = cur_def[src_regs[si]]
                        if d < 0:
                            mask = all_mask
                        else:
                            mask = def_mask[d] | (1 << def_home[d])
                        for c in range(num_clusters):
                            if mask >> c & 1:
                                counts_buf[c] += 1
                    best_count = 0
                    for c in range(num_clusters):
                        if counts_buf[c] > best_count:
                            best_count = counts_buf[c]
                    if best_count == 0:
                        cluster = 0
                    else:
                        cluster = 0
                        for c in range(num_clusters):
                            if counts_buf[c] == best_count:
                                cluster = c
                                break
                # ---- resource checks ------------------------------------
                if dispatch_pos - commit_idx >= rob_size:
                    m_rob += 1
                    break
                if u_is_memory[index] and lsq_count >= lsq_size:
                    m_lsq += 1
                    break
                qslot = cluster * 3 + kind
                if qcap[kind] - occ[qslot] <= 0:
                    alloc_stalls[cluster] += 1
                    break
                di = u_di[index]
                df = u_df[index]
                if (di > 0 or df > 0) and (
                    free_int[cluster] < di or free_fp[cluster] < df
                ):
                    alloc_stalls[cluster] += 1
                    break
                # ---- operand planning over definition ids ---------------
                n_wait = 0
                n_new = 0
                for ji in range(dep_off[index], dep_off[index + 1]):
                    d = dep_defs[ji]
                    if def_mask[d] >> cluster & 1:
                        continue
                    pslot = uop_slot[def_uop[d]]
                    if not rec_completed[pslot] and rec_cluster[pslot] == cluster:
                        wait_buf[n_wait] = pslot
                        n_wait += 1
                        continue
                    cslot = copy_map[d * num_clusters + cluster]
                    if cslot >= 0 and not rec_completed[cslot]:
                        wait_buf[n_wait] = cslot
                        n_wait += 1
                        continue
                    source = def_home[d]
                    if source == cluster:
                        # The value appears here without a copy; wait on
                        # the producer if it is still in flight.
                        if not rec_completed[pslot]:
                            wait_buf[n_wait] = pslot
                            n_wait += 1
                        continue
                    copy_d[n_new] = d
                    copy_src[n_new] = source
                    n_new += 1
                if n_new > 0:
                    # Every needed copy queue must have room, counting
                    # multiple copies from the same source cluster (demand
                    # checked in first-occurrence source order).
                    if n_new == 1:
                        source = copy_src[0]
                        if cap_copy - occ[source * 3 + 2] < 1:
                            alloc_stalls[source] += 1
                            break
                    else:
                        blocked_source = -1
                        for i in range(n_new):
                            source = copy_src[i]
                            seen = False
                            for j in range(i):
                                if copy_src[j] == source:
                                    seen = True
                                    break
                            if seen:
                                continue
                            need = 0
                            for j in range(n_new):
                                if copy_src[j] == source:
                                    need += 1
                            if cap_copy - occ[source * 3 + 2] < need:
                                blocked_source = source
                                break
                        if blocked_source >= 0:
                            alloc_stalls[blocked_source] += 1
                            break
                # ---- every resource available: perform the dispatch -----
                need_slots = 1 + n_new
                if next_slot + need_slots > cap:
                    grow = cap if cap > need_slots else need_slots
                    new_cap = cap + grow
                    t0 = np.full(new_cap, -1, np.int64)
                    t0[:cap] = rec_uop
                    rec_uop = t0
                    t1 = np.zeros(new_cap, np.int64)
                    t1[:cap] = rec_cluster
                    rec_cluster = t1
                    t2 = np.zeros(new_cap, np.int64)
                    t2[:cap] = rec_qslot
                    rec_qslot = t2
                    t3 = np.zeros(new_cap, np.int64)
                    t3[:cap] = rec_pending
                    rec_pending = t3
                    t4 = np.zeros(new_cap, np.bool_)
                    t4[:cap] = rec_completed
                    rec_completed = t4
                    t5 = np.zeros(new_cap, np.bool_)
                    t5[:cap] = rec_isload
                    rec_isload = t5
                    t6 = np.zeros(new_cap, np.int64)
                    t6[:cap] = rec_copydef
                    rec_copydef = t6
                    t7 = np.zeros(new_cap, np.int64)
                    t7[:cap] = rec_copytarget
                    rec_copytarget = t7
                    t8 = np.full(new_cap, -1, np.int64)
                    t8[:cap] = rec_whead
                    rec_whead = t8
                    cap = new_cap
                # Worst-case edges this dispatch: one per wait entry plus
                # one per pending new copy.
                while edge_n + 3 * maxdep + 3 > ecap:
                    new_cap = ecap * 2
                    t9 = np.zeros(new_cap, np.int64)
                    t9[:ecap] = edge_to
                    edge_to = t9
                    t10 = np.full(new_cap, -1, np.int64)
                    t10[:ecap] = edge_next
                    edge_next = t10
                    ecap = new_cap
                slot = next_slot
                next_slot = slot + 1
                rec_uop[slot] = index
                rec_cluster[slot] = cluster
                rec_qslot[slot] = qslot
                rec_isload[slot] = u_is_load[index]
                uop_slot[index] = slot
                uop_cluster[index] = cluster
                for i in range(n_new):
                    d = copy_d[i]
                    source = copy_src[i]
                    cslot = next_slot
                    next_slot = cslot + 1
                    rec_cluster[cslot] = source
                    rec_qslot[cslot] = source * 3 + 2
                    rec_copydef[cslot] = d
                    rec_copytarget[cslot] = cluster
                    pslot = uop_slot[def_uop[d]]
                    if rec_completed[pslot]:
                        rec_pending[cslot] = 0
                        q2 = source * 3 + 2
                        ready_n[q2] = _heap_push(ready[q2], ready_n[q2], cslot)
                        total_ready += 1
                    else:
                        rec_pending[cslot] = 1
                        edge_to[edge_n] = cslot
                        edge_next[edge_n] = rec_whead[pslot]
                        rec_whead[pslot] = edge_n
                        edge_n += 1
                    occ[source * 3 + 2] += 1
                    inflight[source] += 1
                    uops_in_flight += 1
                    m_copies += 1
                    cluster_copies[source] += 1
                    copy_map[d * num_clusters + cluster] = cslot
                    wait_buf[n_wait] = cslot
                    n_wait += 1
                if n_wait == 0:
                    if u_is_load[index]:
                        ready_loads_n[qslot] = _heap_push(
                            ready_loads[qslot], ready_loads_n[qslot], slot
                        )
                    else:
                        ready_n[qslot] = _heap_push(
                            ready[qslot], ready_n[qslot], slot
                        )
                    total_ready += 1
                else:
                    rec_pending[slot] = n_wait
                    for i in range(n_wait):
                        dep_slot = wait_buf[i]
                        edge_to[edge_n] = slot
                        edge_next[edge_n] = rec_whead[dep_slot]
                        rec_whead[dep_slot] = edge_n
                        edge_n += 1
                occ[qslot] += 1
                if di > 0 or df > 0:
                    free_int[cluster] -= di
                    free_fp[cluster] -= df
                if u_is_memory[index]:
                    lsq_count += 1
                inflight[cluster] += 1
                uops_in_flight += 1
                m_dispatched += 1
                cluster_dispatch[cluster] += 1
                for d in range(dest_off[index], dest_off[index + 1]):
                    cur_def[def_reg[d]] = d
                    def_home[d] = cluster
                if u_is_branch[index]:
                    m_branches += 1
                    if u_mispred[index] and model_mispredict != 0:
                        m_mispredictions += 1
                        redirect_slot = slot
                        blocked = True
                dispatch_pos += 1
                dispatched += 1

        # --------------------------------------------------------- fetch --
        if not trace_exhausted:
            ready_cycle = cycle + fetch_latency
            fetched = 0
            while fetched < fetch_width and fetch_pos - dispatch_pos < buffer_cap:
                if fetch_pos >= n:
                    trace_exhausted = True
                    break
                ready_at[fetch_pos] = ready_cycle
                fetch_pos += 1
                fetched += 1

        cycle += 1
        if cycle > limit:
            status = 1
            break

        # ----------------------------------------------------- idle skip --
        if idle_skip == 0:
            continue
        if total_ready > 0:
            continue
        if commit_idx < dispatch_pos and uop_completed[commit_idx]:
            continue
        if not trace_exhausted and fetch_pos - dispatch_pos < buffer_cap:
            continue
        buffer = dispatch_pos < fetch_pos
        if (
            trace_exhausted
            and not buffer
            and commit_idx == dispatch_pos
            and uops_in_flight == 0
        ):
            continue  # finished; the loop head breaks
        redirect = redirect_slot >= 0
        blocked = redirect or cycle < blocked_until
        head_ready = ready_at[dispatch_pos] if buffer else 0
        if buffer and not blocked and head_ready <= cycle:
            continue  # the dispatch stage acts this cycle
        goal = limit + 1
        if ev_n > 0:
            next_event = ev_cycle[0]
            if next_event < goal:
                goal = next_event
        if buffer and not blocked:
            if head_ready < goal:
                goal = head_ready
        elif blocked and not redirect:
            if blocked_until < goal:
                goal = blocked_until
        if goal <= cycle:
            continue
        if buffer and blocked:
            stalled = goal - (cycle if cycle > head_ready else head_ready)
            if stalled > 0:
                m_mispredict_stalls += stalled
        cycle = goal

    out[OUT_STATUS] = status
    out[OUT_CYCLE] = cycle
    out[OUT_COMMITTED] = m_committed
    out[OUT_DISPATCHED] = m_dispatched
    out[OUT_COPIES] = m_copies
    out[OUT_STEER] = m_steer
    out[OUT_ROB] = m_rob
    out[OUT_LSQ] = m_lsq
    out[OUT_MISPRED_STALLS] = m_mispredict_stalls
    out[OUT_BRANCHES] = m_branches
    out[OUT_MISPREDICTIONS] = m_mispredictions
    out[OUT_MOD_NEXT] = mod_next
    out[OUT_VC_REMAPS] = vc_remaps


#: The un-jitted twin of every compiled function (same objects when numba is
#: absent).  ``FORCE_PURE`` runs route through these.
_fused_loop_py = _fused_loop

if _njit is not None:  # pragma: no cover - only where numba is installed
    _heap_push = _njit(cache=False)(_heap_push)
    _heap_pop = _njit(cache=False)(_heap_pop)
    _ev_push = _njit(cache=False)(_ev_push)
    _ev_pop = _njit(cache=False)(_ev_pop)
    _cache_access = _njit(cache=False)(_cache_access)
    _mem_load = _njit(cache=False)(_mem_load)
    _mem_store = _njit(cache=False)(_mem_store)
    _schedule_transfer = _njit(cache=False)(_schedule_transfer)
    _fused_loop = _njit(cache=False)(_fused_loop)


# ------------------------------------------------------------------ marshalling --
def run_fused(vk, spec, form: int, limit: int) -> Tuple[int, int, List[int], int]:
    """Run the bound trace of ``vk`` through the compiled inner loop.

    Marshals the processor's freshly-reset state into flat arrays, executes
    :func:`_fused_loop` (jitted when numba is available, the identical
    Python body under ``FORCE_PURE``), and writes the results back into the
    borrowed model state and the metrics object -- exactly the state the
    fused Python tier leaves behind.

    Returns ``(status, mod_next, vc_map, vc_remaps)``; ``status`` is nonzero
    when the cycle limit was exceeded (the caller raises after syncing
    policy state, mirroring the Python tier's ``finally`` semantics).
    """
    proc = vk._processor
    config = proc.config
    trace = vk._compiled
    num_clusters = vk.num_clusters
    metrics = proc.metrics
    ma = trace.dispatch_meta_arrays(proc.register_space)

    # Per-form columns (annotation columns are re-read every run, like the
    # fused Python tier).
    empty_i = np.empty(0, np.int64)
    empty_b = np.empty(0, np.bool_)
    const_cluster = 0
    table = empty_i
    idle_fraction = 0.0
    vc_col = empty_i
    leader_col = empty_b
    vc_map = empty_i
    num_vc = 1
    fallback_balance = 1
    if form == _FORM_CONSTANT:
        const_cluster = spec.target_cluster
    elif form == _FORM_TABLE:
        col = trace.static_cluster
        table = (
            np.where(col == NO_ANNOTATION, spec.default_cluster, col).astype(np.int64)
            % num_clusters
        )
    elif form == _FORM_DEP or form == _FORM_OCC:
        idle_fraction = spec.idle_fraction
    elif form == _FORM_MAP:
        vc_col = trace.vc_id.astype(np.int64)
        leader_col = trace.chain_leader
        vc_map = np.array(spec.mapping, np.int64)
        num_vc = spec.num_virtual_clusters
        fallback_balance = 1 if spec.fallback_balance else 0

    # Borrowed live accounting, marshalled to arrays (and written back below
    # so the models remain the single source of truth post-run).
    occ_list = proc.issue_queues.occupancy_list()
    inflight_list = proc._cluster_inflight
    free_int_list = proc.regfiles.free_int_list()
    free_fp_list = proc.regfiles.free_fp_list()
    occ = np.array(occ_list, np.int64)
    inflight = np.array(inflight_list, np.int64)
    free_int = np.array(free_int_list, np.int64)
    free_fp = np.array(free_fp_list, np.int64)
    alloc_stalls = np.array(metrics.allocation_stalls, np.int64)
    cluster_dispatch = np.array(metrics.cluster_dispatch, np.int64)
    cluster_copies = np.array(metrics.cluster_copies, np.int64)
    qcap = np.array(vk._qcap, np.int64)
    issue_widths = np.array(vk._issue_widths, np.int64)

    # Array-form memory hierarchy and interconnect (fresh per run, exactly
    # like the object models `_reset_state` just rebuilt).
    mem = proc.memory
    l1_tags = np.full((mem.l1.num_sets, mem.l1.assoc), -1, np.int64)
    l2_tags = np.full((mem.l2.num_sets, mem.l2.assoc), -1, np.int64)
    cache_stats = np.zeros(4, np.int64)
    warm_addr, warm_isload = trace.memory_access_plan_arrays()
    ic_next_free = np.zeros((num_clusters, num_clusters), np.int64)
    ic_started = np.zeros((num_clusters, num_clusters), np.int64)
    ic_transfers = np.zeros((num_clusters, num_clusters), np.int64)

    cfg = np.zeros(CFG_SIZE, np.int64)
    cfg[CFG_COMMIT_W] = config.commit_width
    cfg[CFG_DISPATCH_W] = config.dispatch_width
    cfg[CFG_FETCH_W] = config.fetch_width
    cfg[CFG_FETCH_LAT] = config.fetch_to_dispatch_latency
    cfg[CFG_ROB] = config.rob_size
    cfg[CFG_LSQ] = config.lsq_size
    cfg[CFG_READ_PORTS] = config.l1_read_ports
    cfg[CFG_REDIRECT_PEN] = config.mispredict_redirect_penalty
    cfg[CFG_MODEL_MISPRED] = 1 if config.model_branch_mispredictions else 0
    cfg[CFG_BUFFER_CAP] = proc._dispatch_buffer_cap
    cfg[CFG_IDLE_SKIP] = 1 if proc.idle_skip else 0
    cfg[CFG_NUM_REGS] = vk._num_regs
    cfg[CFG_LINK_LAT] = proc.interconnect.link_latency
    cfg[CFG_COPIES_PER_CYCLE] = proc.interconnect.copies_per_cycle
    cfg[CFG_L1_SETS] = mem.l1.num_sets
    cfg[CFG_L1_ASSOC] = mem.l1.assoc
    cfg[CFG_L1_LAT] = mem.l1.hit_latency
    cfg[CFG_L2_SETS] = mem.l2.num_sets
    cfg[CFG_L2_ASSOC] = mem.l2.assoc
    cfg[CFG_L2_LAT] = mem.l2.hit_latency
    cfg[CFG_MEM_LAT] = mem.memory_latency
    cfg[CFG_LINE_SIZE] = config.line_size
    cfg[CFG_ALL_MASK] = vk._all_mask
    cfg[CFG_LIMIT] = limit
    cfg[CFG_DO_WARM] = 1 if config.warm_caches else 0

    out = np.zeros(OUT_SIZE, np.int64)

    loop = _fused_loop if (JIT_ENABLED and not FORCE_PURE) else _fused_loop_py
    loop(
        ma.queue, ma.is_memory, ma.is_load, ma.is_branch, ma.mispredicted,
        ma.dest_int, ma.dest_fp, ma.latency, trace.address,
        ma.src_offsets, ma.src_regs, ma.dep_offsets, ma.dep_defs,
        ma.dest_offsets, ma.def_uop, ma.def_reg,
        form, const_cluster, table, idle_fraction,
        vc_col, leader_col, vc_map, num_vc, fallback_balance,
        occ, inflight, free_int, free_fp,
        alloc_stalls, cluster_dispatch, cluster_copies,
        qcap, issue_widths, cfg,
        l1_tags, l2_tags, cache_stats,
        warm_addr, warm_isload,
        ic_next_free, ic_started, ic_transfers,
        out,
    )

    # ---- write the final state back into the owning models ----------------
    for i, value in enumerate(occ):
        occ_list[i] = int(value)
    for i, value in enumerate(inflight):
        inflight_list[i] = int(value)
    for i, value in enumerate(free_int):
        free_int_list[i] = int(value)
    for i, value in enumerate(free_fp):
        free_fp_list[i] = int(value)
    for i, value in enumerate(alloc_stalls):
        metrics.allocation_stalls[i] = int(value)
    for i, value in enumerate(cluster_dispatch):
        metrics.cluster_dispatch[i] = int(value)
    for i, value in enumerate(cluster_copies):
        metrics.cluster_copies[i] = int(value)
    mem.l1.stats.accesses = int(cache_stats[0])
    mem.l1.stats.hits = int(cache_stats[1])
    mem.l2.stats.accesses = int(cache_stats[2])
    mem.l2.stats.hits = int(cache_stats[3])
    transfers = proc.interconnect.transfers
    for src in range(num_clusters):
        for dst in range(num_clusters):
            count = int(ic_transfers[src, dst])
            if count:
                transfers[(src, dst)] = count

    proc.cycle = int(out[OUT_CYCLE])
    metrics.committed_uops += int(out[OUT_COMMITTED])
    metrics.dispatched_uops += int(out[OUT_DISPATCHED])
    metrics.copies_generated += int(out[OUT_COPIES])
    metrics.steering_stalls += int(out[OUT_STEER])
    metrics.rob_stalls += int(out[OUT_ROB])
    metrics.lsq_stalls += int(out[OUT_LSQ])
    metrics.mispredict_stalls += int(out[OUT_MISPRED_STALLS])
    metrics.branches += int(out[OUT_BRANCHES])
    metrics.mispredictions += int(out[OUT_MISPREDICTIONS])

    return (
        int(out[OUT_STATUS]),
        int(out[OUT_MOD_NEXT]),
        [int(value) for value in vc_map],
        int(out[OUT_VC_REMAPS]),
    )
