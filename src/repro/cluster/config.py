"""Architectural parameters of the clustered machine (Table 2 of the paper).

The defaults reproduce Table 2:

* Front end: 6 µops/cycle fetch from a trace cache, 5-cycle fetch-to-dispatch,
  3+3 µops/cycle decode/rename/steer (modelled as a 6-wide dispatch group),
  256+256-entry ROB committing 3+3 µops/cycle.
* Back end (per cluster): 48-entry INT issue queue issuing 2 µops/cycle,
  48-entry FP queue issuing 2 µops/cycle, 24-entry COPY queue issuing
  1 copy/cycle, 256-entry INT and FP register files.
* Inter-cluster communication: bidirectional point-to-point links, 1-cycle
  latency, 1 copy per cycle per link.
* Memory: unified 256-entry LSQ, 32 KB 4-way L1 with 3-cycle hits and
  2 read / 1 write ports, 2 MB 16-way L2 with 13-cycle hits, >= 500-cycle
  memory.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.scenarios.registry import register_machine


@dataclass(frozen=True)
class ClusterConfig:
    """Complete architectural configuration of the simulated machine."""

    # -- clustering ---------------------------------------------------------------
    num_clusters: int = 2

    # -- front end ----------------------------------------------------------------
    fetch_width: int = 6
    fetch_to_dispatch_latency: int = 5
    dispatch_width: int = 6
    rob_size: int = 512
    commit_width: int = 6

    # -- per-cluster back end ------------------------------------------------------
    iq_int_size: int = 48
    iq_fp_size: int = 48
    iq_copy_size: int = 24
    issue_int_width: int = 2
    issue_fp_width: int = 2
    issue_copy_width: int = 1
    regfile_int_size: int = 256
    regfile_fp_size: int = 256

    # -- interconnect ---------------------------------------------------------------
    link_latency: int = 1
    copies_per_link_per_cycle: int = 1

    # -- memory hierarchy -------------------------------------------------------------
    lsq_size: int = 256
    line_size: int = 64
    l1_size_kb: int = 32
    l1_assoc: int = 4
    l1_hit_latency: int = 3
    l1_read_ports: int = 2
    l1_write_ports: int = 1
    l2_size_kb: int = 2048
    l2_assoc: int = 16
    l2_hit_latency: int = 13
    memory_latency: int = 500

    # -- control flow ---------------------------------------------------------------
    model_branch_mispredictions: bool = True
    mispredict_redirect_penalty: int = 6

    # -- methodology -----------------------------------------------------------------
    #: Pre-touch the data cache with the trace's addresses before timing.  The
    #: paper simulates 10 M-instruction PinPoints regions where cold misses are
    #: negligible; our traces are much shorter, so without warm-up every first
    #: touch would be a 500-cycle compulsory miss and memory latency would
    #: drown out the steering effects being measured.
    warm_caches: bool = True

    # -- simulation guards ------------------------------------------------------------
    max_cycles: int = 5_000_000

    def __post_init__(self) -> None:
        positive_fields = (
            "num_clusters",
            "fetch_width",
            "dispatch_width",
            "rob_size",
            "commit_width",
            "iq_int_size",
            "iq_fp_size",
            "iq_copy_size",
            "issue_int_width",
            "issue_fp_width",
            "issue_copy_width",
            "lsq_size",
            "line_size",
            "l1_size_kb",
            "l2_size_kb",
            "memory_latency",
            "max_cycles",
        )
        for field_name in positive_fields:
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be positive")
        if self.fetch_to_dispatch_latency < 0 or self.link_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.num_clusters > 16:
            raise ValueError("at most 16 clusters are supported (register-location bitmask width)")

    def with_overrides(self, **kwargs) -> "ClusterConfig":
        """Return a copy of the configuration with the given fields replaced."""
        return replace(self, **kwargs)

    @property
    def issue_width_per_cluster(self) -> int:
        """Total µops a cluster can issue per cycle (excluding copies)."""
        return self.issue_int_width + self.issue_fp_width


@register_machine("table2-2c")
def two_cluster_config(**overrides) -> ClusterConfig:
    """The paper's base machine: 2 clusters with Table 2 parameters."""
    return ClusterConfig(num_clusters=2).with_overrides(**overrides) if overrides else ClusterConfig(num_clusters=2)


@register_machine("table2-4c")
def four_cluster_config(**overrides) -> ClusterConfig:
    """The scalability machine of Section 5.4: 4 clusters, same per-cluster resources."""
    config = ClusterConfig(num_clusters=4)
    return config.with_overrides(**overrides) if overrides else config


@register_machine("table2")
def table2_config(num_clusters: int = 2, **overrides) -> ClusterConfig:
    """Table 2 parameters at any cluster count (``overrides: {"num_clusters": N}``)."""
    return ClusterConfig(num_clusters=num_clusters).with_overrides(**overrides)
