"""Per-cluster issue queues with ready lists.

Every cluster has three issue queues (Table 2): a 48-entry integer queue
issuing 2 µops/cycle, a 48-entry floating-point queue issuing 2 µops/cycle
and a 24-entry copy queue issuing 1 copy/cycle.  Entries are allocated at
dispatch and freed at issue.

To keep the pure-Python simulation fast the queues are modelled as occupancy
counters plus per-queue *ready heaps* ordered by sequence number (oldest
first): only µops whose operands became ready are ever touched by the issue
stage, instead of scanning all 48 entries every cycle (see the optimisation
guidance referenced in DESIGN.md -- work proportional to state changes, not
to structure sizes).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.cluster.config import ClusterConfig
from repro.uops.opcodes import IssueQueueKind


class IssueQueues:
    """Occupancy and ready-list management for all clusters of the machine."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.num_clusters = config.num_clusters
        self._capacity = {
            IssueQueueKind.INT: config.iq_int_size,
            IssueQueueKind.FP: config.iq_fp_size,
            IssueQueueKind.COPY: config.iq_copy_size,
        }
        self._issue_width = {
            IssueQueueKind.INT: config.issue_int_width,
            IssueQueueKind.FP: config.issue_fp_width,
            IssueQueueKind.COPY: config.issue_copy_width,
        }
        #: Allocated (dispatched, not yet issued) entries per (cluster, kind).
        self._occupancy: Dict[Tuple[int, IssueQueueKind], int] = {
            (c, k): 0 for c in range(self.num_clusters) for k in IssueQueueKind
        }
        #: Ready µops per (cluster, kind), as (seq, µop record) heaps.
        self._ready: Dict[Tuple[int, IssueQueueKind], List[Tuple[int, object]]] = {
            (c, k): [] for c in range(self.num_clusters) for k in IssueQueueKind
        }

    # -- capacity ------------------------------------------------------------------
    def capacity(self, kind: IssueQueueKind) -> int:
        """Total entries of a ``kind`` queue (same in every cluster)."""
        return self._capacity[kind]

    def issue_width(self, kind: IssueQueueKind) -> int:
        """Issue bandwidth of a ``kind`` queue per cycle."""
        return self._issue_width[kind]

    def occupancy(self, cluster: int, kind: IssueQueueKind) -> int:
        """Currently allocated entries of the ``kind`` queue of ``cluster``."""
        return self._occupancy[(cluster, kind)]

    def free_entries(self, cluster: int, kind: IssueQueueKind) -> int:
        """Free entries of the ``kind`` queue of ``cluster``."""
        return self._capacity[kind] - self._occupancy[(cluster, kind)]

    # -- dispatch/issue ---------------------------------------------------------------
    def allocate(self, cluster: int, kind: IssueQueueKind) -> bool:
        """Allocate one entry; return ``False`` (and allocate nothing) when full."""
        key = (cluster, kind)
        if self._occupancy[key] >= self._capacity[kind]:
            return False
        self._occupancy[key] += 1
        return True

    def release(self, cluster: int, kind: IssueQueueKind) -> None:
        """Free one entry (at issue time)."""
        key = (cluster, kind)
        if self._occupancy[key] <= 0:
            raise RuntimeError(f"releasing an empty issue queue {key}")
        self._occupancy[key] -= 1

    def push_ready(self, cluster: int, kind: IssueQueueKind, seq: int, record: object) -> None:
        """Add a µop whose operands are all ready to the ready list."""
        heapq.heappush(self._ready[(cluster, kind)], (seq, record))

    def pop_ready(self, cluster: int, kind: IssueQueueKind) -> Optional[object]:
        """Pop the oldest ready µop of the queue, or ``None`` when none is ready."""
        heap = self._ready[(cluster, kind)]
        if not heap:
            return None
        return heapq.heappop(heap)[1]

    def peek_ready(self, cluster: int, kind: IssueQueueKind) -> Optional[object]:
        """Oldest ready µop without removing it."""
        heap = self._ready[(cluster, kind)]
        return heap[0][1] if heap else None

    def requeue_ready(self, cluster: int, kind: IssueQueueKind, seq: int, record: object) -> None:
        """Put a µop back on the ready list (e.g. when a shared port was exhausted)."""
        heapq.heappush(self._ready[(cluster, kind)], (seq, record))

    def ready_count(self, cluster: int, kind: IssueQueueKind) -> int:
        """Number of ready µops waiting in the queue."""
        return len(self._ready[(cluster, kind)])
