"""Per-cluster issue queues with ready lists.

Every cluster has three issue queues (Table 2): a 48-entry integer queue
issuing 2 µops/cycle, a 48-entry floating-point queue issuing 2 µops/cycle
and a 24-entry copy queue issuing 1 copy/cycle.  Entries are allocated at
dispatch and freed at issue.

To keep the pure-Python simulation fast the queues are modelled as occupancy
counters plus per-queue *ready heaps* ordered by sequence number (oldest
first): only µops whose operands became ready are ever touched by the issue
stage, instead of scanning all 48 entries every cycle (see the event-driven
invariants in DESIGN.md -- work proportional to state changes, not to
structure sizes).

Loads compete for the shared L1 read ports, so each integer queue keeps its
ready loads on a *separate* heap: once the ports are saturated for a cycle,
:meth:`IssueQueues.pop_ready` simply stops consulting the load heap instead
of popping every remaining ready load only to requeue it -- O(issue width)
per cycle rather than O(ready list).  Selection order is unchanged (the two
heaps are merged by sequence number), so the fix is invisible to the metrics.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.cluster.config import ClusterConfig
from repro.uops.opcodes import IssueQueueKind

#: Number of issue-queue kinds (INT / FP / COPY).
_NUM_KINDS = len(IssueQueueKind)


class IssueQueues:
    """Occupancy and ready-list management for all clusters of the machine.

    Internally every per-(cluster, kind) structure lives in a flat list
    indexed by ``cluster * 3 + kind`` -- the simulator touches these
    structures several times per µop, and flat-list indexing with an
    :class:`~enum.IntEnum` (or plain ``int``) kind is measurably cheaper
    than hashing ``(cluster, kind)`` tuples.
    """

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.num_clusters = config.num_clusters
        self._capacity: List[int] = [0] * _NUM_KINDS
        self._capacity[IssueQueueKind.INT] = config.iq_int_size
        self._capacity[IssueQueueKind.FP] = config.iq_fp_size
        self._capacity[IssueQueueKind.COPY] = config.iq_copy_size
        self._issue_width: List[int] = [0] * _NUM_KINDS
        self._issue_width[IssueQueueKind.INT] = config.issue_int_width
        self._issue_width[IssueQueueKind.FP] = config.issue_fp_width
        self._issue_width[IssueQueueKind.COPY] = config.issue_copy_width
        slots = self.num_clusters * _NUM_KINDS
        #: Allocated (dispatched, not yet issued) entries per (cluster, kind).
        self._occupancy: List[int] = [0] * slots
        #: Ready non-load µops per (cluster, kind), as (seq, record) heaps.
        self._ready: List[List[Tuple[int, object]]] = [[] for _ in range(slots)]
        #: Ready loads per (cluster, kind); only the INT queues ever use it.
        self._ready_loads: List[List[Tuple[int, object]]] = [[] for _ in range(slots)]
        #: Total ready µops across all queues (drives the idle-cycle skip).
        self.total_ready = 0

    # -- capacity ------------------------------------------------------------------
    def capacity(self, kind: IssueQueueKind) -> int:
        """Total entries of a ``kind`` queue (same in every cluster)."""
        return self._capacity[kind]

    # -- flat-state views (the vectorized kernel's borrow surface) -----------------
    def capacity_list(self) -> List[int]:
        """Per-kind queue capacities as a flat list indexed by kind (copy)."""
        return list(self._capacity)

    def issue_width_list(self) -> List[int]:
        """Per-kind issue widths as a flat list indexed by kind (copy)."""
        return list(self._issue_width)

    def occupancy_list(self) -> List[int]:
        """The *live* flat occupancy list, indexed ``cluster * 3 + kind``.

        The vectorized kernel borrows this list and mutates it in place, so
        occupancy stays consistent between the kernel's own bookkeeping and
        every :meth:`occupancy`/:meth:`free_entries` query (including the
        steering context's) regardless of which kernel is running.
        """
        return self._occupancy

    def issue_width(self, kind: IssueQueueKind) -> int:
        """Issue bandwidth of a ``kind`` queue per cycle."""
        return self._issue_width[kind]

    def occupancy(self, cluster: int, kind: IssueQueueKind) -> int:
        """Currently allocated entries of the ``kind`` queue of ``cluster``."""
        return self._occupancy[cluster * _NUM_KINDS + kind]

    def free_entries(self, cluster: int, kind: IssueQueueKind) -> int:
        """Free entries of the ``kind`` queue of ``cluster``."""
        return self._capacity[kind] - self._occupancy[cluster * _NUM_KINDS + kind]

    # -- dispatch/issue ---------------------------------------------------------------
    def allocate(self, cluster: int, kind: IssueQueueKind) -> bool:
        """Allocate one entry; return ``False`` (and allocate nothing) when full."""
        slot = cluster * _NUM_KINDS + kind
        if self._occupancy[slot] >= self._capacity[kind]:
            return False
        self._occupancy[slot] += 1
        return True

    def release(self, cluster: int, kind: IssueQueueKind) -> None:
        """Free one entry (at issue time)."""
        slot = cluster * _NUM_KINDS + kind
        if self._occupancy[slot] <= 0:
            raise RuntimeError(f"releasing an empty issue queue ({cluster}, {kind})")
        self._occupancy[slot] -= 1

    def push_ready(
        self, cluster: int, kind: IssueQueueKind, seq: int, record: object, is_load: bool = False
    ) -> None:
        """Add a µop whose operands are all ready to the ready list.

        ``is_load`` routes the record to the per-queue load heap so the issue
        stage can stop consulting loads once the L1 read ports are saturated.
        """
        slot = cluster * _NUM_KINDS + kind
        heap = self._ready_loads[slot] if is_load else self._ready[slot]
        heapq.heappush(heap, (seq, record))
        self.total_ready += 1

    def pop_ready(
        self, cluster: int, kind: IssueQueueKind, allow_loads: bool = True
    ) -> Optional[object]:
        """Pop the oldest ready µop of the queue, or ``None`` when none is ready.

        With ``allow_loads=False`` (L1 read ports saturated this cycle) ready
        loads are left untouched on their heap and only non-loads are
        considered -- the same µops issue as if the loads had been popped,
        deferred and requeued, without the churn.
        """
        slot = cluster * _NUM_KINDS + kind
        main = self._ready[slot]
        if allow_loads:
            loads = self._ready_loads[slot]
            if loads and (not main or loads[0][0] < main[0][0]):
                self.total_ready -= 1
                return heapq.heappop(loads)[1]
        if main:
            self.total_ready -= 1
            return heapq.heappop(main)[1]
        return None

    def peek_ready(self, cluster: int, kind: IssueQueueKind) -> Optional[object]:
        """Oldest ready µop without removing it."""
        slot = cluster * _NUM_KINDS + kind
        main = self._ready[slot]
        loads = self._ready_loads[slot]
        if loads and (not main or loads[0][0] < main[0][0]):
            return loads[0][1]
        return main[0][1] if main else None

    def requeue_ready(
        self, cluster: int, kind: IssueQueueKind, seq: int, record: object, is_load: bool = False
    ) -> None:
        """Put a µop back on the ready list (e.g. when a shared port was exhausted)."""
        self.push_ready(cluster, kind, seq, record, is_load=is_load)

    def ready_count(self, cluster: int, kind: IssueQueueKind) -> int:
        """Number of ready µops waiting in the queue."""
        slot = cluster * _NUM_KINDS + kind
        return len(self._ready[slot]) + len(self._ready_loads[slot])
