"""Value tracking: renaming, register locations and copy bookkeeping.

The rename stage of the paper's machine keeps, next to the usual map from
architectural to physical registers, the *location* of every value: which
cluster will produce it, and which clusters it has already been copied to.
That information drives both dependence-based steering (``OP`` reads it
through :meth:`~repro.steering.base.SteeringContext.register_location_mask`)
and copy generation (every scheme needs it to know whether a copy µop is
required).

Renaming is modelled precisely enough to be correct under register reuse:
every new definition of an architectural register creates a fresh
:class:`Value` instance; consumers that captured the previous instance keep
waiting for *that* value even after the architectural register is redefined.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Value:
    """One renamed value (the result of one dynamic µop, or a live-in).

    Attributes
    ----------
    producer:
        The in-flight µop that will produce the value, or ``None`` when the
        value is already architecturally available (live-in or committed).
    ready_mask:
        Bitmask of clusters where the value is available right now.
    copies:
        In-flight copy µops per destination cluster (used to avoid generating
        duplicate copies for the same value and destination).
    home_cluster:
        Cluster where the value is (or will be) produced.
    """

    __slots__ = ("producer", "ready_mask", "copies", "home_cluster")

    def __init__(self, producer: Optional[object], home_cluster: int, ready_mask: int = 0) -> None:
        self.producer = producer
        self.home_cluster = int(home_cluster)
        self.ready_mask = int(ready_mask)
        self.copies: Dict[int, object] = {}

    def is_ready_in(self, cluster: int) -> bool:
        """True when the value is available in ``cluster``."""
        return bool(self.ready_mask & (1 << cluster))

    def mark_ready(self, cluster: int) -> None:
        """Record that the value is now available in ``cluster``."""
        self.ready_mask |= 1 << cluster


class RegisterLocationTable:
    """Map from architectural registers to their current :class:`Value`.

    Parameters
    ----------
    num_registers:
        Size of the architectural register namespace.
    num_clusters:
        Number of physical clusters (width of the location bitmask).
    initial_cluster:
        Cluster assumed to hold all live-in values at the start of the
        simulation; ``None`` (the default) makes live-ins available in every
        cluster, modelling a warmed-up machine where initial state has long
        been broadcast.
    """

    def __init__(
        self,
        num_registers: int,
        num_clusters: int,
        initial_cluster: Optional[int] = None,
    ) -> None:
        if num_registers < 1 or num_clusters < 1:
            raise ValueError("num_registers and num_clusters must be positive")
        self.num_registers = int(num_registers)
        self.num_clusters = int(num_clusters)
        if initial_cluster is None:
            initial_mask = (1 << num_clusters) - 1
            home = 0
        else:
            if not 0 <= initial_cluster < num_clusters:
                raise ValueError("initial_cluster out of range")
            initial_mask = 1 << initial_cluster
            home = initial_cluster
        self._values: List[Value] = [
            Value(producer=None, home_cluster=home, ready_mask=initial_mask)
            for _ in range(self.num_registers)
        ]

    # -- steering-visible view -----------------------------------------------------
    def location_mask(self, reg: int) -> int:
        """Bitmask of clusters holding or about to produce register ``reg``.

        This is the information the dependence-check table of a hardware-only
        steering unit provides: the home cluster of the pending producer plus
        every cluster the value has already been copied to.
        """
        value = self._values[reg]
        return value.ready_mask | (1 << value.home_cluster)

    # -- rename operations -----------------------------------------------------------
    def current(self, reg: int) -> Value:
        """The value currently bound to architectural register ``reg``."""
        return self._values[reg]

    def define(self, reg: int, producer: object, cluster: int) -> Value:
        """Bind ``reg`` to a new value produced by ``producer`` in ``cluster``."""
        if not 0 <= cluster < self.num_clusters:
            raise ValueError(f"cluster {cluster} out of range")
        value = Value(producer=producer, home_cluster=cluster)
        self._values[reg] = value
        return value
