"""Per-simulation statistics.

:class:`SimulationMetrics` gathers everything the paper's evaluation needs:

* **cycles / IPC** for the slowdown comparisons of Figures 5 and 7,
* **copy µops generated** for the copy-reduction scatter plots of Figure 6,
* **per-cluster issue-queue allocation stalls**, the paper's workload-balance
  metric ("workload balance improvement is computed as the total reduction of
  the allocation stalls in the issue queues", Section 5.3),
* per-cluster dispatch counts, steering stalls, cache behaviour and branch
  statistics for the ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class SimulationMetrics:
    """Counters produced by one run of :class:`~repro.cluster.processor.ClusteredProcessor`."""

    num_clusters: int
    cycles: int = 0
    committed_uops: int = 0
    dispatched_uops: int = 0
    copies_generated: int = 0
    steering_stalls: int = 0
    rob_stalls: int = 0
    lsq_stalls: int = 0
    mispredict_stalls: int = 0
    branches: int = 0
    mispredictions: int = 0
    #: Dispatched µops per cluster (workload distribution).
    cluster_dispatch: List[int] = field(default_factory=list)
    #: Issue-queue allocation stall events per cluster (the balance metric).
    allocation_stalls: List[int] = field(default_factory=list)
    #: Copy µops inserted per producing cluster.
    cluster_copies: List[int] = field(default_factory=list)
    #: Cache summary (filled in at the end of the run).
    cache: Dict[str, float] = field(default_factory=dict)
    #: Number of virtual-to-physical remaps performed (VC policy only).
    vc_remaps: int = 0

    def __post_init__(self) -> None:
        if not self.cluster_dispatch:
            self.cluster_dispatch = [0] * self.num_clusters
        if not self.allocation_stalls:
            self.allocation_stalls = [0] * self.num_clusters
        if not self.cluster_copies:
            self.cluster_copies = [0] * self.num_clusters

    # -- derived quantities --------------------------------------------------------
    @property
    def ipc(self) -> float:
        """Committed µops per cycle (copies excluded, as they are overhead)."""
        return self.committed_uops / self.cycles if self.cycles else 0.0

    @property
    def total_allocation_stalls(self) -> int:
        """Total issue-queue allocation stalls across clusters."""
        return sum(self.allocation_stalls)

    @property
    def balance_stalls(self) -> int:
        """Dispatch stalls attributable to back-end (per-cluster) resource pressure.

        This is the paper's workload-balance metric: allocation stalls in the
        issue queues.  Steering stalls are included because the
        occupancy-aware hardware policy *chooses* to stall instead of
        allocating into a full queue -- those cycles are allocation stalls in
        all but name, and excluding them would make OP look perfectly
        balanced by construction.
        """
        return self.total_allocation_stalls + self.steering_stalls

    @property
    def copies_per_committed_uop(self) -> float:
        """Copy overhead normalised by useful work."""
        return self.copies_generated / self.committed_uops if self.committed_uops else 0.0

    @property
    def workload_imbalance(self) -> float:
        """Relative deviation of the busiest cluster from the mean dispatch load."""
        if not self.cluster_dispatch or sum(self.cluster_dispatch) == 0:
            return 0.0
        mean = sum(self.cluster_dispatch) / len(self.cluster_dispatch)
        return (max(self.cluster_dispatch) - mean) / mean if mean else 0.0

    @property
    def misprediction_rate(self) -> float:
        """Fraction of branches flagged as mispredicted."""
        return self.mispredictions / self.branches if self.branches else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flatten the metrics into a report-friendly dictionary."""
        out: Dict[str, float] = {
            "cycles": float(self.cycles),
            "committed_uops": float(self.committed_uops),
            "ipc": self.ipc,
            "copies_generated": float(self.copies_generated),
            "copies_per_committed_uop": self.copies_per_committed_uop,
            "steering_stalls": float(self.steering_stalls),
            "rob_stalls": float(self.rob_stalls),
            "lsq_stalls": float(self.lsq_stalls),
            "mispredict_stalls": float(self.mispredict_stalls),
            "total_allocation_stalls": float(self.total_allocation_stalls),
            "balance_stalls": float(self.balance_stalls),
            "workload_imbalance": self.workload_imbalance,
            "branches": float(self.branches),
            "mispredictions": float(self.mispredictions),
            "vc_remaps": float(self.vc_remaps),
        }
        for cluster, value in enumerate(self.cluster_dispatch):
            out[f"dispatch_cluster_{cluster}"] = float(value)
        for cluster, value in enumerate(self.allocation_stalls):
            out[f"alloc_stalls_cluster_{cluster}"] = float(value)
        out.update(self.cache)
        return out
