"""Per-simulation statistics.

:class:`SimulationMetrics` gathers everything the paper's evaluation needs:

* **cycles / IPC** for the slowdown comparisons of Figures 5 and 7,
* **copy µops generated** for the copy-reduction scatter plots of Figure 6,
* **per-cluster issue-queue allocation stalls**, the paper's workload-balance
  metric ("workload balance improvement is computed as the total reduction of
  the allocation stalls in the issue queues", Section 5.3),
* per-cluster dispatch counts, steering stalls, cache behaviour and branch
  statistics for the ablation studies.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List


@dataclass
class SimulationMetrics:
    """Counters produced by one run of :class:`~repro.cluster.processor.ClusteredProcessor`."""

    num_clusters: int
    cycles: int = 0
    committed_uops: int = 0
    dispatched_uops: int = 0
    copies_generated: int = 0
    steering_stalls: int = 0
    rob_stalls: int = 0
    lsq_stalls: int = 0
    mispredict_stalls: int = 0
    branches: int = 0
    mispredictions: int = 0
    #: Dispatched µops per cluster (workload distribution).
    cluster_dispatch: List[int] = field(default_factory=list)
    #: Issue-queue allocation stall events per cluster (the balance metric).
    allocation_stalls: List[int] = field(default_factory=list)
    #: Copy µops inserted per producing cluster.
    cluster_copies: List[int] = field(default_factory=list)
    #: Cache summary (filled in at the end of the run).
    cache: Dict[str, float] = field(default_factory=dict)
    #: Number of virtual-to-physical remaps performed (VC policy only).
    vc_remaps: int = 0

    def __post_init__(self) -> None:
        if not self.cluster_dispatch:
            self.cluster_dispatch = [0] * self.num_clusters
        if not self.allocation_stalls:
            self.allocation_stalls = [0] * self.num_clusters
        if not self.cluster_copies:
            self.cluster_copies = [0] * self.num_clusters

    # -- derived quantities --------------------------------------------------------
    @property
    def ipc(self) -> float:
        """Committed µops per cycle (copies excluded, as they are overhead)."""
        return self.committed_uops / self.cycles if self.cycles else 0.0

    @property
    def total_allocation_stalls(self) -> int:
        """Total issue-queue allocation stalls across clusters."""
        return sum(self.allocation_stalls)

    @property
    def balance_stalls(self) -> int:
        """Dispatch stalls attributable to back-end (per-cluster) resource pressure.

        This is the paper's workload-balance metric: allocation stalls in the
        issue queues.  Steering stalls are included because the
        occupancy-aware hardware policy *chooses* to stall instead of
        allocating into a full queue -- those cycles are allocation stalls in
        all but name, and excluding them would make OP look perfectly
        balanced by construction.
        """
        return self.total_allocation_stalls + self.steering_stalls

    @property
    def copies_per_committed_uop(self) -> float:
        """Copy overhead normalised by useful work."""
        return self.copies_generated / self.committed_uops if self.committed_uops else 0.0

    @property
    def workload_imbalance(self) -> float:
        """Relative deviation of the busiest cluster from the mean dispatch load."""
        if not self.cluster_dispatch or sum(self.cluster_dispatch) == 0:
            return 0.0
        mean = sum(self.cluster_dispatch) / len(self.cluster_dispatch)
        return (max(self.cluster_dispatch) - mean) / mean if mean else 0.0

    @property
    def misprediction_rate(self) -> float:
        """Fraction of branches flagged as mispredicted."""
        return self.mispredictions / self.branches if self.branches else 0.0

    # -- serialisation -------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Lossless, JSON-compatible dump of every counter.

        Unlike :meth:`as_dict` (a flattened, report-friendly view with derived
        quantities) this preserves the exact field values -- integer counters
        stay integers -- so ``from_dict(to_dict(m)) == m`` holds bit-for-bit
        even after a JSON round trip.  The experiment engine relies on this
        for cross-process result transport and on-disk caching.
        """
        # asdict() covers every dataclass field (deep-copying the lists and
        # the cache dict), so new counters can never be forgotten here.
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationMetrics":
        """Rebuild a :class:`SimulationMetrics` from a :meth:`to_dict` dump.

        Unknown *and* missing keys are rejected so that stale cache entries
        written by an incompatible schema fail loudly instead of
        deserialising garbage (missing counters would otherwise silently
        become zeros).
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SimulationMetrics fields: {sorted(unknown)}")
        missing = known - set(data)
        if missing:
            raise ValueError(f"missing SimulationMetrics fields: {sorted(missing)}")
        kwargs = dict(data)
        for list_field in ("cluster_dispatch", "allocation_stalls", "cluster_copies"):
            if list_field in kwargs:
                kwargs[list_field] = list(kwargs[list_field])
        if "cache" in kwargs:
            kwargs["cache"] = dict(kwargs["cache"])
        return cls(**kwargs)

    def as_dict(self) -> Dict[str, float]:
        """Flatten the metrics into a report-friendly dictionary."""
        out: Dict[str, float] = {
            "cycles": float(self.cycles),
            "committed_uops": float(self.committed_uops),
            "ipc": self.ipc,
            "copies_generated": float(self.copies_generated),
            "copies_per_committed_uop": self.copies_per_committed_uop,
            "steering_stalls": float(self.steering_stalls),
            "rob_stalls": float(self.rob_stalls),
            "lsq_stalls": float(self.lsq_stalls),
            "mispredict_stalls": float(self.mispredict_stalls),
            "total_allocation_stalls": float(self.total_allocation_stalls),
            "balance_stalls": float(self.balance_stalls),
            "workload_imbalance": self.workload_imbalance,
            "branches": float(self.branches),
            "mispredictions": float(self.mispredictions),
            "vc_remaps": float(self.vc_remaps),
        }
        for cluster, value in enumerate(self.cluster_dispatch):
            out[f"dispatch_cluster_{cluster}"] = float(value)
        for cluster, value in enumerate(self.allocation_stalls):
            out[f"alloc_stalls_cluster_{cluster}"] = float(value)
        out.update(self.cache)
        return out
