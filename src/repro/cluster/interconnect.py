"""Point-to-point inter-cluster interconnect.

Clusters communicate through dedicated bidirectional point-to-point links
(Table 2): a copy µop executed in the producing cluster pushes the value over
the link to the consuming cluster with a 1-cycle latency and a bandwidth of
one copy per cycle per link and direction.  :class:`Interconnect` tracks when
each directed link is next free and computes arrival times accordingly.
"""

from __future__ import annotations

from typing import Dict, Tuple


class Interconnect:
    """Bandwidth and latency tracking of the directed cluster-to-cluster links.

    Parameters
    ----------
    num_clusters:
        Number of clusters (links exist between every ordered pair).
    link_latency:
        Transfer latency in cycles.
    copies_per_cycle:
        Bandwidth of each directed link (copies per cycle).
    """

    def __init__(self, num_clusters: int, link_latency: int = 1, copies_per_cycle: int = 1) -> None:
        if num_clusters < 1:
            raise ValueError("num_clusters must be positive")
        if link_latency < 0:
            raise ValueError("link_latency must be non-negative")
        if copies_per_cycle < 1:
            raise ValueError("copies_per_cycle must be positive")
        self.num_clusters = int(num_clusters)
        self.link_latency = int(link_latency)
        self.copies_per_cycle = int(copies_per_cycle)
        #: Next cycle at which each directed link can start a new transfer.
        self._next_free: Dict[Tuple[int, int], int] = {}
        #: Transfers already started in the ``_next_free`` cycle of each link
        #: (only used when the per-cycle bandwidth is greater than one).
        self._started_in_cycle: Dict[Tuple[int, int], int] = {}
        #: Transfers started per directed link (statistics).
        self.transfers: Dict[Tuple[int, int], int] = {}

    def _check_pair(self, src: int, dst: int) -> Tuple[int, int]:
        if not (0 <= src < self.num_clusters and 0 <= dst < self.num_clusters):
            raise ValueError(f"link ({src}, {dst}) out of range for {self.num_clusters} clusters")
        if src == dst:
            raise ValueError("intra-cluster transfers do not use the interconnect")
        return (src, dst)

    def schedule_transfer(self, src: int, dst: int, ready_cycle: int) -> int:
        """Reserve the ``src -> dst`` link for a value ready at ``ready_cycle``.

        Returns the cycle at which the value arrives at ``dst``.
        """
        key = self._check_pair(src, dst)
        start = max(ready_cycle, self._next_free.get(key, 0))
        if start > self._next_free.get(key, 0):
            # The link was idle until `start`; reset the per-cycle counter.
            self._started_in_cycle[key] = 0
        started = self._started_in_cycle.get(key, 0) + 1
        if started >= self.copies_per_cycle:
            self._next_free[key] = start + 1
            self._started_in_cycle[key] = 0
        else:
            self._next_free[key] = start
            self._started_in_cycle[key] = started
        self.transfers[key] = self.transfers.get(key, 0) + 1
        return start + self.link_latency

    def total_transfers(self) -> int:
        """Total number of copies that crossed the interconnect."""
        return sum(self.transfers.values())

    def reset(self) -> None:
        """Clear link reservations and statistics."""
        self._next_free.clear()
        self._started_in_cycle.clear()
        self.transfers.clear()
