"""``python -m repro``: alias of ``python -m repro.cli``."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
