"""Command-line interface for the reproduction.

Exposes the experiment drivers without writing any Python::

    python -m repro.cli table1
    python -m repro.cli quickstart --benchmark 178.galgel --trace-length 4000
    python -m repro.cli figure5 --benchmarks 164.gzip-1 181.mcf --trace-length 2500
    python -m repro.cli figure6 --benchmarks 164.gzip-1 178.galgel
    python -m repro.cli figure7 --trace-length 2000
    python -m repro.cli list-benchmarks --suite fp

Every command prints the same plain-text tables the benchmark harness emits.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro import quick_comparison
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import FIGURE6_COMPARISONS, run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.report import format_key_values, format_table
from repro.experiments.runner import ExperimentSettings
from repro.experiments.table1 import run_table1
from repro.workloads.spec2000 import all_trace_names


def _settings(args: argparse.Namespace, num_clusters: int, num_virtual_clusters: int) -> ExperimentSettings:
    return ExperimentSettings(
        num_clusters=num_clusters,
        num_virtual_clusters=num_virtual_clusters,
        trace_length=args.trace_length,
        max_phases=args.phases,
    )


def _benchmarks(args: argparse.Namespace) -> Optional[List[str]]:
    if getattr(args, "benchmarks", None):
        unknown = [name for name in args.benchmarks if name not in all_trace_names("all")]
        if unknown:
            raise SystemExit(f"unknown benchmarks: {unknown}")
        return list(args.benchmarks)
    return None


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-length", type=int, default=2500, help="dynamic µops per simulation point"
    )
    parser.add_argument(
        "--phases", type=int, default=1, help="PinPoints phases per benchmark (max 10)"
    )
    parser.add_argument(
        "--benchmarks", nargs="*", default=None, help="trace names (default: the full suite)"
    )


def cmd_list_benchmarks(args: argparse.Namespace) -> str:
    """``list-benchmarks``: print the available trace names."""
    names = all_trace_names(args.suite)
    return "\n".join(names) + "\n"


def cmd_table1(args: argparse.Namespace) -> str:
    """``table1``: steering-unit complexity comparison."""
    rows = run_table1(num_virtual_clusters=args.virtual_clusters)
    return format_table(rows, title="Table 1 -- steering-unit complexity")


def cmd_quickstart(args: argparse.Namespace) -> str:
    """``quickstart``: all five configurations on one benchmark."""
    results = quick_comparison(args.benchmark, trace_length=args.trace_length)
    baseline = results["OP"].cycles
    rows = []
    for name in ("OP", "one-cluster", "OB", "RHOP", "VC"):
        metrics = results[name]
        rows.append(
            {
                "configuration": name,
                "cycles": metrics.cycles,
                "slowdown vs OP (%)": 100.0 * (metrics.cycles / baseline - 1.0),
                "IPC": metrics.ipc,
                "copies": metrics.copies_generated,
                "balance stalls": metrics.balance_stalls,
            }
        )
    return format_table(rows, title=f"{args.benchmark}: Table 3 configurations")


def cmd_figure5(args: argparse.Namespace) -> str:
    """``figure5``: 2-cluster slowdown versus OP."""
    result = run_figure5(_settings(args, 2, 2), benchmarks=_benchmarks(args))
    out = [
        format_table(result.benchmark_rows("int"), title="Figure 5(a) -- SPECint slowdown vs OP (%)"),
        format_table(result.benchmark_rows("fp"), title="Figure 5(b) -- SPECfp slowdown vs OP (%)"),
        format_table(result.averages_table(), title="Figure 5(c) -- average slowdown vs OP (%)"),
    ]
    return "\n".join(out)


def cmd_figure6(args: argparse.Namespace) -> str:
    """``figure6``: copy / balance trade-off summaries."""
    result = run_figure6(_settings(args, 2, 2), benchmarks=_benchmarks(args))
    out = []
    for comparison in FIGURE6_COMPARISONS:
        out.append(
            format_key_values(result.summary(comparison), title=f"Figure 6 -- VC vs {comparison}")
        )
    return "\n".join(out)


def cmd_figure7(args: argparse.Namespace) -> str:
    """``figure7``: 4-cluster scalability study."""
    result = run_figure7(_settings(args, 4, 4), benchmarks=_benchmarks(args))
    out = [
        format_table(result.averages_table(), title="Figure 7(c) -- 4-cluster average slowdown vs OP (%)"),
        f"VC(4->4) copies relative to VC(2->4): {result.copy_overhead_4to4_vs_2to4():+.1f} % (paper: +28 %)\n",
    ]
    return "\n".join(out)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the virtual-cluster hybrid steering paper (IPPS 2008).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list-benchmarks", help="list available trace names")
    list_parser.add_argument("--suite", choices=("int", "fp", "all"), default="all")
    list_parser.set_defaults(handler=cmd_list_benchmarks)

    table1_parser = subparsers.add_parser("table1", help="steering-unit complexity (Table 1)")
    table1_parser.add_argument("--virtual-clusters", type=int, default=2)
    table1_parser.set_defaults(handler=cmd_table1)

    quick_parser = subparsers.add_parser("quickstart", help="five configurations on one benchmark")
    quick_parser.add_argument("--benchmark", default="164.gzip-1")
    quick_parser.add_argument("--trace-length", type=int, default=3000)
    quick_parser.set_defaults(handler=cmd_quickstart)

    for name, handler, help_text in (
        ("figure5", cmd_figure5, "2-cluster slowdown vs OP (Figure 5)"),
        ("figure6", cmd_figure6, "copy/balance trade-off (Figure 6)"),
        ("figure7", cmd_figure7, "4-cluster scalability (Figure 7)"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_common_options(sub)
        sub.set_defaults(handler=handler)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: parse arguments, run the selected command, print its report."""
    parser = build_parser()
    args = parser.parse_args(argv)
    print(args.handler(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    raise SystemExit(main())
