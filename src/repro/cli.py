"""Command-line interface for the reproduction.

Exposes the experiment drivers without writing any Python::

    python -m repro run figure5 --jobs 4
    python -m repro run my_scenario.json --benchmarks 164.gzip-1 181.mcf
    python -m repro scenarios list
    python -m repro list-configs
    python -m repro quickstart --benchmark 178.galgel --trace-length 4000
    python -m repro list-benchmarks --suite fp
    python -m repro analyze --strict src

Every experiment is a *scenario*: a declarative, JSON-serializable
description of machine, workloads, configurations and sweep axes (see
:mod:`repro.scenarios`).  ``run`` executes either a built-in named scenario
(``figure5``, ``table1``, ``sweep-link-latency``...) or a ``.json`` scenario
file; ``scenarios list`` shows the built-ins, ``list-configs`` the registered
policies, partitioners and machine presets custom scenarios can draw from.

The pre-scenario commands (``figure5``, ``figure6``, ``figure7``, ``table1``,
``ablations``) remain as thin shims over the equivalent built-in scenarios
and emit a :class:`DeprecationWarning`; each prints exactly what its ``run
<scenario>`` form prints (for the figures and Table 1 that is also
byte-identical to the pre-scenario output; the ablations sweep labels its VC
rows by the value column instead of ``VC(n)``).

Every command prints the same plain-text tables the benchmark harness emits.

Running experiments in parallel
-------------------------------
Every experiment command routes its simulations through the experiment
engine (:mod:`repro.engine`) and accepts three knobs:

``--jobs N``
    Simulate the ``benchmark x phase x configuration`` job matrix on ``N``
    worker processes (default 1 = serial, in-process).  Results are
    bit-identical for every ``N`` -- traces are regenerated from their seeds
    inside each worker, the simulator is deterministic and the weighted
    reassembly happens in a fixed order in the parent process -- so
    ``run figure5 --jobs 4`` prints exactly the same tables as ``--jobs 1``.

``--cache-dir PATH``
    On-disk result cache (default ``.repro_cache``, or ``$REPRO_CACHE_DIR``,
    resolved when the command runs).  Repeated figure runs and overlapping
    sweeps skip already-simulated points.  Entries are keyed by the full
    simulation *inputs* (profile, phase, configuration identity, trace
    length, the resolved machine configuration and the register space), so
    for unchanged code a hit is exactly the metrics a fresh run would
    produce.  Keys cannot see edits to simulator *logic*: after such a
    change, bump :data:`repro.engine.job.CACHE_SCHEMA_VERSION` or pass
    ``--no-cache``.  Every cached report ends with an ``[engine] ...
    hits/misses`` footer so replayed results are always visible.

``--no-cache``
    Disable the cache for this invocation (simulate everything afresh).

``--trace-dir PATH`` / ``--no-trace-artifacts``
    Compiled phase traces are persisted as content-addressed ``.npz``
    artifacts (default ``<cache dir>/traces``) so parallel workers and
    repeated runs *load* traces instead of regenerating them.  Artifacts are
    keyed by the trace inputs only (profile, phase, length, register space),
    so every steering configuration of a phase -- and every sweep touching
    the same phases -- shares one artifact.  ``--no-cache`` also disables
    artifacts unless an explicit ``--trace-dir`` is given;
    ``--no-trace-artifacts`` turns them off on their own.

``--batch`` / ``--no-batch``
    Batched scheduling (the default): jobs are grouped into one batch per
    distinct phase trace, the result cache is consulted per batch (fully
    cached batches skip the workers entirely), and each remaining batch runs
    all its configurations against a single in-memory compiled trace on one
    reused processor.  Bit-identical to ``--no-batch`` (per-job scheduling);
    reports end with a ``[batch] traces=... configs=...`` footer.

``--shared-mem`` / ``--no-shared-mem``
    Shared-memory trace residency for parallel batched runs (on by default
    where the platform supports it): each distinct compiled trace is
    published once into a ``multiprocessing.shared_memory`` segment and
    workers attach by name as zero-copy views, instead of every worker
    acquiring the trace on its own.  Segments are unlinked when the run's
    engine shuts down; reports end with a ``[shm] segments=... bytes=...``
    footer when segments were used.  Bit-identical to ``--no-shared-mem``
    (the pickle path).

``--adaptive`` / ``--no-adaptive``
    Early stopping for the statistical scenarios (``replicated`` / ``race``
    / ``crossover`` report kinds, see :mod:`repro.scenarios.adaptive`).
    The default follows the scenario's declared stopping rule;
    ``--no-adaptive`` runs the exhaustive grid and *replays* the stopping
    decisions, so the report tables are byte-identical either way -- only
    the number of simulation runs paid for differs.  Adaptive runs end
    with an ``[adaptive] planned=... executed=...`` footer.  Scenarios
    without a stopping rule ignore both flags.
"""

from __future__ import annotations

import argparse
import io
import os
import sys
import warnings
from typing import List, Optional, Sequence

from repro.analysis.framework import run as run_analysis

from repro.engine import AUTO_TRACE_ROOT, ParallelRunner, ResultCache
from repro.experiments.configs import TABLE3_CONFIGURATIONS
from repro.scenarios.builtin import builtin_scenario
from repro.scenarios.registry import MACHINES, PARTITIONERS, POLICIES, SCENARIOS
from repro.scenarios.runner import REPORT_KINDS, run_scenario
from repro.scenarios.spec import ScenarioSpec, scenario_overrides
from repro.workloads.spec2000 import all_trace_names

#: Deprecated command -> built-in scenario it now shims over.
DEPRECATED_COMMANDS = {
    "figure5": "figure5",
    "figure6": "figure6",
    "figure7": "figure7",
    "table1": "table1",
}

#: Deprecated ``ablations --sweep`` choice -> built-in sweep scenario.
ABLATION_SCENARIOS = {
    "virtual-clusters": "sweep-virtual-clusters",
    "link-latency": "sweep-link-latency",
    "region-size": "sweep-region-size",
    "issue-queue-size": "sweep-issue-queue-size",
}


def resolve_cache_dir() -> str:
    """The cache directory used when ``--cache-dir`` is not passed.

    Read from ``$REPRO_CACHE_DIR`` at *invocation* time (not import time),
    so setting the variable after ``import repro.cli`` is honoured.
    """
    return os.environ.get("REPRO_CACHE_DIR", ".repro_cache")


def _cache_dir(args: argparse.Namespace) -> Optional[str]:
    """The cache directory selected by ``--cache-dir`` / ``--no-cache``."""
    if args.no_cache:
        return None
    return args.cache_dir if args.cache_dir is not None else resolve_cache_dir()


def _trace_root(args: argparse.Namespace):
    """The trace-artifact directory selected by the trace/cache options."""
    if getattr(args, "no_trace_artifacts", False):
        return None
    if getattr(args, "trace_dir", None) is not None:
        return args.trace_dir
    return AUTO_TRACE_ROOT  # follow the result cache (<cache dir>/traces)


def _engine(args: argparse.Namespace) -> ParallelRunner:
    """The engine configured by the ``--jobs`` / cache / trace / batch options."""
    cache_dir = _cache_dir(args)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return ParallelRunner(
        max_workers=args.jobs,
        cache=cache,
        trace_root=_trace_root(args),
        batching=getattr(args, "batch", True),
        shared_memory=getattr(args, "shared_mem", None),
    )


def _engine_footer(engine: ParallelRunner) -> str:
    """One-line cache/parallelism summary appended to every cached report.

    Makes cache hits visible: a stale cache (e.g. after changing simulator
    code without bumping the engine's ``CACHE_SCHEMA_VERSION``) would
    otherwise silently reproduce old numbers.  Commands that never consult
    the cache (e.g. ``run table1``, which simulates nothing) get no footer.
    """
    footer = ""
    if engine.cache is not None:
        stats = engine.cache.stats()
        if stats["hits"] + stats["misses"] + stats["stores"] > 0:
            footer += (
                f"[engine] jobs={engine.max_workers}  cache={engine.cache.root}  "
                f"hits={stats['hits']} misses={stats['misses']} stored={stats['stores']}  "
                "(cached results skip simulation; use --no-cache to force fresh runs)\n"
            )
    store = engine.trace_store
    if store is not None:
        # Aggregated across processes: the runner's own (inline) store
        # counters plus the per-task deltas reported back by pool workers,
        # so parallel runs account their trace traffic exactly.
        trace_stats = engine.trace_stats()
        if trace_stats["hits"] + trace_stats["misses"] + trace_stats["stores"] > 0:
            footer += (
                f"[traces] dir={store.root}  loaded={trace_stats['hits']} "
                f"generated={trace_stats['misses']} stored={trace_stats['stores']}  "
                "(compiled traces are shared across configurations and runs)\n"
            )
    if engine.batching:
        batch_stats = engine.batch_stats
        if batch_stats["jobs"] > 0:
            # The counters are kept consistent by the engine: configs ==
            # executed + cached + cancelled in every scheduling combination.
            # The cancelled field appears only when something was cancelled,
            # so non-adaptive footers are unchanged.
            cancelled = (
                f"cancelled={batch_stats['cancelled_jobs']} "
                if batch_stats["cancelled_jobs"] > 0
                else ""
            )
            footer += (
                f"[batch] traces={batch_stats['batches']} configs={batch_stats['jobs']} "
                f"executed={batch_stats['executed_jobs']} cached={batch_stats['cached_jobs']} "
                f"max-width={batch_stats['max_width']} "
                f"fully-cached-batches={batch_stats['cached_batches']} {cancelled} "
                "(each batch runs all configurations of one trace; "
                "--no-batch restores per-job scheduling)\n"
            )
    shm_stats = engine.shm_stats()
    if shm_stats["published"] + shm_stats["reused"] > 0:
        footer += (
            f"[shm] segments={shm_stats['segments']} bytes={shm_stats['bytes']} "
            f"published={shm_stats['published']} reused={shm_stats['reused']}  "
            "(compiled traces resident in shared memory; workers attach "
            "zero-copy; --no-shared-mem restores the pickle path)\n"
        )
    adaptive = engine.adaptive_stats
    if adaptive["planned"] > 0:
        # Recorded only by enabled stopping rules, so --no-adaptive runs
        # (and every non-statistical scenario) keep their footers unchanged.
        footer += (
            f"[adaptive] planned={adaptive['planned']} "
            f"executed={adaptive['executed']} "
            f"saved={adaptive['planned'] - adaptive['executed']} "
            f"resolved={adaptive['stop_resolved']} "
            f"retired={adaptive['stop_retired']} tied={adaptive['stop_tied']} "
            f"won={adaptive['stop_won']} capped={adaptive['stop_capped']} "
            f"bisected={adaptive['stop_bisected']}  "
            "(stopping rules retire runs once the report is resolved; "
            "--no-adaptive pays for the full grid, same tables)\n"
        )
    return footer


def _benchmarks(args: argparse.Namespace) -> Optional[List[str]]:
    if getattr(args, "benchmarks", None):
        known = set(all_trace_names("all"))
        unknown = [name for name in args.benchmarks if name not in known]
        if unknown:
            raise SystemExit(f"unknown benchmarks: {unknown}")
        return list(args.benchmarks)
    return None


def _positive_int(text: str) -> int:
    """argparse type for ``--jobs``: a clean error instead of a traceback."""
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from exc
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """``--jobs`` / ``--cache-dir`` / ``--no-cache``, shared by every experiment command."""
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for the simulation job matrix "
        "(default 1 = serial; results are bit-identical for any N)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="on-disk result cache; repeated runs and overlapping sweeps "
        "skip already-simulated points (default '.repro_cache', "
        "overridable via $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache for this invocation",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="PATH",
        help="directory for shared compiled-trace artifacts "
        "(default '<cache dir>/traces'; artifacts are keyed by the trace "
        "inputs, so all configurations of a phase share one file)",
    )
    parser.add_argument(
        "--no-trace-artifacts",
        action="store_true",
        help="regenerate traces from their seeds instead of loading artifacts",
    )
    parser.add_argument(
        "--batch",
        dest="batch",
        action="store_true",
        default=True,
        help="group jobs into per-trace batches so every configuration of a "
        "phase shares one in-memory compiled trace (default; bit-identical "
        "to per-job scheduling)",
    )
    parser.add_argument(
        "--no-batch",
        dest="batch",
        action="store_false",
        help="schedule jobs one by one instead of per-trace batches",
    )
    parser.add_argument(
        "--shared-mem",
        dest="shared_mem",
        action="store_true",
        default=None,
        help="publish each compiled trace once into shared memory so parallel "
        "workers attach zero-copy (default: on where the platform supports "
        "it; bit-identical either way)",
    )
    parser.add_argument(
        "--no-shared-mem",
        dest="shared_mem",
        action="store_false",
        help="ship traces over the classic pickle path instead of shared memory",
    )
    parser.add_argument(
        "--adaptive",
        dest="adaptive",
        action="store_true",
        default=None,
        help="force early stopping on for statistical scenarios (default: "
        "follow the scenario's declared stopping rule)",
    )
    parser.add_argument(
        "--no-adaptive",
        dest="adaptive",
        action="store_false",
        help="run the exhaustive grid and replay the stopping decisions "
        "(byte-identical tables, every run paid for)",
    )


def _add_common_options(
    parser: argparse.ArgumentParser, trace_length_default: Optional[int] = 2500
) -> None:
    parser.add_argument(
        "--trace-length",
        type=int,
        default=trace_length_default,
        help="dynamic µops per simulation point",
    )
    parser.add_argument(
        "--phases",
        type=int,
        default=1 if trace_length_default is not None else None,
        help="PinPoints phases per benchmark (max 10)",
    )
    parser.add_argument(
        "--benchmarks", nargs="*", default=None, help="trace names (default: the scenario's set)"
    )
    _add_engine_options(parser)


def _warn_deprecated(command: str, replacement: str) -> None:
    message = (
        f"'repro {command}' is deprecated; use 'repro {replacement}' "
        "(same tables, declarative scenario underneath)"
    )
    warnings.warn(message, DeprecationWarning, stacklevel=3)
    # The default warning filter hides DeprecationWarning outside __main__,
    # so the CLI user would never see it; say it on stderr as well.
    print(f"warning: {message}", file=sys.stderr)


def _execute_spec(spec: ScenarioSpec, args: argparse.Namespace) -> str:
    """Validate ``spec``, run it on the args-configured engine, append the footer.

    User errors -- typo'd registry names, a figure kind on the wrong machine,
    sweep axes on a non-sweep kind, bad override fields -- exit cleanly
    instead of surfacing as raw tracebacks.
    """
    try:
        spec.validate()
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"invalid scenario {spec.name!r}: {exc}")
    engine = _engine(args)
    try:
        report = run_scenario(spec, engine, adaptive=getattr(args, "adaptive", None))
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"cannot run scenario {spec.name!r}: {exc}")
    finally:
        # Read the footer before releasing the substrate: shutdown unlinks
        # the resident shared-memory segments (so nothing outlives the
        # command), while the cumulative footer counters survive it.
        footer = _engine_footer(engine)
        engine.shutdown()
    return report + footer


def _run_spec(spec: ScenarioSpec, args: argparse.Namespace) -> str:
    """Apply the common CLI overrides to ``spec``, then execute it."""
    spec = scenario_overrides(
        spec,
        benchmarks=_benchmarks(args),
        trace_length=getattr(args, "trace_length", None),
        max_phases=getattr(args, "phases", None),
    )
    return _execute_spec(spec, args)


def _load_scenario(ref: str) -> ScenarioSpec:
    """Resolve ``run``'s positional: a ``.json`` file path or a built-in name.

    Explicit paths (``.json`` suffix or a path separator) always mean a file;
    otherwise built-in names win, so a stray ``figure5`` file or directory in
    the working directory cannot shadow the built-in scenario.
    """
    explicit_path = ref.endswith(".json") or os.path.sep in ref
    if not explicit_path and ref in SCENARIOS:
        return builtin_scenario(ref)
    if explicit_path or os.path.exists(ref):
        if not os.path.exists(ref):
            raise SystemExit(f"scenario file not found: {ref}")
        try:
            return ScenarioSpec.from_file(ref)
        except (ValueError, KeyError, TypeError, OSError) as exc:
            raise SystemExit(f"invalid scenario file {ref}: {exc}")
    raise SystemExit(
        f"unknown scenario {ref!r}; built-ins: {', '.join(SCENARIOS.names())} "
        "(or pass a .json scenario file)"
    )


# -- commands -------------------------------------------------------------------------


def cmd_run(args: argparse.Namespace) -> str:
    """``run``: execute a built-in scenario or a JSON scenario file."""
    return _run_spec(_load_scenario(args.scenario), args)


def cmd_scenarios(args: argparse.Namespace) -> str:
    """``scenarios list``: the built-in named scenarios."""
    lines = []
    for name in SCENARIOS.names():
        spec = builtin_scenario(name)
        lines.append(f"{name:<26} [{spec.report}]  {spec.description}")
    return "\n".join(lines) + "\n"


def cmd_list_configs(args: argparse.Namespace) -> str:
    """``list-configs``: registered configurations, policies, partitioners, machines."""
    sections = [
        (
            "Table 3 configurations",
            [f"{c.name:<14} {c.description}" for c in TABLE3_CONFIGURATIONS.values()],
        ),
        ("steering policies", POLICIES.names()),
        ("partitioners", PARTITIONERS.names()),
        ("machine presets", MACHINES.names()),
        ("report kinds", REPORT_KINDS.names()),
    ]
    lines = []
    for title, entries in sections:
        lines.append(f"{title}:")
        lines.extend(f"  {entry}" for entry in entries)
        lines.append("")
    return "\n".join(lines)


def cmd_list_benchmarks(args: argparse.Namespace) -> str:
    """``list-benchmarks``: print the available trace names."""
    names = all_trace_names(args.suite)
    return "\n".join(names) + "\n"


def cmd_quickstart(args: argparse.Namespace) -> str:
    """``quickstart``: the ``quickstart`` scenario with ``--benchmark`` applied."""
    spec = scenario_overrides(
        builtin_scenario("quickstart"),
        benchmarks=[args.benchmark],
        trace_length=args.trace_length,
    )
    return _execute_spec(spec, args)


def cmd_table1(args: argparse.Namespace) -> str:
    """``table1``: deprecated shim over the ``table1`` scenario."""
    _warn_deprecated("table1", "run table1")
    spec = builtin_scenario("table1")
    if args.virtual_clusters != spec.num_virtual_clusters:
        from dataclasses import replace

        spec = replace(spec, num_virtual_clusters=args.virtual_clusters)
    return run_scenario(spec)


def cmd_figure(args: argparse.Namespace) -> str:
    """``figure5``/``figure6``/``figure7``: deprecated shims over the scenarios."""
    scenario = DEPRECATED_COMMANDS[args.command]
    _warn_deprecated(args.command, f"run {scenario}")
    return _run_spec(builtin_scenario(scenario), args)


def cmd_analyze(args: argparse.Namespace) -> str:
    """``analyze``: the static-analysis passes (:mod:`repro.analysis.framework`).

    ``--pass`` selects detlint / parlint / lifelint / all.  Exit codes follow
    the framework (0 clean, 1 fresh findings, 2 scan errors); the report ends
    with one ``[<pass>] ...`` footer per selected pass.
    """
    argv: List[str] = list(args.paths)
    argv.extend(["--pass", args.pass_name])
    if args.strict:
        argv.append("--strict")
    if args.baseline:
        argv.extend(["--baseline", args.baseline])
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.prune_baseline:
        argv.append("--prune-baseline")
    if args.list_rules:
        argv.append("--list-rules")
    argv.extend(["--format", args.format])
    buffer = io.StringIO()
    args.exit_code = run_analysis(argv, out=buffer)
    return buffer.getvalue().rstrip("\n")


def cmd_ablations(args: argparse.Namespace) -> str:
    """``ablations``: deprecated shim over the built-in sweep scenarios."""
    scenario = ABLATION_SCENARIOS[args.sweep]
    _warn_deprecated(f"ablations --sweep {args.sweep}", f"run {scenario}")
    return _run_spec(builtin_scenario(scenario), args)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the virtual-cluster hybrid steering paper (IPPS 2008).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run a built-in scenario or a .json scenario file"
    )
    run_parser.add_argument(
        "scenario",
        help="built-in scenario name (see 'scenarios list') or path to a scenario file",
    )
    _add_common_options(run_parser, trace_length_default=None)
    run_parser.set_defaults(handler=cmd_run)

    scenarios_parser = subparsers.add_parser("scenarios", help="inspect built-in scenarios")
    scenarios_parser.add_argument("action", nargs="?", choices=("list",), default="list")
    scenarios_parser.set_defaults(handler=cmd_scenarios)

    configs_parser = subparsers.add_parser(
        "list-configs", help="list registered configurations, policies, partitioners, machines"
    )
    configs_parser.set_defaults(handler=cmd_list_configs)

    list_parser = subparsers.add_parser("list-benchmarks", help="list available trace names")
    list_parser.add_argument("--suite", choices=("int", "fp", "all"), default="all")
    list_parser.set_defaults(handler=cmd_list_benchmarks)

    quick_parser = subparsers.add_parser("quickstart", help="five configurations on one benchmark")
    quick_parser.add_argument("--benchmark", default="164.gzip-1")
    quick_parser.add_argument("--trace-length", type=int, default=3000)
    _add_engine_options(quick_parser)
    quick_parser.set_defaults(handler=cmd_quickstart)

    table1_parser = subparsers.add_parser(
        "table1", help="[deprecated: run table1] steering-unit complexity (Table 1)"
    )
    table1_parser.add_argument("--virtual-clusters", type=int, default=2)
    table1_parser.set_defaults(handler=cmd_table1)

    for name, help_text in (
        ("figure5", "[deprecated: run figure5] 2-cluster slowdown vs OP (Figure 5)"),
        ("figure6", "[deprecated: run figure6] copy/balance trade-off (Figure 6)"),
        ("figure7", "[deprecated: run figure7] 4-cluster scalability (Figure 7)"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_common_options(sub)
        sub.set_defaults(handler=cmd_figure)

    analyze_parser = subparsers.add_parser(
        "analyze",
        help="static analysis: determinism, kernel-twin and resource-lifecycle checks",
    )
    analyze_parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or trees to scan (default: src)"
    )
    analyze_parser.add_argument(
        "--pass",
        dest="pass_name",
        choices=("detlint", "parlint", "lifelint", "all"),
        default="all",
        help="which analysis pass to run (default: all)",
    )
    analyze_parser.add_argument(
        "--strict", action="store_true", help="ignore the baseline (CI mode)"
    )
    analyze_parser.add_argument("--baseline", metavar="FILE", default=None)
    analyze_parser.add_argument("--no-baseline", action="store_true")
    analyze_parser.add_argument("--write-baseline", action="store_true")
    analyze_parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="drop baseline entries that no longer match any finding",
    )
    analyze_parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text"
    )
    analyze_parser.add_argument("--list-rules", action="store_true")
    analyze_parser.set_defaults(handler=cmd_analyze)

    ablations_parser = subparsers.add_parser(
        "ablations",
        help="[deprecated: run sweep-*] sensitivity sweeps (virtual clusters, link latency, ...)",
    )
    ablations_parser.add_argument(
        "--sweep",
        choices=sorted(ABLATION_SCENARIOS),
        default="virtual-clusters",
        help="which parameter to sweep",
    )
    _add_common_options(ablations_parser)
    ablations_parser.set_defaults(handler=cmd_ablations)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: parse arguments, run the selected command, print its report."""
    parser = build_parser()
    args = parser.parse_args(argv)
    print(args.handler(args))
    return getattr(args, "exit_code", 0)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    raise SystemExit(main())
