"""Command-line interface for the reproduction.

Exposes the experiment drivers without writing any Python::

    python -m repro.cli table1
    python -m repro.cli quickstart --benchmark 178.galgel --trace-length 4000
    python -m repro.cli figure5 --benchmarks 164.gzip-1 181.mcf --trace-length 2500
    python -m repro.cli figure6 --benchmarks 164.gzip-1 178.galgel
    python -m repro.cli figure7 --trace-length 2000
    python -m repro.cli ablations --sweep link-latency
    python -m repro.cli list-benchmarks --suite fp

Every command prints the same plain-text tables the benchmark harness emits.

Running experiments in parallel
-------------------------------
Every experiment command (``quickstart``, ``figure5``, ``figure6``,
``figure7``, ``ablations``) routes its simulations through the experiment
engine (:mod:`repro.engine`) and accepts three knobs:

``--jobs N``
    Simulate the ``benchmark x phase x configuration`` job matrix on ``N``
    worker processes (default 1 = serial, in-process).  Results are
    bit-identical for every ``N`` -- traces are regenerated from their seeds
    inside each worker, the simulator is deterministic and the weighted
    reassembly happens in a fixed order in the parent process -- so
    ``figure5 --jobs 4`` prints exactly the same tables as ``--jobs 1``.

``--cache-dir PATH``
    On-disk result cache (default ``.repro_cache``, or ``$REPRO_CACHE_DIR``).
    Repeated figure runs and overlapping sweeps skip already-simulated
    points.  Entries are keyed by the full simulation *inputs* (profile,
    phase, configuration, trace length, the resolved machine configuration
    and the register space), so for unchanged code a hit is exactly the
    metrics a fresh run would produce.  Keys cannot see edits to simulator
    *logic*: after such a change, bump
    :data:`repro.engine.job.CACHE_SCHEMA_VERSION` or pass ``--no-cache``.
    Every cached report ends with an ``[engine] ... hits/misses`` footer so
    replayed results are always visible.

``--no-cache``
    Disable the cache for this invocation (simulate everything afresh).
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional, Sequence

from repro.engine import ParallelRunner, ResultCache
from repro.experiments.ablations import (
    DEFAULT_ABLATION_BENCHMARKS,
    sweep_issue_queue_size,
    sweep_link_latency,
    sweep_region_size,
    sweep_virtual_clusters,
)
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import FIGURE6_COMPARISONS, run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.report import format_key_values, format_table
from repro.experiments.configs import TABLE3_CONFIGURATIONS
from repro.experiments.runner import ExperimentRunner, ExperimentSettings
from repro.experiments.table1 import run_table1
from repro.workloads.spec2000 import all_trace_names

#: Default on-disk result cache used by the experiment commands.
DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")

#: The ablation sweeps exposed by the ``ablations`` command.
ABLATION_SWEEPS = {
    "virtual-clusters": sweep_virtual_clusters,
    "link-latency": sweep_link_latency,
    "region-size": sweep_region_size,
    "issue-queue-size": sweep_issue_queue_size,
}


def _settings(args: argparse.Namespace, num_clusters: int, num_virtual_clusters: int) -> ExperimentSettings:
    return ExperimentSettings(
        num_clusters=num_clusters,
        num_virtual_clusters=num_virtual_clusters,
        trace_length=args.trace_length,
        max_phases=args.phases,
    )


def _cache_dir(args: argparse.Namespace) -> Optional[str]:
    """The cache directory selected by ``--cache-dir`` / ``--no-cache``."""
    return None if args.no_cache else args.cache_dir


def _engine(args: argparse.Namespace) -> ParallelRunner:
    """The engine configured by ``--jobs`` / ``--cache-dir`` / ``--no-cache``."""
    cache_dir = _cache_dir(args)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return ParallelRunner(max_workers=args.jobs, cache=cache)


def _engine_footer(engine: ParallelRunner) -> str:
    """One-line cache/parallelism summary appended to every cached report.

    Makes cache hits visible: a stale cache (e.g. after changing simulator
    code without bumping the engine's ``CACHE_SCHEMA_VERSION``) would
    otherwise silently reproduce old numbers.
    """
    if engine.cache is None:
        return ""
    stats = engine.cache.stats()
    return (
        f"[engine] jobs={engine.max_workers}  cache={engine.cache.root}  "
        f"hits={stats['hits']} misses={stats['misses']} stored={stats['stores']}  "
        "(cached results skip simulation; use --no-cache to force fresh runs)\n"
    )


def _benchmarks(args: argparse.Namespace) -> Optional[List[str]]:
    if getattr(args, "benchmarks", None):
        unknown = [name for name in args.benchmarks if name not in all_trace_names("all")]
        if unknown:
            raise SystemExit(f"unknown benchmarks: {unknown}")
        return list(args.benchmarks)
    return None


def _positive_int(text: str) -> int:
    """argparse type for ``--jobs``: a clean error instead of a traceback."""
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from exc
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """``--jobs`` / ``--cache-dir`` / ``--no-cache``, shared by every experiment command."""
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for the simulation job matrix "
        "(default 1 = serial; results are bit-identical for any N)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="PATH",
        help="on-disk result cache; repeated runs and overlapping sweeps "
        f"skip already-simulated points (default {DEFAULT_CACHE_DIR!r}, "
        "overridable via $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache for this invocation",
    )


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-length", type=int, default=2500, help="dynamic µops per simulation point"
    )
    parser.add_argument(
        "--phases", type=int, default=1, help="PinPoints phases per benchmark (max 10)"
    )
    parser.add_argument(
        "--benchmarks", nargs="*", default=None, help="trace names (default: the full suite)"
    )
    _add_engine_options(parser)


def cmd_list_benchmarks(args: argparse.Namespace) -> str:
    """``list-benchmarks``: print the available trace names."""
    names = all_trace_names(args.suite)
    return "\n".join(names) + "\n"


def cmd_table1(args: argparse.Namespace) -> str:
    """``table1``: steering-unit complexity comparison."""
    rows = run_table1(num_virtual_clusters=args.virtual_clusters)
    return format_table(rows, title="Table 1 -- steering-unit complexity")


def cmd_quickstart(args: argparse.Namespace) -> str:
    """``quickstart``: all five configurations on one benchmark."""
    settings = ExperimentSettings(
        num_clusters=2, num_virtual_clusters=2, trace_length=args.trace_length, max_phases=1
    )
    engine = _engine(args)
    runner = ExperimentRunner(settings, engine=engine)
    per_config = runner.run_suite([args.benchmark], list(TABLE3_CONFIGURATIONS.values()))[
        args.benchmark
    ]
    results = {
        name: per_config[name].phase_results[0].metrics for name in TABLE3_CONFIGURATIONS
    }
    baseline = results["OP"].cycles
    rows = []
    for name in ("OP", "one-cluster", "OB", "RHOP", "VC"):
        metrics = results[name]
        rows.append(
            {
                "configuration": name,
                "cycles": metrics.cycles,
                "slowdown vs OP (%)": 100.0 * (metrics.cycles / baseline - 1.0),
                "IPC": metrics.ipc,
                "copies": metrics.copies_generated,
                "balance stalls": metrics.balance_stalls,
            }
        )
    return (
        format_table(rows, title=f"{args.benchmark}: Table 3 configurations")
        + _engine_footer(engine)
    )


def cmd_figure5(args: argparse.Namespace) -> str:
    """``figure5``: 2-cluster slowdown versus OP."""
    settings = _settings(args, 2, 2)
    engine = _engine(args)
    result = run_figure5(
        settings, benchmarks=_benchmarks(args), runner=ExperimentRunner(settings, engine=engine)
    )
    out = [
        format_table(result.benchmark_rows("int"), title="Figure 5(a) -- SPECint slowdown vs OP (%)"),
        format_table(result.benchmark_rows("fp"), title="Figure 5(b) -- SPECfp slowdown vs OP (%)"),
        format_table(result.averages_table(), title="Figure 5(c) -- average slowdown vs OP (%)"),
        _engine_footer(engine),
    ]
    return "\n".join(out)


def cmd_figure6(args: argparse.Namespace) -> str:
    """``figure6``: copy / balance trade-off summaries."""
    settings = _settings(args, 2, 2)
    engine = _engine(args)
    result = run_figure6(
        settings, benchmarks=_benchmarks(args), runner=ExperimentRunner(settings, engine=engine)
    )
    out = []
    for comparison in FIGURE6_COMPARISONS:
        out.append(
            format_key_values(result.summary(comparison), title=f"Figure 6 -- VC vs {comparison}")
        )
    out.append(_engine_footer(engine))
    return "\n".join(out)


def cmd_figure7(args: argparse.Namespace) -> str:
    """``figure7``: 4-cluster scalability study."""
    settings = _settings(args, 4, 4)
    engine = _engine(args)
    result = run_figure7(
        settings, benchmarks=_benchmarks(args), runner=ExperimentRunner(settings, engine=engine)
    )
    out = [
        format_table(result.averages_table(), title="Figure 7(c) -- 4-cluster average slowdown vs OP (%)"),
        f"VC(4->4) copies relative to VC(2->4): {result.copy_overhead_4to4_vs_2to4():+.1f} % (paper: +28 %)\n",
        _engine_footer(engine),
    ]
    return "\n".join(out)


def cmd_ablations(args: argparse.Namespace) -> str:
    """``ablations``: sensitivity sweeps beyond the paper's figures."""
    sweep = ABLATION_SWEEPS[args.sweep]
    base = ExperimentSettings(
        num_clusters=2,
        num_virtual_clusters=2,
        trace_length=args.trace_length,
        max_phases=args.phases,
    )
    benchmarks = _benchmarks(args) or list(DEFAULT_ABLATION_BENCHMARKS)
    engine = _engine(args)
    result = sweep(benchmarks=benchmarks, base_settings=base, engine=engine)
    rows = []
    for point in result.points:
        rows.append(
            {
                result.parameter: point.value,
                "configuration": point.configuration,
                "cycles": point.cycles,
                "copies": point.copies,
                "allocation stalls": point.allocation_stalls,
                "slowdown vs OP (%)": (
                    "-" if point.slowdown_vs_op is None else round(point.slowdown_vs_op, 2)
                ),
            }
        )
    return format_table(rows, title=f"Ablation sweep -- {result.parameter}") + _engine_footer(
        engine
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the virtual-cluster hybrid steering paper (IPPS 2008).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list-benchmarks", help="list available trace names")
    list_parser.add_argument("--suite", choices=("int", "fp", "all"), default="all")
    list_parser.set_defaults(handler=cmd_list_benchmarks)

    table1_parser = subparsers.add_parser("table1", help="steering-unit complexity (Table 1)")
    table1_parser.add_argument("--virtual-clusters", type=int, default=2)
    table1_parser.set_defaults(handler=cmd_table1)

    quick_parser = subparsers.add_parser("quickstart", help="five configurations on one benchmark")
    quick_parser.add_argument("--benchmark", default="164.gzip-1")
    quick_parser.add_argument("--trace-length", type=int, default=3000)
    _add_engine_options(quick_parser)
    quick_parser.set_defaults(handler=cmd_quickstart)

    for name, handler, help_text in (
        ("figure5", cmd_figure5, "2-cluster slowdown vs OP (Figure 5)"),
        ("figure6", cmd_figure6, "copy/balance trade-off (Figure 6)"),
        ("figure7", cmd_figure7, "4-cluster scalability (Figure 7)"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_common_options(sub)
        sub.set_defaults(handler=handler)

    ablations_parser = subparsers.add_parser(
        "ablations", help="sensitivity sweeps (virtual clusters, link latency, ...)"
    )
    ablations_parser.add_argument(
        "--sweep",
        choices=sorted(ABLATION_SWEEPS),
        default="virtual-clusters",
        help="which parameter to sweep",
    )
    _add_common_options(ablations_parser)
    ablations_parser.set_defaults(handler=cmd_ablations)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: parse arguments, run the selected command, print its report."""
    parser = build_parser()
    args = parser.parse_args(argv)
    print(args.handler(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    raise SystemExit(main())
