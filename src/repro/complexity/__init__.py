"""Hardware complexity model (Table 1).

Quantifies the steering-unit hardware each scheme needs: which structures are
present (dependence-check table, workload-balance counters, vote unit, copy
generator, virtual-cluster mapping table), an estimate of their storage cost
in bits, and whether the steering decision is serialised across the dispatch
group (the timing problem motivating the paper).
"""

from repro.complexity.model import (
    ComplexityEstimate,
    SteeringComplexityModel,
    complexity_table,
)

__all__ = ["ComplexityEstimate", "SteeringComplexityModel", "complexity_table"]
