"""Structural complexity model of the steering unit.

Table 1 of the paper compares the hardware-only occupancy-aware scheme with
the hybrid virtual-cluster scheme along four components:

===========================  ==================  ======================
Component                    hardware-only (OP)  hybrid (VC)
===========================  ==================  ======================
dependence check             yes                 no
workload balance management  yes                 yes
vote unit                    yes                 no
copy generator               yes                 no (moved after mapping)
===========================  ==================  ======================

(The paper's table marks the copy generator as removed from the *steering*
unit for the hybrid scheme because copy generation happens after the mapping
decision with information already present in the rename table.)

This module reproduces the yes/no table directly from each policy's
:meth:`~repro.steering.base.SteeringPolicy.hardware` declaration and adds a
quantitative storage estimate plus a serialisation flag, so ablation studies
can reason about how the cost scales with cluster count and register count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cluster.config import ClusterConfig
from repro.steering.base import SteeringHardware, SteeringPolicy


@dataclass(frozen=True)
class ComplexityEstimate:
    """Estimated steering-unit cost of one scheme on one machine configuration."""

    policy_name: str
    hardware: SteeringHardware
    #: Bits of storage in steering-specific structures.
    storage_bits: int
    #: True when the steering decision of µop *i* needs the decision of µop *i-1*
    #: of the same dispatch group (the serialisation problem of Section 2.1).
    serialized_decision: bool

    def as_row(self) -> Dict[str, object]:
        """Row of the Table 1 reproduction."""
        row: Dict[str, object] = {"steering algorithm": self.policy_name}
        row.update(
            {
                "dependence check": "yes" if self.hardware.dependence_check else "no",
                "workload balance management": "yes" if self.hardware.workload_counters else "no",
                "vote unit": "yes" if self.hardware.vote_unit else "no",
                "copy generator": "yes" if self.hardware.copy_generator else "no",
                "storage bits": self.storage_bits,
                "serialized": "yes" if self.serialized_decision else "no",
            }
        )
        return row


class SteeringComplexityModel:
    """Estimate steering-unit storage for a machine configuration.

    Parameters
    ----------
    config:
        The machine (cluster count drives counter and table widths).
    num_architectural_registers:
        Number of architectural registers tracked by the dependence-check
        table.
    counter_bits:
        Width of each workload counter.
    """

    def __init__(
        self,
        config: ClusterConfig,
        num_architectural_registers: int = 128,
        counter_bits: int = 10,
    ) -> None:
        self.config = config
        self.num_architectural_registers = int(num_architectural_registers)
        self.counter_bits = int(counter_bits)

    # -- per-structure costs -------------------------------------------------------
    def cluster_id_bits(self) -> int:
        """Bits needed to name a physical cluster."""
        bits = 1
        while (1 << bits) < self.config.num_clusters:
            bits += 1
        return bits

    def dependence_check_bits(self) -> int:
        """Location table: one cluster id (plus a valid bit) per architectural register."""
        return self.num_architectural_registers * (self.cluster_id_bits() + 1)

    def workload_counter_bits(self) -> int:
        """N-1 relative occupancy counters, as described in Section 4.3."""
        return (self.config.num_clusters - 1) * self.counter_bits

    def vote_unit_bits(self) -> int:
        """Per-dispatch-slot source-location comparators and the priority encoder.

        Approximated as one location mask per source operand of every µop in
        the dispatch group plus the cluster-wide comparison tree state.
        """
        sources_per_uop = 2
        return (
            self.config.dispatch_width
            * sources_per_uop
            * self.config.num_clusters
            + self.config.num_clusters * self.counter_bits
        )

    def mapping_table_bits(self, entries: int) -> int:
        """VC->PC mapping table: one physical cluster id per virtual cluster."""
        return entries * self.cluster_id_bits()

    # -- estimates ------------------------------------------------------------------
    def estimate(self, policy: SteeringPolicy) -> ComplexityEstimate:
        """Estimate the steering-unit complexity of ``policy`` on this machine."""
        hardware = policy.hardware()
        bits = 0
        if hardware.dependence_check:
            bits += self.dependence_check_bits()
        if hardware.workload_counters:
            bits += self.workload_counter_bits()
        if hardware.vote_unit:
            bits += self.vote_unit_bits()
        if hardware.mapping_table_entries:
            bits += self.mapping_table_bits(hardware.mapping_table_entries)
        serialized = hardware.dependence_check and hardware.vote_unit
        return ComplexityEstimate(
            policy_name=policy.name,
            hardware=hardware,
            storage_bits=bits,
            serialized_decision=serialized,
        )


def complexity_table(
    policies: Sequence[SteeringPolicy],
    config: ClusterConfig | None = None,
) -> List[Dict[str, object]]:
    """Reproduce Table 1 for ``policies`` on ``config`` (2-cluster machine by default)."""
    model = SteeringComplexityModel(config or ClusterConfig())
    return [model.estimate(policy).as_row() for policy in policies]
