"""Figure 6: copy reduction and workload-balance improvement versus speedup.

Figure 6 plots, for every PinPoints trace, the speedup of VC over a
comparison scheme (x-axis) against either the copy reduction (panels a.1-a.3)
or the workload-balance improvement (panels b.1-b.3) of VC over that scheme.
The comparison schemes are OB (a.1/b.1), RHOP (a.2/b.2) and OP (a.3/b.3).

Workload-balance improvement follows the paper's definition: "the total
reduction of the allocation stalls in the issue queues" (Section 5.3).

The qualitative claims the reproduction targets:

* versus **OB** and **RHOP**, VC reduces copies for most traces and its
  speedups correlate with that reduction;
* versus **RHOP**, VC often has *worse* balance but still wins -- copy
  reduction matters more than balance;
* versus **OP**, VC tends to have *better* balance but *more* copies, which
  is why OP stays slightly ahead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.configs import TABLE3_CONFIGURATIONS, SteeringConfiguration
from repro.experiments.runner import (
    ExperimentRunner,
    ExperimentSettings,
    reduction_percent,
    speedup_percent,
)
from repro.workloads.spec2000 import all_trace_names, profile_for

#: The three comparisons of Figure 6, in panel order.
FIGURE6_COMPARISONS = ("OB", "RHOP", "OP")


@dataclass(frozen=True)
class Figure6Point:
    """One scatter point: a single trace compared under VC versus another scheme."""

    trace: str
    comparison: str
    speedup_percent: float
    copy_reduction_percent: float
    balance_improvement_percent: float


@dataclass
class Figure6Result:
    """All scatter points of Figure 6, grouped by comparison scheme."""

    points: List[Figure6Point] = field(default_factory=list)
    #: Comparison scheme names, in panel order.
    comparisons: List[str] = field(default_factory=lambda: list(FIGURE6_COMPARISONS))

    def for_comparison(self, comparison: str) -> List[Figure6Point]:
        """Points of one panel column (``"OB"``, ``"RHOP"`` or ``"OP"``)."""
        return [p for p in self.points if p.comparison == comparison]

    def summary(self, comparison: str) -> Dict[str, float]:
        """Aggregate statistics of one comparison (fractions of traces, correlations)."""
        selected = self.for_comparison(comparison)
        if not selected:
            return {
                "num_traces": 0.0,
                "mean_speedup": 0.0,
                "fraction_with_copy_reduction": 0.0,
                "fraction_with_balance_improvement": 0.0,
                "copy_speedup_correlation": 0.0,
            }
        speedups = np.array([p.speedup_percent for p in selected])
        copy_reductions = np.array([p.copy_reduction_percent for p in selected])
        balance = np.array([p.balance_improvement_percent for p in selected])
        if len(selected) > 1 and np.std(speedups) > 0 and np.std(copy_reductions) > 0:
            correlation = float(np.corrcoef(speedups, copy_reductions)[0, 1])
        else:
            correlation = 0.0
        return {
            "num_traces": float(len(selected)),
            "mean_speedup": float(np.mean(speedups)),
            "fraction_with_copy_reduction": float(np.mean(copy_reductions > 0)),
            "fraction_with_balance_improvement": float(np.mean(balance > 0)),
            "copy_speedup_correlation": correlation,
        }


def run_figure6(
    settings: Optional[ExperimentSettings] = None,
    benchmarks: Optional[Sequence[str]] = None,
    runner: Optional[ExperimentRunner] = None,
    configurations: Optional[Sequence[SteeringConfiguration]] = None,
) -> Figure6Result:
    """Reproduce the Figure 6 scatter data on the 2-cluster machine.

    ``configurations`` lists the subject scheme first (VC in the paper), then
    the comparison schemes, one panel column each.
    """
    settings = settings or ExperimentSettings(num_clusters=2, num_virtual_clusters=2)
    runner = runner or ExperimentRunner(settings)
    names = list(benchmarks) if benchmarks is not None else all_trace_names("all")
    if configurations is None:
        configurations = [TABLE3_CONFIGURATIONS[name] for name in ("VC", "OB", "RHOP", "OP")]
    if len(configurations) < 2:
        raise ValueError("Figure 6 needs a subject plus at least one comparison scheme")
    subject = configurations[0].name
    comparisons = [configuration.name for configuration in configurations[1:]]
    result = Figure6Result(comparisons=comparisons)
    # Phase-level scatter points, as in the paper ("every point in the figure
    # refers to a trace gathered by the PinPoints tool").  The whole
    # benchmark x configuration x phase matrix is one engine batch, so a
    # parallel runner simulates every scatter point concurrently.
    matrix = runner.run_phase_matrix(names, list(configurations))
    for name in names:
        profile = profile_for(name)
        points = runner.simulation_points(profile)
        per_config = matrix[name]
        for index, point in enumerate(points):
            vc = per_config[subject][index].metrics
            for comparison in comparisons:
                other = per_config[comparison][index].metrics
                result.points.append(
                    Figure6Point(
                        trace=f"{name}/p{point.phase}",
                        comparison=comparison,
                        speedup_percent=speedup_percent(vc.cycles, other.cycles),
                        copy_reduction_percent=reduction_percent(
                            vc.copies_generated, other.copies_generated
                        ),
                        balance_improvement_percent=reduction_percent(
                            vc.balance_stalls, other.balance_stalls
                        ),
                    )
                )
    return result
