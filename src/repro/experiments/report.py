"""Plain-text table formatting for experiment results.

The harness prints the same rows/series the paper reports; this module turns
lists of row dictionaries into aligned plain-text tables (and optionally
Markdown) without pulling in any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]], title: str = "", markdown: bool = False) -> str:
    """Format ``rows`` (list of dicts sharing keys) as an aligned text table.

    Parameters
    ----------
    rows:
        Table rows; the column order is taken from the first row.
    title:
        Optional heading printed above the table.
    markdown:
        Emit a GitHub-flavoured Markdown table instead of an aligned
        plain-text one.
    """
    if not rows:
        return f"{title}\n(no data)\n" if title else "(no data)\n"
    columns: List[str] = list(rows[0].keys())
    table = [[_stringify(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(columns[i]), max(len(line[i]) for line in table)) for i in range(len(columns))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    if markdown:
        lines.append("| " + " | ".join(columns) + " |")
        lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
        for line in table:
            lines.append("| " + " | ".join(line) + " |")
    else:
        header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
        lines.append(header)
        lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
        for line in table:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines) + "\n"


def format_key_values(values: Dict[str, object], title: str = "") -> str:
    """Format a flat key/value mapping as aligned ``key : value`` lines."""
    if not values:
        return f"{title}\n(no data)\n" if title else "(no data)\n"
    width = max(len(key) for key in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    for key, value in values.items():
        lines.append(f"{key.ljust(width)} : {_stringify(value)}")
    return "\n".join(lines) + "\n"
