"""Experiment harness: the paper's evaluation, end to end.

* :mod:`repro.experiments.configs` -- the five configurations of Table 3
  (OP, one-cluster, OB, RHOP, VC) as declarative specs naming their
  compile-time pass and run-time policy in the scenario registries.
* :mod:`repro.experiments.runner` -- runs a benchmark (all of its PinPoints
  phases) under one configuration and aggregates weighted metrics.
* :mod:`repro.experiments.figure5` -- 2-cluster slowdown vs OP (Figure 5).
* :mod:`repro.experiments.figure6` -- copy-reduction / workload-balance
  trade-off scatter data (Figure 6).
* :mod:`repro.experiments.figure7` -- 4-cluster scalability study (Figure 7),
  including the VC(4->4) vs VC(2->4) copy comparison of Section 5.4.
* :mod:`repro.experiments.table1` -- steering-unit complexity (Table 1).
* :mod:`repro.experiments.ablations` -- sensitivity studies beyond the paper.
* :mod:`repro.experiments.report` -- plain-text table formatting.
"""

from repro.experiments.ablations import (
    AblationResult,
    sweep_issue_queue_size,
    sweep_link_latency,
    sweep_region_size,
    sweep_virtual_clusters,
)
from repro.experiments.configs import (
    SteeringConfiguration,
    TABLE3_CONFIGURATIONS,
    make_configuration,
    table3_configurations,
    vc_variant,
)
from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.figure6 import Figure6Point, Figure6Result, run_figure6
from repro.experiments.figure7 import Figure7Result, run_figure7
from repro.experiments.report import format_table
from repro.experiments.runner import (
    BenchmarkResult,
    ExperimentRunner,
    ExperimentSettings,
)
from repro.experiments.table1 import run_table1

__all__ = [
    "SteeringConfiguration",
    "TABLE3_CONFIGURATIONS",
    "make_configuration",
    "table3_configurations",
    "vc_variant",
    "ExperimentRunner",
    "ExperimentSettings",
    "BenchmarkResult",
    "Figure5Result",
    "run_figure5",
    "Figure6Point",
    "Figure6Result",
    "run_figure6",
    "Figure7Result",
    "run_figure7",
    "run_table1",
    "AblationResult",
    "sweep_virtual_clusters",
    "sweep_link_latency",
    "sweep_region_size",
    "sweep_issue_queue_size",
    "format_table",
]
