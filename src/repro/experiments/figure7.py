"""Figure 7: 4-cluster scalability study.

For the 4-cluster machine the paper compares OB, RHOP and two variants of the
hybrid scheme against OP:

* ``VC(4->4)`` -- 4 virtual clusters mapped onto 4 physical clusters,
* ``VC(2->4)`` -- only 2 virtual clusters mapped onto 4 physical clusters.

Headline numbers: OB 12.45 %, RHOP 12.69 %, VC(4->4) 12.96 %, VC(2->4)
3.64 % average slowdown versus OP, and VC(4->4) generates ~28 % more copy
instructions than VC(2->4) because pairs of critical, dependent instructions
get spread across virtual clusters and may be mapped to different physical
clusters at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.configs import TABLE3_CONFIGURATIONS, SteeringConfiguration, vc_variant
from repro.experiments.runner import (
    BenchmarkResult,
    ExperimentRunner,
    ExperimentSettings,
    slowdown_percent,
)
from repro.workloads.spec2000 import all_trace_names, profile_for

#: Configurations plotted in Figure 7 (beyond the OP baseline).
FIGURE7_CONFIGURATIONS = ("OB", "RHOP", "VC(4->4)", "VC(2->4)")


@dataclass
class Figure7Result:
    """Reproduced Figure 7: 4-cluster slowdowns plus the VC copy comparison."""

    #: slowdown[benchmark][configuration] in percent.
    slowdowns: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: copies[benchmark][configuration] (weighted copy counts).
    copies: Dict[str, Dict[str, float]] = field(default_factory=dict)
    raw: Dict[str, Dict[str, BenchmarkResult]] = field(default_factory=dict)
    int_benchmarks: List[str] = field(default_factory=list)
    fp_benchmarks: List[str] = field(default_factory=list)
    #: Plotted (non-baseline) configuration names, in table-column order.
    plotted: List[str] = field(default_factory=lambda: list(FIGURE7_CONFIGURATIONS))

    def average(self, configuration: str, suite: str = "all") -> float:
        """Average slowdown of one configuration over a suite (panel c)."""
        if suite == "int":
            names = self.int_benchmarks
        elif suite == "fp":
            names = self.fp_benchmarks
        elif suite == "all":
            names = self.int_benchmarks + self.fp_benchmarks
        else:
            raise ValueError(f"unknown suite {suite!r}")
        values = [self.slowdowns[name][configuration] for name in names if name in self.slowdowns]
        return float(np.mean(values)) if values else 0.0

    def averages_table(self) -> List[Dict[str, object]]:
        """Panel (c): average slowdowns of each configuration."""
        rows = []
        for configuration in self.plotted:
            rows.append(
                {
                    "configuration": configuration,
                    "INT AVG (%)": round(self.average(configuration, "int"), 2),
                    "FP AVG (%)": round(self.average(configuration, "fp"), 2),
                    "CPU2000 AVG (%)": round(self.average(configuration, "all"), 2),
                }
            )
        return rows

    def copy_overhead_4to4_vs_2to4(self) -> float:
        """Extra copies of VC(4->4) relative to VC(2->4), in percent (Section 5.4)."""
        if "VC(4->4)" not in self.plotted or "VC(2->4)" not in self.plotted:
            return 0.0
        total_4 = sum(per_config["VC(4->4)"] for per_config in self.copies.values())
        total_2 = sum(per_config["VC(2->4)"] for per_config in self.copies.values())
        if total_2 <= 0:
            return 0.0
        return (total_4 / total_2 - 1.0) * 100.0


def _vc_variant(name: str, num_virtual_clusters: int) -> SteeringConfiguration:
    """A VC configuration with an explicit virtual-cluster count and display name.

    Thin alias of :func:`repro.experiments.configs.vc_variant`, kept for
    backwards compatibility; the shared helper pins the virtual-cluster count
    on the declarative configuration so the variant is cacheable and
    process-parallel like the stock Table 3 configurations.
    """
    return vc_variant(name, num_virtual_clusters)


def run_figure7(
    settings: Optional[ExperimentSettings] = None,
    benchmarks: Optional[Sequence[str]] = None,
    runner: Optional[ExperimentRunner] = None,
    configurations: Optional[Sequence[SteeringConfiguration]] = None,
) -> Figure7Result:
    """Reproduce Figure 7 on the 4-cluster machine.

    ``configurations`` lists the baseline first, then the plotted
    configurations; the paper's line-up (OP, OB, RHOP, VC(4->4), VC(2->4))
    when omitted.
    """
    settings = settings or ExperimentSettings(num_clusters=4, num_virtual_clusters=4)
    if settings.num_clusters != 4:
        raise ValueError("Figure 7 is defined for the 4-cluster machine")
    runner = runner or ExperimentRunner(settings)
    names = list(benchmarks) if benchmarks is not None else all_trace_names("all")
    if configurations is None:
        configurations = [
            TABLE3_CONFIGURATIONS["OP"],
            TABLE3_CONFIGURATIONS["OB"],
            TABLE3_CONFIGURATIONS["RHOP"],
            _vc_variant("VC(4->4)", 4),
            _vc_variant("VC(2->4)", 2),
        ]
    if len(configurations) < 2:
        raise ValueError("Figure 7 needs a baseline plus at least one configuration")
    baseline_name = configurations[0].name
    plotted = [configuration.name for configuration in configurations[1:]]
    raw = runner.run_suite(names, list(configurations))
    result = Figure7Result(raw=raw, plotted=plotted)
    for name in names:
        suite = profile_for(name).suite
        if suite == "int":
            result.int_benchmarks.append(name)
        else:
            result.fp_benchmarks.append(name)
        baseline = raw[name][baseline_name].cycles
        result.slowdowns[name] = {
            configuration: slowdown_percent(raw[name][configuration].cycles, baseline)
            for configuration in plotted
        }
        result.copies[name] = {
            configuration: raw[name][configuration].copies for configuration in plotted
        }
    return result
