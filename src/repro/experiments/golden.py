"""Golden-metrics snapshot: the pinned simulator behaviour regression suite.

This module is the single source of truth for *what* the golden-file
regression test pins: small, fixed-seed benchmark/configuration pairs
covering every Table 3 configuration (hardware-only, software-only and
hybrid; integer and floating-point benchmarks) simulated through the
experiment engine, snapshotting the key metrics the paper's evaluation rests
on -- IPC, copy-µop count, inter-cluster traffic (copies per producing
cluster), commit count, cycles and the dispatch distribution.  Because the
compiled-trace kernel (see DESIGN.md) is required to be bit-identical to the
seed simulator, this snapshot doubles as the compiled-path equivalence
reference.

``tests/test_golden_metrics.py`` compares :func:`compute_golden_snapshot`
against the committed ``tests/golden/golden_metrics.json``;
``scripts/regenerate_golden_metrics.py`` rewrites that file after an
intentional behaviour change.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

from repro.experiments.configs import TABLE3_CONFIGURATIONS
from repro.experiments.runner import ExperimentRunner, ExperimentSettings

#: Committed snapshot location (inside the test tree so it ships with tests).
GOLDEN_PATH = Path(__file__).resolve().parents[3] / "tests" / "golden" / "golden_metrics.json"

#: Settings of the golden runs: deliberately small so the regression test is
#: cheap, but long enough that steering differences show up in the counters.
GOLDEN_SETTINGS = ExperimentSettings(
    num_clusters=2, num_virtual_clusters=2, trace_length=800, max_phases=1
)

#: The pinned benchmark/configuration pairs: every Table 3 configuration,
#: alternating an integer and a floating-point benchmark so both suites (and
#: both issue-queue kinds) stay covered.
GOLDEN_CASES = (
    ("164.gzip-1", "OP"),
    ("178.galgel", "VC"),
    ("164.gzip-1", "one-cluster"),
    ("178.galgel", "OB"),
    ("164.gzip-1", "RHOP"),
)


def compute_golden_snapshot(jobs: int = 1) -> Dict[str, object]:
    """Simulate the golden cases and return the snapshot payload.

    The payload is JSON-compatible and deterministic: integer counters stay
    integers and the only float (IPC) is derived from them, so an exact
    comparison against the committed file is meaningful.
    """
    runner = ExperimentRunner(GOLDEN_SETTINGS, jobs=jobs)
    cases: List[Dict[str, object]] = []
    for benchmark, configuration_name in GOLDEN_CASES:
        result = runner.run_benchmark(benchmark, TABLE3_CONFIGURATIONS[configuration_name])
        metrics = result.phase_results[0].metrics
        cases.append(
            {
                "benchmark": benchmark,
                "configuration": configuration_name,
                "phase": result.phase_results[0].phase,
                "cycles": metrics.cycles,
                "ipc": metrics.ipc,
                "committed_uops": metrics.committed_uops,
                "dispatched_uops": metrics.dispatched_uops,
                "copies_generated": metrics.copies_generated,
                "inter_cluster_traffic": list(metrics.cluster_copies),
                "cluster_dispatch": list(metrics.cluster_dispatch),
                "allocation_stalls": list(metrics.allocation_stalls),
                "balance_stalls": metrics.balance_stalls,
            }
        )
    return {
        "settings": {
            "num_clusters": GOLDEN_SETTINGS.num_clusters,
            "num_virtual_clusters": GOLDEN_SETTINGS.num_virtual_clusters,
            "trace_length": GOLDEN_SETTINGS.trace_length,
            "max_phases": GOLDEN_SETTINGS.max_phases,
            "region_size": GOLDEN_SETTINGS.region_size,
        },
        "cases": cases,
    }
