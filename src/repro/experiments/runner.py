"""Benchmark runner: profiles -> programs -> traces -> simulations -> weighted metrics.

The runner mirrors the paper's methodology: every benchmark contributes up to
ten PinPoints simulation points; each point is simulated under every
configuration on the *same* dynamic trace (only the compiler annotations and
the run-time policy change); and benchmark-level numbers are the
PinPoints-weighted averages of the per-point numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.metrics import SimulationMetrics
from repro.cluster.processor import ClusteredProcessor
from repro.experiments.configs import SteeringConfiguration
from repro.program.program import Program
from repro.uops.registers import DEFAULT_REGISTER_SPACE, RegisterSpace
from repro.uops.uop import DynamicUop
from repro.workloads.generator import BenchmarkProfile, WorkloadGenerator
from repro.workloads.pinpoints import SimulationPoint, select_simulation_points, weighted_average
from repro.workloads.spec2000 import profile_for


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by every experiment.

    Parameters
    ----------
    num_clusters:
        Physical clusters of the simulated machine.
    num_virtual_clusters:
        Virtual clusters used by the VC configuration (2 in the paper's base
        setup; 2 or 4 in the Figure 7 study).
    trace_length:
        Dynamic µops per simulation point.  The paper uses 10 M; the default
        here is scaled down so a pure-Python simulation of the full suite
        stays tractable -- relative results are stable well below 10 M.
    max_phases:
        Cap on simulation points per benchmark (the paper caps at 10).
    region_size:
        Compiler window (instructions per region) for the software passes.
    config_overrides:
        Extra :class:`~repro.cluster.config.ClusterConfig` field overrides
        (used by the ablation sweeps).
    """

    num_clusters: int = 2
    num_virtual_clusters: int = 2
    trace_length: int = 4000
    max_phases: int = 2
    region_size: int = 128
    config_overrides: Dict[str, object] = field(default_factory=dict)

    def machine_config(self) -> ClusterConfig:
        """The :class:`ClusterConfig` these settings describe."""
        config = ClusterConfig(num_clusters=self.num_clusters)
        if self.config_overrides:
            config = config.with_overrides(**self.config_overrides)
        return config


@dataclass
class PhaseRunResult:
    """Result of simulating one simulation point under one configuration."""

    benchmark: str
    phase: int
    weight: float
    configuration: str
    metrics: SimulationMetrics


@dataclass
class BenchmarkResult:
    """PinPoints-weighted metrics of one benchmark under one configuration."""

    benchmark: str
    suite: str
    configuration: str
    cycles: float
    copies: float
    allocation_stalls: float
    committed_uops: float
    phase_results: List[PhaseRunResult] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        """Weighted committed µops per weighted cycle."""
        return self.committed_uops / self.cycles if self.cycles else 0.0


class ExperimentRunner:
    """Run benchmarks under steering configurations with shared traces.

    The runner caches the generated program and trace of every
    ``(benchmark, phase)`` pair so that all configurations see the exact same
    dynamic µop stream.
    """

    def __init__(
        self,
        settings: Optional[ExperimentSettings] = None,
        register_space: RegisterSpace = DEFAULT_REGISTER_SPACE,
    ) -> None:
        self.settings = settings or ExperimentSettings()
        self.register_space = register_space
        self._trace_cache: Dict[Tuple[str, int], Tuple[Program, List[DynamicUop]]] = {}

    # -- trace management -----------------------------------------------------------
    def _trace_for(self, profile: BenchmarkProfile, phase: int) -> Tuple[Program, List[DynamicUop]]:
        key = (profile.name, phase)
        if key not in self._trace_cache:
            generator = WorkloadGenerator(profile, register_space=self.register_space)
            program, trace = generator.generate_trace(self.settings.trace_length, phase=phase)
            self._trace_cache[key] = (program, trace)
        return self._trace_cache[key]

    def simulation_points(self, profile: BenchmarkProfile) -> List[SimulationPoint]:
        """Weighted simulation points of ``profile`` under the current settings."""
        return select_simulation_points(profile, max_phases=self.settings.max_phases)

    # -- running ---------------------------------------------------------------------
    def run_phase(
        self,
        profile: BenchmarkProfile,
        point: SimulationPoint,
        configuration: SteeringConfiguration,
    ) -> PhaseRunResult:
        """Simulate one simulation point under ``configuration``."""
        settings = self.settings
        program, trace = self._trace_for(profile, point.phase)
        partitioner = configuration.make_partitioner(
            settings.num_clusters, settings.num_virtual_clusters, settings.region_size
        )
        if partitioner is not None:
            partitioner.annotate_program(program)
        else:
            program.clear_annotations()
        policy = configuration.make_policy(settings.num_clusters, settings.num_virtual_clusters)
        processor = ClusteredProcessor(settings.machine_config(), policy, self.register_space)
        metrics = processor.run(trace)
        return PhaseRunResult(
            benchmark=profile.name,
            phase=point.phase,
            weight=point.weight,
            configuration=configuration.name,
            metrics=metrics,
        )

    def run_benchmark(
        self, benchmark: str | BenchmarkProfile, configuration: SteeringConfiguration
    ) -> BenchmarkResult:
        """Simulate every simulation point of ``benchmark`` under ``configuration``."""
        profile = benchmark if isinstance(benchmark, BenchmarkProfile) else profile_for(benchmark)
        points = self.simulation_points(profile)
        phase_results = [self.run_phase(profile, point, configuration) for point in points]
        cycles = weighted_average([r.metrics.cycles for r in phase_results], points)
        copies = weighted_average([r.metrics.copies_generated for r in phase_results], points)
        stalls = weighted_average(
            [r.metrics.balance_stalls for r in phase_results], points
        )
        committed = weighted_average(
            [r.metrics.committed_uops for r in phase_results], points
        )
        return BenchmarkResult(
            benchmark=profile.name,
            suite=profile.suite,
            configuration=configuration.name,
            cycles=cycles,
            copies=copies,
            allocation_stalls=stalls,
            committed_uops=committed,
            phase_results=phase_results,
        )

    def run_suite(
        self,
        benchmarks: Sequence[str | BenchmarkProfile],
        configurations: Sequence[SteeringConfiguration],
    ) -> Dict[str, Dict[str, BenchmarkResult]]:
        """Run every benchmark under every configuration.

        Returns ``results[benchmark_name][configuration_name]``.
        """
        results: Dict[str, Dict[str, BenchmarkResult]] = {}
        for benchmark in benchmarks:
            profile = (
                benchmark if isinstance(benchmark, BenchmarkProfile) else profile_for(benchmark)
            )
            per_config: Dict[str, BenchmarkResult] = {}
            for configuration in configurations:
                per_config[configuration.name] = self.run_benchmark(profile, configuration)
            results[profile.name] = per_config
        return results


# ---------------------------------------------------------------------------
# Comparison helpers shared by the figure drivers
# ---------------------------------------------------------------------------


def slowdown_percent(cycles: float, baseline_cycles: float) -> float:
    """Slowdown of a configuration relative to the baseline, in percent.

    Positive values mean the configuration is slower than the baseline (this
    is the y-axis of Figures 5 and 7).
    """
    if baseline_cycles <= 0:
        raise ValueError("baseline cycles must be positive")
    return (cycles / baseline_cycles - 1.0) * 100.0


def speedup_percent(cycles: float, other_cycles: float) -> float:
    """Speedup of a configuration over another, in percent (Figure 6 x-axis)."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return (other_cycles / cycles - 1.0) * 100.0


def reduction_percent(value: float, reference: float) -> float:
    """Relative reduction of ``value`` with respect to ``reference``, in percent.

    Used for both copy reduction and workload-balance (allocation stall)
    improvement.  When the reference is zero the reduction is defined as 0.
    """
    if reference <= 0:
        return 0.0
    return (reference - value) / reference * 100.0
