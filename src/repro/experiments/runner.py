"""Benchmark runner: profiles -> programs -> traces -> simulations -> weighted metrics.

The runner mirrors the paper's methodology: every benchmark contributes up to
ten PinPoints simulation points; each point is simulated under every
configuration on the *same* dynamic trace (only the compiler annotations and
the run-time policy change); and benchmark-level numbers are the
PinPoints-weighted averages of the per-point numbers.

All simulation is routed through the experiment engine
(:mod:`repro.engine`): the runner expands its work into independent
``benchmark x phase x configuration`` :class:`~repro.engine.job.SimulationJob`
units, hands them to a :class:`~repro.engine.parallel.ParallelRunner` (serial
by default, process-parallel with ``jobs > 1``, optionally backed by an
on-disk result cache) and reassembles the PinPoints-weighted aggregates in a
fixed order -- so serial, parallel and cache-replay runs are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.config import ClusterConfig
from repro.cluster.metrics import SimulationMetrics
from repro.engine.cache import ResultCache
from repro.engine.job import SimulationJob
from repro.engine.parallel import AUTO_TRACE_ROOT, ParallelRunner
from repro.experiments.configs import SteeringConfiguration
from repro.uops.registers import DEFAULT_REGISTER_SPACE, RegisterSpace
from repro.workloads.generator import BenchmarkProfile
from repro.workloads.pinpoints import SimulationPoint, select_simulation_points, weighted_average
from repro.workloads.spec2000 import profile_for


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by every experiment.

    Parameters
    ----------
    num_clusters:
        Physical clusters of the simulated machine.
    num_virtual_clusters:
        Virtual clusters used by the VC configuration (2 in the paper's base
        setup; 2 or 4 in the Figure 7 study).
    trace_length:
        Dynamic µops per simulation point.  The paper uses 10 M; the default
        here is scaled down so a pure-Python simulation of the full suite
        stays tractable -- relative results are stable well below 10 M.
    max_phases:
        Cap on simulation points per benchmark (the paper caps at 10).
    region_size:
        Compiler window (instructions per region) for the software passes.
    config_overrides:
        Extra :class:`~repro.cluster.config.ClusterConfig` field overrides
        (used by the ablation sweeps).
    """

    num_clusters: int = 2
    num_virtual_clusters: int = 2
    trace_length: int = 4000
    max_phases: int = 2
    region_size: int = 128
    config_overrides: Dict[str, object] = field(default_factory=dict)

    def machine_config(self) -> ClusterConfig:
        """The :class:`ClusterConfig` these settings describe."""
        config = ClusterConfig(num_clusters=self.num_clusters)
        if self.config_overrides:
            config = config.with_overrides(**self.config_overrides)
        return config


@dataclass
class PhaseRunResult:
    """Result of simulating one simulation point under one configuration."""

    benchmark: str
    phase: int
    weight: float
    configuration: str
    metrics: SimulationMetrics


@dataclass
class BenchmarkResult:
    """PinPoints-weighted metrics of one benchmark under one configuration."""

    benchmark: str
    suite: str
    configuration: str
    cycles: float
    copies: float
    allocation_stalls: float
    committed_uops: float
    phase_results: List[PhaseRunResult] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        """Weighted committed µops per weighted cycle."""
        return self.committed_uops / self.cycles if self.cycles else 0.0


class ExperimentRunner:
    """Run benchmarks under steering configurations with shared traces.

    Every simulation goes through the experiment engine, which memoises the
    generated program and trace of each ``(benchmark, phase)`` pair per
    process so that all configurations see the exact same dynamic µop stream.

    Parameters
    ----------
    settings:
        Shared experiment knobs (machine geometry, trace length, phases).
    register_space:
        Architectural register namespace of the generated traces.
    jobs:
        Worker processes for simulation; ``1`` (the default) runs everything
        inline in this process.  Any value produces bit-identical results.
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables caching.
    trace_dir:
        Directory for the on-disk compiled-trace artifacts workers load
        instead of regenerating phase traces.  The default derives it from
        the result cache (``<cache_dir>/traces``; no artifacts without a
        cache); ``None`` disables artifacts explicitly.
    batching:
        Schedule per-trace batches (the default) or per-job
        (``batching=False``); results are bit-identical either way (see
        :class:`~repro.engine.parallel.ParallelRunner`).
    shared_memory:
        Publish compiled traces into shared-memory segments for parallel
        batched runs (``None`` = where available, the default); results are
        bit-identical either way.
    engine:
        Pre-built :class:`~repro.engine.parallel.ParallelRunner` to use
        instead of constructing one from ``jobs`` / ``cache_dir`` /
        ``trace_dir`` / ``batching`` / ``shared_memory`` (lets several
        runners share one cache, one worker pool and one set of resident
        trace segments).
    """

    def __init__(
        self,
        settings: Optional[ExperimentSettings] = None,
        register_space: RegisterSpace = DEFAULT_REGISTER_SPACE,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        trace_dir: Optional[str] = AUTO_TRACE_ROOT,
        batching: bool = True,
        shared_memory: Optional[bool] = None,
        engine: Optional[ParallelRunner] = None,
    ) -> None:
        self.settings = settings or ExperimentSettings()
        self.register_space = register_space
        if engine is None:
            cache = ResultCache(cache_dir) if cache_dir is not None else None
            engine = ParallelRunner(
                max_workers=jobs,
                cache=cache,
                trace_root=trace_dir,
                batching=batching,
                shared_memory=shared_memory,
            )
        self.engine = engine

    # -- lifecycle --------------------------------------------------------------------
    def shutdown(self) -> None:
        """Release the engine's worker pool and shared-memory segments.

        Idempotent and non-terminal (the substrate respawns on the next
        simulation), so it is always safe to call -- including on an engine
        the caller passed in and keeps using afterwards.  Long-lived
        processes (notebooks, services) should call it -- or use the runner
        as a context manager -- once a sweep is done, so worker processes
        and ``/dev/shm`` segments are returned promptly.
        """
        self.engine.shutdown()

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- job expansion ----------------------------------------------------------------
    def simulation_points(self, profile: BenchmarkProfile) -> List[SimulationPoint]:
        """Weighted simulation points of ``profile`` under the current settings."""
        return select_simulation_points(profile, max_phases=self.settings.max_phases)

    def make_job(
        self,
        profile: BenchmarkProfile,
        point: SimulationPoint,
        configuration: SteeringConfiguration,
    ) -> SimulationJob:
        """The engine job simulating ``point`` of ``profile`` under ``configuration``."""
        settings = self.settings
        return SimulationJob(
            profile=profile,
            phase=point.phase,
            configuration=configuration,
            trace_length=settings.trace_length,
            region_size=settings.region_size,
            num_clusters=settings.num_clusters,
            num_virtual_clusters=settings.num_virtual_clusters,
            config_overrides=tuple(sorted(settings.config_overrides.items())),
            register_space=self.register_space,
        )

    # -- running ---------------------------------------------------------------------
    def run_phase(
        self,
        profile: BenchmarkProfile,
        point: SimulationPoint,
        configuration: SteeringConfiguration,
    ) -> PhaseRunResult:
        """Simulate one simulation point under ``configuration``."""
        metrics = self.engine.run([self.make_job(profile, point, configuration)])[0]
        return PhaseRunResult(
            benchmark=profile.name,
            phase=point.phase,
            weight=point.weight,
            configuration=configuration.name,
            metrics=metrics,
        )

    def _assemble(
        self,
        profile: BenchmarkProfile,
        configuration_name: str,
        points: Sequence[SimulationPoint],
        phase_results: List[PhaseRunResult],
    ) -> BenchmarkResult:
        """Fold per-phase results into the PinPoints-weighted benchmark result."""
        if len(phase_results) != len(points):
            raise ValueError(
                f"{profile.name}/{configuration_name}: {len(phase_results)} phase results "
                f"for {len(points)} simulation points"
            )
        cycles = weighted_average([r.metrics.cycles for r in phase_results], points)
        copies = weighted_average([r.metrics.copies_generated for r in phase_results], points)
        stalls = weighted_average(
            [r.metrics.balance_stalls for r in phase_results], points
        )
        committed = weighted_average(
            [r.metrics.committed_uops for r in phase_results], points
        )
        return BenchmarkResult(
            benchmark=profile.name,
            suite=profile.suite,
            configuration=configuration_name,
            cycles=cycles,
            copies=copies,
            allocation_stalls=stalls,
            committed_uops=committed,
            phase_results=phase_results,
        )

    def run_benchmark(
        self, benchmark: Union[str, BenchmarkProfile], configuration: SteeringConfiguration
    ) -> BenchmarkResult:
        """Simulate every simulation point of ``benchmark`` under ``configuration``."""
        profile = benchmark if isinstance(benchmark, BenchmarkProfile) else profile_for(benchmark)
        phase_results = self.run_phase_matrix([profile], [configuration])[profile.name][
            configuration.name
        ]
        return self._assemble(
            profile, configuration.name, self.simulation_points(profile), phase_results
        )

    def run_phase_matrix(
        self,
        benchmarks: Sequence[Union[str, BenchmarkProfile]],
        configurations: Sequence[SteeringConfiguration],
    ) -> Dict[str, Dict[str, List[PhaseRunResult]]]:
        """Per-phase results of every benchmark under every configuration.

        The full ``benchmark x configuration x phase`` matrix is expanded
        into one job batch, so with ``jobs > 1`` every cell simulates
        concurrently.  Returns ``results[benchmark][configuration]`` as a
        phase-ordered list of :class:`PhaseRunResult`.
        """
        profiles = [
            benchmark if isinstance(benchmark, BenchmarkProfile) else profile_for(benchmark)
            for benchmark in benchmarks
        ]
        # Results are keyed by name on both axes; duplicates would silently
        # mix the metrics of distinct runs under one key.
        for axis, names in (
            ("benchmark", [profile.name for profile in profiles]),
            ("configuration", [configuration.name for configuration in configurations]),
        ):
            duplicates = {name for name in names if names.count(name) > 1}
            if duplicates:
                raise ValueError(f"duplicate {axis} names in one run: {sorted(duplicates)}")
        plan: List[Tuple[BenchmarkProfile, SteeringConfiguration, SimulationPoint]] = []
        jobs: List[SimulationJob] = []
        points_by_profile = {profile.name: self.simulation_points(profile) for profile in profiles}
        for profile in profiles:
            for configuration in configurations:
                for point in points_by_profile[profile.name]:
                    plan.append((profile, configuration, point))
                    jobs.append(self.make_job(profile, point, configuration))
        metrics = self.engine.run(jobs)
        results: Dict[str, Dict[str, List[PhaseRunResult]]] = {
            profile.name: {configuration.name: [] for configuration in configurations}
            for profile in profiles
        }
        for (profile, configuration, point), phase_metrics in zip(plan, metrics):
            results[profile.name][configuration.name].append(
                PhaseRunResult(
                    benchmark=profile.name,
                    phase=point.phase,
                    weight=point.weight,
                    configuration=configuration.name,
                    metrics=phase_metrics,
                )
            )
        return results

    def run_suite(
        self,
        benchmarks: Sequence[Union[str, BenchmarkProfile]],
        configurations: Sequence[SteeringConfiguration],
    ) -> Dict[str, Dict[str, BenchmarkResult]]:
        """Run every benchmark under every configuration.

        Returns ``results[benchmark_name][configuration_name]``.
        """
        profiles = [
            benchmark if isinstance(benchmark, BenchmarkProfile) else profile_for(benchmark)
            for benchmark in benchmarks
        ]
        matrix = self.run_phase_matrix(profiles, configurations)
        results: Dict[str, Dict[str, BenchmarkResult]] = {}
        for profile in profiles:
            points = self.simulation_points(profile)
            per_config: Dict[str, BenchmarkResult] = {}
            for configuration in configurations:
                per_config[configuration.name] = self._assemble(
                    profile,
                    configuration.name,
                    points,
                    matrix[profile.name][configuration.name],
                )
            results[profile.name] = per_config
        return results


# ---------------------------------------------------------------------------
# Comparison helpers shared by the figure drivers
# ---------------------------------------------------------------------------


def slowdown_percent(cycles: float, baseline_cycles: float) -> float:
    """Slowdown of a configuration relative to the baseline, in percent.

    Positive values mean the configuration is slower than the baseline (this
    is the y-axis of Figures 5 and 7).
    """
    if baseline_cycles <= 0:
        raise ValueError("baseline cycles must be positive")
    return (cycles / baseline_cycles - 1.0) * 100.0


def speedup_percent(cycles: float, other_cycles: float) -> float:
    """Speedup of a configuration over another, in percent (Figure 6 x-axis)."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return (other_cycles / cycles - 1.0) * 100.0


def reduction_percent(value: float, reference: float) -> float:
    """Relative reduction of ``value`` with respect to ``reference``, in percent.

    Used for both copy reduction and workload-balance (allocation stall)
    improvement.  When the reference is zero the reduction is defined as 0.
    """
    if reference <= 0:
        return 0.0
    return (reference - value) / reference * 100.0
