"""Table 1: steering-unit complexity comparison.

The paper compares the hardware structures needed by the hardware-only
occupancy-aware steering (OP) and the hybrid virtual clustering (VC).  This
driver reproduces the table for all five Table 3 configurations (plus any
extra policies the caller passes in) and adds the storage estimate and
serialisation flag from :mod:`repro.complexity.model`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.config import ClusterConfig
from repro.complexity.model import complexity_table
from repro.experiments.configs import SteeringConfiguration, TABLE3_CONFIGURATIONS
from repro.steering.base import SteeringPolicy


def run_table1(
    config: Optional[ClusterConfig] = None,
    num_virtual_clusters: int = 2,
    extra_policies: Optional[Sequence[SteeringPolicy]] = None,
    configurations: Optional[Sequence[SteeringConfiguration]] = None,
) -> List[Dict[str, object]]:
    """Reproduce Table 1 (extended to all evaluated configurations).

    Parameters
    ----------
    config:
        Machine configuration (2-cluster Table 2 machine by default).
    num_virtual_clusters:
        Mapping-table size of the VC policy.
    extra_policies:
        Additional policies (e.g. the ablation baselines) to include.
    configurations:
        Configurations to compare; Table 3 when omitted.
    """
    config = config or ClusterConfig(num_clusters=2)
    if configurations is None:
        configurations = [
            TABLE3_CONFIGURATIONS[name] for name in ("OP", "one-cluster", "OB", "RHOP", "VC")
        ]
    policies: List[SteeringPolicy] = []
    for configuration in configurations:
        policies.append(configuration.make_policy(config.num_clusters, num_virtual_clusters))
    if extra_policies:
        policies.extend(extra_policies)
    return complexity_table(policies, config)


def paper_table1_claims(rows: List[Dict[str, object]]) -> Dict[str, bool]:
    """Check the qualitative claims of Table 1 against reproduced rows.

    Returns a dictionary of named boolean checks (all should be ``True``):
    OP needs the dependence check and the vote unit, VC needs neither, both
    need workload-balance management, and VC's storage is far smaller.
    """
    by_name = {row["steering algorithm"]: row for row in rows}
    op = by_name["OP"]
    vc = by_name["VC"]
    return {
        "op_has_dependence_check": op["dependence check"] == "yes",
        "op_has_vote_unit": op["vote unit"] == "yes",
        "op_serialized": op["serialized"] == "yes",
        "vc_no_dependence_check": vc["dependence check"] == "no",
        "vc_no_vote_unit": vc["vote unit"] == "no",
        "vc_not_serialized": vc["serialized"] == "no",
        "both_have_workload_counters": (
            op["workload balance management"] == "yes"
            and vc["workload balance management"] == "yes"
        ),
        "vc_storage_much_smaller": float(vc["storage bits"]) < 0.25 * float(op["storage bits"]),
    }
