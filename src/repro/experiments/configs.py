"""The evaluated steering configurations (Table 3).

====================  =========================================================
Configuration         Description (Table 3)
====================  =========================================================
``OP``                Occupancy-aware hardware-only steering [15] -- the
                      baseline every other configuration is compared against.
``one-cluster``       Every instruction goes to one cluster.
``OB``                Static-placement dynamic-issue operation-based steering
                      [19] (SPDI).
``RHOP``              Region-based hierarchical operation partitioning [8].
``VC``                The paper's hybrid steering based on virtual clustering.
====================  =========================================================

A :class:`SteeringConfiguration` couples the compile-time pass (if any) with
the run-time policy so the harness can treat all five uniformly: annotate the
program, build the policy, simulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.partition.base import RegionPartitioner
from repro.partition.ob_partitioner import OperationBasedPartitioner
from repro.partition.rhop_partitioner import RhopPartitioner
from repro.partition.vc_partitioner import VirtualClusterPartitioner
from repro.steering.base import SteeringPolicy
from repro.steering.occupancy import OccupancyAwareSteering
from repro.steering.one_cluster import OneClusterSteering
from repro.steering.static_follow import StaticAssignmentSteering
from repro.steering.virtual_cluster import VirtualClusterSteering


@dataclass(frozen=True)
class SteeringConfiguration:
    """One evaluated configuration: a compile-time pass plus a run-time policy.

    Parameters
    ----------
    name:
        Configuration name used in tables (``"OP"``, ``"VC"``...).
    description:
        Table 3 description.
    partitioner_factory:
        Callable ``(num_clusters, num_virtual_clusters, region_size) ->``
        compile-time pass, or ``None`` for hardware-only configurations.
    policy_factory:
        Callable ``(num_clusters, num_virtual_clusters) ->`` run-time policy.
    """

    name: str
    description: str
    partitioner_factory: Optional[Callable[[int, int, int], RegionPartitioner]]
    policy_factory: Callable[[int, int], SteeringPolicy]

    @property
    def uses_compiler(self) -> bool:
        """True for software-only and hybrid configurations."""
        return self.partitioner_factory is not None

    def make_partitioner(
        self, num_clusters: int, num_virtual_clusters: int, region_size: int = 128
    ) -> Optional[RegionPartitioner]:
        """Instantiate the compile-time pass (or ``None``)."""
        if self.partitioner_factory is None:
            return None
        return self.partitioner_factory(num_clusters, num_virtual_clusters, region_size)

    def make_policy(self, num_clusters: int, num_virtual_clusters: int) -> SteeringPolicy:
        """Instantiate the run-time policy."""
        return self.policy_factory(num_clusters, num_virtual_clusters)


def _op_config() -> SteeringConfiguration:
    return SteeringConfiguration(
        name="OP",
        description="Occupancy-aware steering [15]",
        partitioner_factory=None,
        policy_factory=lambda clusters, vcs: OccupancyAwareSteering(),
    )


def _one_cluster_config() -> SteeringConfiguration:
    return SteeringConfiguration(
        name="one-cluster",
        description="Every instruction goes to one cluster",
        partitioner_factory=None,
        policy_factory=lambda clusters, vcs: OneClusterSteering(),
    )


def _ob_config() -> SteeringConfiguration:
    return SteeringConfiguration(
        name="OB",
        description="Static-placement dynamic-issue operation-based steering [19]",
        partitioner_factory=lambda clusters, vcs, region: OperationBasedPartitioner(
            num_clusters=clusters, region_size=region
        ),
        policy_factory=lambda clusters, vcs: StaticAssignmentSteering(name="OB"),
    )


def _rhop_config() -> SteeringConfiguration:
    return SteeringConfiguration(
        name="RHOP",
        description="Region-based hierarchical operation partition [8]",
        partitioner_factory=lambda clusters, vcs, region: RhopPartitioner(
            num_clusters=clusters, region_size=region
        ),
        policy_factory=lambda clusters, vcs: StaticAssignmentSteering(name="RHOP"),
    )


def _vc_config() -> SteeringConfiguration:
    return SteeringConfiguration(
        name="VC",
        description="Hybrid steering based on virtual clustering (this paper)",
        partitioner_factory=lambda clusters, vcs, region: VirtualClusterPartitioner(
            num_virtual_clusters=vcs, region_size=region
        ),
        policy_factory=lambda clusters, vcs: VirtualClusterSteering(num_virtual_clusters=vcs),
    )


#: The five configurations of Table 3, keyed by name.
TABLE3_CONFIGURATIONS: Dict[str, SteeringConfiguration] = {
    config.name: config
    for config in (
        _op_config(),
        _one_cluster_config(),
        _ob_config(),
        _rhop_config(),
        _vc_config(),
    )
}


def make_configuration(name: str) -> SteeringConfiguration:
    """Return the Table 3 configuration called ``name`` (case-sensitive)."""
    try:
        return TABLE3_CONFIGURATIONS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown configuration {name!r}; expected one of {sorted(TABLE3_CONFIGURATIONS)}"
        ) from exc


def table3_configurations(include_baseline: bool = True) -> List[SteeringConfiguration]:
    """All Table 3 configurations, optionally excluding the OP baseline."""
    names = ["OP", "one-cluster", "OB", "RHOP", "VC"]
    if not include_baseline:
        names.remove("OP")
    return [TABLE3_CONFIGURATIONS[name] for name in names]
