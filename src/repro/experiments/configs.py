"""The evaluated steering configurations (Table 3), as declarative specs.

====================  =========================================================
Configuration         Description (Table 3)
====================  =========================================================
``OP``                Occupancy-aware hardware-only steering [15] -- the
                      baseline every other configuration is compared against.
``one-cluster``       Every instruction goes to one cluster.
``OB``                Static-placement dynamic-issue operation-based steering
                      [19] (SPDI).
``RHOP``              Region-based hierarchical operation partitioning [8].
``VC``                The paper's hybrid steering based on virtual clustering.
====================  =========================================================

A :class:`SteeringConfiguration` is pure data: the *names* of its run-time
policy and compile-time pass in the scenario registries
(:mod:`repro.scenarios.registry`) plus their parameter dictionaries.  It
holds no callables, so every configuration -- including user-defined ones
built from custom registered policies -- is picklable, hashable, losslessly
JSON-serializable, and therefore cacheable and process-parallel in the
experiment engine.  The configuration *is* its own engine-facing identity;
there is no separate spec type and no inline-only fallback path.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple, Union

from repro.scenarios.registry import build_partitioner, build_policy

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids eager leaf imports
    from repro.partition.base import RegionPartitioner
    from repro.steering.base import SteeringPolicy

#: Parameter dictionaries travel as sorted ``(name, value)`` tuples inside the
#: frozen dataclass (hashable) and as plain dicts at the API and JSON surface.
Params = Tuple[Tuple[str, object], ...]


def _freeze_value(value: object) -> object:
    """A hashable form of one parameter value (lists become tuples, deeply).

    Values are restricted to JSON scalars and (nested) lists so the
    guarantee that every configuration is hashable holds by construction --
    a dict-valued parameter would otherwise only fail much later, at
    ``hash()`` time inside the engine.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(item) for item in value)
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(
        f"unsupported parameter value {value!r} ({type(value).__name__}); "
        "parameter values must be JSON scalars or lists of them"
    )


def _thaw_value(value: object) -> object:
    """Invert :func:`_freeze_value` (tuples back to lists, deeply)."""
    if isinstance(value, tuple):
        return [_thaw_value(item) for item in value]
    return value


def freeze_params(params: Union[Mapping[str, object], Params, None]) -> Params:
    """Normalise a parameter mapping to a sorted, hashable tuple of pairs.

    Accepts a dict, an (already frozen) tuple of pairs, or ``None``.  List
    values (e.g. from JSON) are converted to tuples -- recursively -- so the
    result is fully hashable and round-trips through
    ``to_dict``/``from_dict`` losslessly.
    """
    if params is None:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    frozen = []
    for name, value in items:
        if not isinstance(name, str):
            raise TypeError(f"parameter names must be strings, got {name!r}")
        frozen.append((name, _freeze_value(value)))
    return tuple(sorted(frozen))


def thaw_params(params: Params) -> Dict[str, object]:
    """The dict form of a frozen parameter tuple (tuples back to lists)."""
    return {name: _thaw_value(value) for name, value in params}


@dataclass(frozen=True)
class SteeringConfiguration:
    """One evaluated configuration: registry names plus parameters.

    Parameters
    ----------
    name:
        Configuration name used in result tables (``"OP"``, ``"VC"``,
        ``"VC(2->4)"``...).  Presentation only: it never enters the engine's
        cache keys, so two differently named but otherwise identical
        configurations share cached results.
    policy:
        Name of the run-time policy in the policy registry.
    policy_params:
        Extra keyword arguments for the policy builder.
    partitioner:
        Name of the compile-time pass in the partitioner registry, or
        ``None`` for hardware-only configurations.
    partitioner_params:
        Extra keyword arguments for the partitioner builder.
    description:
        Table 3 description (presentation only).
    num_virtual_clusters:
        Pinned virtual-cluster count of the Figure 7 / ablation variants, or
        ``None`` to follow the experiment settings' value.
    uses_virtual_clusters:
        Whether behaviour depends on the virtual-cluster count (only VC and
        its variants).  The engine keys cached results by the knobs a
        configuration actually consumes, so e.g. the OP baseline of a
        virtual-cluster sweep is simulated once, not once per count.
    """

    name: str
    policy: str
    policy_params: Params = ()
    partitioner: Optional[str] = None
    partitioner_params: Params = ()
    description: str = ""
    num_virtual_clusters: Optional[int] = None
    uses_virtual_clusters: bool = False

    def __post_init__(self) -> None:
        # Normalise dict-valued parameters so direct construction with plain
        # dicts stays hashable and equal to the frozen form.
        object.__setattr__(self, "policy_params", freeze_params(self.policy_params))
        object.__setattr__(self, "partitioner_params", freeze_params(self.partitioner_params))

    # -- construction ------------------------------------------------------------
    @property
    def uses_compiler(self) -> bool:
        """True for software-only and hybrid configurations."""
        return self.partitioner is not None

    def effective_virtual_clusters(self, num_virtual_clusters: int) -> int:
        """The configuration's pinned count, or the settings' value."""
        if self.num_virtual_clusters is not None:
            return self.num_virtual_clusters
        return num_virtual_clusters

    def make_partitioner(
        self, num_clusters: int, num_virtual_clusters: int, region_size: int = 128
    ) -> Optional["RegionPartitioner"]:
        """Instantiate the compile-time pass (or ``None``)."""
        if self.partitioner is None:
            return None
        return build_partitioner(
            self.partitioner,
            dict(self.partitioner_params),
            num_clusters,
            self.effective_virtual_clusters(num_virtual_clusters),
            region_size,
        )

    def make_policy(self, num_clusters: int, num_virtual_clusters: int) -> "SteeringPolicy":
        """Instantiate the run-time policy."""
        return build_policy(
            self.policy,
            dict(self.policy_params),
            num_clusters,
            self.effective_virtual_clusters(num_virtual_clusters),
        )

    # -- identity ----------------------------------------------------------------
    def cache_identity(self) -> Dict[str, object]:
        """The part of the configuration that affects simulation results.

        ``name`` and ``description`` are presentation only -- ``VC(2->4)``
        and a plain VC run with the same virtual-cluster count simulate
        identically, so the cache must not distinguish them.  The pinned
        virtual-cluster count is excluded too: the engine folds it into the
        *effective* count it keys (see
        :meth:`repro.engine.job.SimulationJob.cache_key`).
        """
        return {
            "policy": self.policy,
            "policy_params": thaw_params(self.policy_params),
            "partitioner": self.partitioner,
            "partitioner_params": thaw_params(self.partitioner_params),
        }

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-compatible dump (``from_dict`` round-trips exactly)."""
        return {
            "name": self.name,
            "policy": self.policy,
            "policy_params": thaw_params(self.policy_params),
            "partitioner": self.partitioner,
            "partitioner_params": thaw_params(self.partitioner_params),
            "description": self.description,
            "num_virtual_clusters": self.num_virtual_clusters,
            "uses_virtual_clusters": self.uses_virtual_clusters,
        }

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, object]]) -> "SteeringConfiguration":
        """Rebuild a configuration from :meth:`to_dict` output.

        A bare string is shorthand for the Table 3 configuration of that
        name, so scenario files can say ``"configurations": ["OP", "VC"]``.
        """
        if isinstance(data, str):
            return make_configuration(data)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown configuration fields {sorted(unknown)}; expected a subset "
                f"of {sorted(known)}"
            )
        if "name" not in data or "policy" not in data:
            raise ValueError("a configuration needs at least 'name' and 'policy'")
        return cls(**dict(data))


def _op_config() -> SteeringConfiguration:
    return SteeringConfiguration(
        name="OP",
        policy="OP",
        description="Occupancy-aware steering [15]",
    )


def _one_cluster_config() -> SteeringConfiguration:
    return SteeringConfiguration(
        name="one-cluster",
        policy="one-cluster",
        description="Every instruction goes to one cluster",
    )


def _ob_config() -> SteeringConfiguration:
    return SteeringConfiguration(
        name="OB",
        policy="static",
        policy_params={"name": "OB"},
        partitioner="OB",
        description="Static-placement dynamic-issue operation-based steering [19]",
    )


def _rhop_config() -> SteeringConfiguration:
    return SteeringConfiguration(
        name="RHOP",
        policy="static",
        policy_params={"name": "RHOP"},
        partitioner="RHOP",
        description="Region-based hierarchical operation partition [8]",
    )


def _vc_config() -> SteeringConfiguration:
    return SteeringConfiguration(
        name="VC",
        policy="VC",
        partitioner="VC",
        description="Hybrid steering based on virtual clustering (this paper)",
        uses_virtual_clusters=True,
    )


#: The five configurations of Table 3, keyed by name.
TABLE3_CONFIGURATIONS: Dict[str, SteeringConfiguration] = {
    config.name: config
    for config in (
        _op_config(),
        _one_cluster_config(),
        _ob_config(),
        _rhop_config(),
        _vc_config(),
    )
}


def make_configuration(name: str) -> SteeringConfiguration:
    """Return the Table 3 configuration called ``name`` (case-sensitive)."""
    try:
        return TABLE3_CONFIGURATIONS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown configuration {name!r}; expected one of {sorted(TABLE3_CONFIGURATIONS)}"
        ) from exc


def vc_variant(display_name: str, num_virtual_clusters: int) -> SteeringConfiguration:
    """A VC configuration with an explicit virtual-cluster count and display name.

    Used by the Figure 7 scalability study (``VC(4->4)``, ``VC(2->4)``) and
    the virtual-cluster ablation sweep.  Being plain data, the variant is as
    cacheable and process-parallel as the stock Table 3 configurations.
    """
    base = TABLE3_CONFIGURATIONS["VC"]
    return replace(
        base,
        name=display_name,
        description=f"{base.description} ({num_virtual_clusters} virtual clusters)",
        num_virtual_clusters=num_virtual_clusters,
    )


def table3_configurations(include_baseline: bool = True) -> List[SteeringConfiguration]:
    """All Table 3 configurations, optionally excluding the OP baseline."""
    names = ["OP", "one-cluster", "OB", "RHOP", "VC"]
    if not include_baseline:
        names.remove("OP")
    return [TABLE3_CONFIGURATIONS[name] for name in names]
