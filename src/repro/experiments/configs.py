"""The evaluated steering configurations (Table 3).

====================  =========================================================
Configuration         Description (Table 3)
====================  =========================================================
``OP``                Occupancy-aware hardware-only steering [15] -- the
                      baseline every other configuration is compared against.
``one-cluster``       Every instruction goes to one cluster.
``OB``                Static-placement dynamic-issue operation-based steering
                      [19] (SPDI).
``RHOP``              Region-based hierarchical operation partitioning [8].
``VC``                The paper's hybrid steering based on virtual clustering.
====================  =========================================================

A :class:`SteeringConfiguration` couples the compile-time pass (if any) with
the run-time policy so the harness can treat all five uniformly: annotate the
program, build the policy, simulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.partition.base import RegionPartitioner
from repro.partition.ob_partitioner import OperationBasedPartitioner
from repro.partition.rhop_partitioner import RhopPartitioner
from repro.partition.vc_partitioner import VirtualClusterPartitioner
from repro.steering.base import SteeringPolicy
from repro.steering.occupancy import OccupancyAwareSteering
from repro.steering.one_cluster import OneClusterSteering
from repro.steering.static_follow import StaticAssignmentSteering
from repro.steering.virtual_cluster import VirtualClusterSteering


@dataclass(frozen=True)
class ConfigurationSpec:
    """Picklable identity of a :class:`SteeringConfiguration`.

    The parallel experiment engine ships jobs to worker processes and keys
    its on-disk result cache by the *content* of a configuration, but a
    :class:`SteeringConfiguration` holds factory callables (lambdas) that can
    be neither pickled nor hashed stably.  A spec captures the information
    needed to rebuild the configuration from the Table 3 registry instead:

    Parameters
    ----------
    base:
        Name of the Table 3 configuration this one is derived from.
    display_name:
        Name used in result tables (``"VC(2->4)"`` for the Figure 7
        variants); equals ``base`` for the stock configurations.
    num_virtual_clusters:
        Virtual-cluster override of the VC variants, or ``None`` to use the
        experiment settings' value.
    """

    base: str
    display_name: str
    num_virtual_clusters: Optional[int] = None

    #: Engine hint: specs built from the registry may be pickled to worker
    #: processes and hashed into cache keys.
    transportable = True

    def resolve(self) -> "SteeringConfiguration":
        """Rebuild the :class:`SteeringConfiguration` this spec describes."""
        base = make_configuration(self.base)
        if self.num_virtual_clusters is None and self.display_name == base.name:
            return base
        return _derive_variant(base, self.display_name, self.num_virtual_clusters)

    def cache_identity(self) -> Dict[str, object]:
        """The part of the spec that affects simulation results.

        ``display_name`` is presentation only: ``VC(2->4)`` and a plain VC
        run with the same virtual-cluster count simulate identically, so the
        cache must not distinguish them.
        """
        return {"base": self.base, "num_virtual_clusters": self.num_virtual_clusters}


@dataclass(frozen=True)
class SteeringConfiguration:
    """One evaluated configuration: a compile-time pass plus a run-time policy.

    Parameters
    ----------
    name:
        Configuration name used in tables (``"OP"``, ``"VC"``...).
    description:
        Table 3 description.
    partitioner_factory:
        Callable ``(num_clusters, num_virtual_clusters, region_size) ->``
        compile-time pass, or ``None`` for hardware-only configurations.
    policy_factory:
        Callable ``(num_clusters, num_virtual_clusters) ->`` run-time policy.
    spec:
        Transportable identity used by the parallel engine; filled in for the
        Table 3 registry and the :func:`vc_variant` derivatives.
    uses_virtual_clusters:
        Whether the configuration's behaviour depends on the virtual-cluster
        count (only VC and its variants).  The engine keys cached results by
        the knobs a configuration actually consumes, so e.g. the OP baseline
        of a virtual-cluster sweep is simulated once, not once per count.
    """

    name: str
    description: str
    partitioner_factory: Optional[Callable[[int, int, int], RegionPartitioner]]
    policy_factory: Callable[[int, int], SteeringPolicy]
    spec: Optional[ConfigurationSpec] = None
    uses_virtual_clusters: bool = False

    @property
    def uses_compiler(self) -> bool:
        """True for software-only and hybrid configurations."""
        return self.partitioner_factory is not None

    def make_partitioner(
        self, num_clusters: int, num_virtual_clusters: int, region_size: int = 128
    ) -> Optional[RegionPartitioner]:
        """Instantiate the compile-time pass (or ``None``)."""
        if self.partitioner_factory is None:
            return None
        return self.partitioner_factory(num_clusters, num_virtual_clusters, region_size)

    def make_policy(self, num_clusters: int, num_virtual_clusters: int) -> SteeringPolicy:
        """Instantiate the run-time policy."""
        return self.policy_factory(num_clusters, num_virtual_clusters)


def _op_config() -> SteeringConfiguration:
    return SteeringConfiguration(
        name="OP",
        description="Occupancy-aware steering [15]",
        partitioner_factory=None,
        policy_factory=lambda clusters, vcs: OccupancyAwareSteering(),
        spec=ConfigurationSpec(base="OP", display_name="OP"),
    )


def _one_cluster_config() -> SteeringConfiguration:
    return SteeringConfiguration(
        name="one-cluster",
        description="Every instruction goes to one cluster",
        partitioner_factory=None,
        policy_factory=lambda clusters, vcs: OneClusterSteering(),
        spec=ConfigurationSpec(base="one-cluster", display_name="one-cluster"),
    )


def _ob_config() -> SteeringConfiguration:
    return SteeringConfiguration(
        name="OB",
        description="Static-placement dynamic-issue operation-based steering [19]",
        partitioner_factory=lambda clusters, vcs, region: OperationBasedPartitioner(
            num_clusters=clusters, region_size=region
        ),
        policy_factory=lambda clusters, vcs: StaticAssignmentSteering(name="OB"),
        spec=ConfigurationSpec(base="OB", display_name="OB"),
    )


def _rhop_config() -> SteeringConfiguration:
    return SteeringConfiguration(
        name="RHOP",
        description="Region-based hierarchical operation partition [8]",
        partitioner_factory=lambda clusters, vcs, region: RhopPartitioner(
            num_clusters=clusters, region_size=region
        ),
        policy_factory=lambda clusters, vcs: StaticAssignmentSteering(name="RHOP"),
        spec=ConfigurationSpec(base="RHOP", display_name="RHOP"),
    )


def _vc_config() -> SteeringConfiguration:
    return SteeringConfiguration(
        name="VC",
        description="Hybrid steering based on virtual clustering (this paper)",
        partitioner_factory=lambda clusters, vcs, region: VirtualClusterPartitioner(
            num_virtual_clusters=vcs, region_size=region
        ),
        policy_factory=lambda clusters, vcs: VirtualClusterSteering(num_virtual_clusters=vcs),
        spec=ConfigurationSpec(base="VC", display_name="VC"),
        uses_virtual_clusters=True,
    )


#: The five configurations of Table 3, keyed by name.
TABLE3_CONFIGURATIONS: Dict[str, SteeringConfiguration] = {
    config.name: config
    for config in (
        _op_config(),
        _one_cluster_config(),
        _ob_config(),
        _rhop_config(),
        _vc_config(),
    )
}


def make_configuration(name: str) -> SteeringConfiguration:
    """Return the Table 3 configuration called ``name`` (case-sensitive)."""
    try:
        return TABLE3_CONFIGURATIONS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown configuration {name!r}; expected one of {sorted(TABLE3_CONFIGURATIONS)}"
        ) from exc


def _derive_variant(
    base: SteeringConfiguration, display_name: str, num_virtual_clusters: Optional[int]
) -> SteeringConfiguration:
    """Derive a configuration from ``base`` with a pinned virtual-cluster count."""
    vcs_override = num_virtual_clusters
    partitioner_factory = None
    if base.partitioner_factory is not None:
        partitioner_factory = lambda clusters, vcs, region: base.partitioner_factory(  # noqa: E731
            clusters, vcs_override if vcs_override is not None else vcs, region
        )
    return SteeringConfiguration(
        name=display_name,
        description=(
            f"{base.description} ({vcs_override} virtual clusters)"
            if vcs_override is not None
            else base.description
        ),
        partitioner_factory=partitioner_factory,
        policy_factory=lambda clusters, vcs: base.policy_factory(
            clusters, vcs_override if vcs_override is not None else vcs
        ),
        spec=ConfigurationSpec(
            base=base.name, display_name=display_name, num_virtual_clusters=vcs_override
        ),
        uses_virtual_clusters=base.uses_virtual_clusters,
    )


def vc_variant(display_name: str, num_virtual_clusters: int) -> SteeringConfiguration:
    """A VC configuration with an explicit virtual-cluster count and display name.

    Used by the Figure 7 scalability study (``VC(4->4)``, ``VC(2->4)``) and
    the virtual-cluster ablation sweep.  The returned configuration carries a
    :class:`ConfigurationSpec`, so it can be dispatched to engine worker
    processes and cached on disk like the stock Table 3 configurations.
    """
    return _derive_variant(TABLE3_CONFIGURATIONS["VC"], display_name, num_virtual_clusters)


@dataclass(frozen=True)
class InlineConfigurationSpec:
    """Fallback identity of a hand-built :class:`SteeringConfiguration`.

    Hand-built configurations (``spec=None``) hold arbitrary callables, so
    they can be neither pickled to worker processes nor hashed into stable
    cache keys -- but they *can* still run inline in the calling process,
    exactly as the pre-engine serial runner executed them.  The engine
    detects ``transportable = False`` and runs such jobs in-process with
    caching disabled.
    """

    configuration: SteeringConfiguration

    #: Engine hint: never ship this job to a worker or cache its result.
    transportable = False

    def resolve(self) -> SteeringConfiguration:
        """The wrapped configuration itself (no registry lookup)."""
        return self.configuration

    @property
    def display_name(self) -> str:
        """Name used in result tables."""
        return self.configuration.name

    def cache_identity(self) -> Dict[str, object]:
        raise ValueError(
            f"configuration {self.configuration.name!r} has no ConfigurationSpec and "
            "cannot be cached; build it via TABLE3_CONFIGURATIONS or vc_variant() "
            "(or attach a spec) to enable caching and process-parallel execution"
        )


def spec_for(configuration: SteeringConfiguration):
    """The engine-facing identity of ``configuration``.

    Returns the configuration's transportable :class:`ConfigurationSpec` when
    it has one (the Table 3 registry and :func:`vc_variant` attach specs), or
    an :class:`InlineConfigurationSpec` fallback for hand-built
    configurations -- those still execute, but only inline in the calling
    process and without result caching.
    """
    if configuration.spec is not None:
        return configuration.spec
    return InlineConfigurationSpec(configuration)


def table3_configurations(include_baseline: bool = True) -> List[SteeringConfiguration]:
    """All Table 3 configurations, optionally excluding the OP baseline."""
    names = ["OP", "one-cluster", "OB", "RHOP", "VC"]
    if not include_baseline:
        names.remove("OP")
    return [TABLE3_CONFIGURATIONS[name] for name in names]
