"""Sensitivity studies beyond the paper's figures.

DESIGN.md calls out four design choices whose impact is worth quantifying:

* **virtual-cluster count** -- the paper fixes 2 VCs for the 2-cluster
  machine and studies 2 vs 4 for the 4-cluster machine; the sweep here
  generalises that study,
* **inter-cluster link latency** -- how quickly the benefit of copy reduction
  grows as communication gets more expensive,
* **compiler window (region size)** -- the "bigger window" advantage claimed
  for software steering,
* **issue-queue size** -- smaller queues make workload balance (and therefore
  the run-time half of the hybrid scheme) more important.

Each sweep runs a subset of benchmarks under the VC configuration (and the
OP baseline where a relative number is needed) and reports weighted cycles,
copies and allocation stalls per sweep point.

All sweep points route through the experiment engine: pass ``jobs`` to
simulate each point's job matrix in parallel, and ``cache_dir`` to share the
on-disk result cache across sweeps (overlapping points -- e.g. the common
baseline settings -- are then simulated once).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.engine.cache import ResultCache
from repro.engine.parallel import ParallelRunner
from repro.experiments.configs import TABLE3_CONFIGURATIONS, SteeringConfiguration, vc_variant
from repro.experiments.runner import (
    BenchmarkResult,
    ExperimentRunner,
    ExperimentSettings,
    slowdown_percent,
)

#: Default benchmark subset for the sweeps: a mix of regular FP, irregular
#: INT and memory-bound traces.
DEFAULT_ABLATION_BENCHMARKS = (
    "164.gzip-1",
    "176.gcc-1",
    "181.mcf",
    "178.galgel",
    "171.swim",
)


@dataclass
class AblationPoint:
    """One sweep point: parameter value plus aggregate metrics."""

    parameter: str
    value: object
    configuration: str
    cycles: float
    copies: float
    allocation_stalls: float
    slowdown_vs_op: Optional[float] = None


@dataclass
class AblationResult:
    """All points of one sweep."""

    parameter: str
    points: List[AblationPoint] = field(default_factory=list)

    def values(self) -> List[object]:
        """Distinct swept values, in insertion order."""
        seen: List[object] = []
        for point in self.points:
            if point.value not in seen:
                seen.append(point.value)
        return seen

    def for_value(self, value: object) -> List[AblationPoint]:
        """Points measured at one swept value."""
        return [p for p in self.points if p.value == value]


def aggregate_suite(
    suite: Dict[str, Dict[str, BenchmarkResult]],
    benchmarks: Sequence[str],
    configuration_name: str,
) -> Dict[str, float]:
    """Sum one configuration's weighted cycles/copies/stalls over ``benchmarks``.

    Shared by the legacy sweep drivers here and the scenario ``sweep``
    report kind, so both aggregate sweep points identically.
    """
    cycles = copies = stalls = 0.0
    for name in benchmarks:
        result = suite[name][configuration_name]
        cycles += result.cycles
        copies += result.copies
        stalls += result.allocation_stalls
    return {"cycles": cycles, "copies": copies, "allocation_stalls": stalls}


def _shared_engine(
    jobs: int, cache_dir: Optional[str], engine: Optional[ParallelRunner]
) -> ParallelRunner:
    """One engine per sweep, so every sweep point reuses the same worker pool
    (and cache counters) instead of spawning a fresh pool per point."""
    if engine is not None:
        return engine
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return ParallelRunner(max_workers=jobs, cache=cache)


def _run_point(
    parameter: str,
    value: object,
    settings: ExperimentSettings,
    benchmarks: Sequence[str],
    configurations: Sequence[SteeringConfiguration],
    result: AblationResult,
    engine: ParallelRunner,
) -> None:
    runner = ExperimentRunner(settings, engine=engine)
    suite = runner.run_suite(benchmarks, configurations)
    baseline_cycles: Optional[float] = None
    aggregates = {}
    for configuration in configurations:
        aggregates[configuration.name] = aggregate_suite(suite, benchmarks, configuration.name)
        if configuration.name == "OP":
            baseline_cycles = aggregates[configuration.name]["cycles"]
    for configuration in configurations:
        data = aggregates[configuration.name]
        slowdown = (
            slowdown_percent(data["cycles"], baseline_cycles)
            if baseline_cycles and configuration.name != "OP"
            else None
        )
        result.points.append(
            AblationPoint(
                parameter=parameter,
                value=value,
                configuration=configuration.name,
                cycles=data["cycles"],
                copies=data["copies"],
                allocation_stalls=data["allocation_stalls"],
                slowdown_vs_op=slowdown,
            )
        )


def sweep_virtual_clusters(
    counts: Sequence[int] = (1, 2, 4, 8),
    benchmarks: Sequence[str] = DEFAULT_ABLATION_BENCHMARKS,
    base_settings: Optional[ExperimentSettings] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    engine: Optional[ParallelRunner] = None,
) -> AblationResult:
    """Sweep the number of virtual clusters on the 2-cluster machine."""
    base = base_settings or ExperimentSettings(num_clusters=2)
    result = AblationResult(parameter="num_virtual_clusters")
    engine = _shared_engine(jobs, cache_dir, engine)
    for count in counts:
        settings = ExperimentSettings(
            num_clusters=base.num_clusters,
            num_virtual_clusters=count,
            trace_length=base.trace_length,
            max_phases=base.max_phases,
            region_size=base.region_size,
            config_overrides=dict(base.config_overrides),
        )
        configurations = [TABLE3_CONFIGURATIONS["OP"], vc_variant(f"VC({count})", count)]
        _run_point(
            "num_virtual_clusters", count, settings, benchmarks, configurations, result,
            engine=engine,
        )
    return result


def sweep_link_latency(
    latencies: Sequence[int] = (1, 2, 4, 8),
    benchmarks: Sequence[str] = DEFAULT_ABLATION_BENCHMARKS,
    base_settings: Optional[ExperimentSettings] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    engine: Optional[ParallelRunner] = None,
) -> AblationResult:
    """Sweep the inter-cluster link latency (VC and RHOP versus OP)."""
    base = base_settings or ExperimentSettings(num_clusters=2)
    result = AblationResult(parameter="link_latency")
    engine = _shared_engine(jobs, cache_dir, engine)
    for latency in latencies:
        overrides = dict(base.config_overrides)
        overrides["link_latency"] = latency
        settings = ExperimentSettings(
            num_clusters=base.num_clusters,
            num_virtual_clusters=base.num_virtual_clusters,
            trace_length=base.trace_length,
            max_phases=base.max_phases,
            region_size=base.region_size,
            config_overrides=overrides,
        )
        configurations = [
            TABLE3_CONFIGURATIONS["OP"],
            TABLE3_CONFIGURATIONS["RHOP"],
            TABLE3_CONFIGURATIONS["VC"],
        ]
        _run_point(
            "link_latency", latency, settings, benchmarks, configurations, result,
            engine=engine,
        )
    return result


def sweep_region_size(
    sizes: Sequence[int] = (16, 32, 64, 128, 256),
    benchmarks: Sequence[str] = DEFAULT_ABLATION_BENCHMARKS,
    base_settings: Optional[ExperimentSettings] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    engine: Optional[ParallelRunner] = None,
) -> AblationResult:
    """Sweep the compiler window (region size) used by the software passes."""
    base = base_settings or ExperimentSettings(num_clusters=2)
    result = AblationResult(parameter="region_size")
    engine = _shared_engine(jobs, cache_dir, engine)
    for size in sizes:
        settings = ExperimentSettings(
            num_clusters=base.num_clusters,
            num_virtual_clusters=base.num_virtual_clusters,
            trace_length=base.trace_length,
            max_phases=base.max_phases,
            region_size=size,
            config_overrides=dict(base.config_overrides),
        )
        configurations = [
            TABLE3_CONFIGURATIONS["OP"],
            TABLE3_CONFIGURATIONS["RHOP"],
            TABLE3_CONFIGURATIONS["VC"],
        ]
        _run_point(
            "region_size", size, settings, benchmarks, configurations, result,
            engine=engine,
        )
    return result


def sweep_issue_queue_size(
    sizes: Sequence[int] = (16, 32, 48, 96),
    benchmarks: Sequence[str] = DEFAULT_ABLATION_BENCHMARKS,
    base_settings: Optional[ExperimentSettings] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    engine: Optional[ParallelRunner] = None,
) -> AblationResult:
    """Sweep the per-cluster integer/FP issue queue sizes."""
    base = base_settings or ExperimentSettings(num_clusters=2)
    result = AblationResult(parameter="issue_queue_size")
    engine = _shared_engine(jobs, cache_dir, engine)
    for size in sizes:
        overrides = dict(base.config_overrides)
        overrides["iq_int_size"] = size
        overrides["iq_fp_size"] = size
        settings = ExperimentSettings(
            num_clusters=base.num_clusters,
            num_virtual_clusters=base.num_virtual_clusters,
            trace_length=base.trace_length,
            max_phases=base.max_phases,
            region_size=base.region_size,
            config_overrides=overrides,
        )
        configurations = [TABLE3_CONFIGURATIONS["OP"], TABLE3_CONFIGURATIONS["VC"]]
        _run_point(
            "issue_queue_size", size, settings, benchmarks, configurations, result,
            engine=engine,
        )
    return result
