"""Figure 5: 2-cluster slowdown of every configuration with respect to OP.

The paper reports, for the 2-cluster machine, the per-benchmark slowdown of
``one-cluster``, ``OB``, ``RHOP`` and ``VC`` relative to the hardware-only
``OP`` baseline -- panel (a) for SPECint, panel (b) for SPECfp -- plus the
INT / FP / CPU2000 averages in panel (c).  Headline numbers: one-cluster
12.19 %, OB 6.50 %, RHOP 5.40 %, VC 2.62 % average slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.configs import TABLE3_CONFIGURATIONS, SteeringConfiguration
from repro.experiments.runner import (
    BenchmarkResult,
    ExperimentRunner,
    ExperimentSettings,
    slowdown_percent,
)
from repro.workloads.spec2000 import all_trace_names, profile_for

#: Configurations plotted in Figure 5 (everything but the OP baseline).
FIGURE5_CONFIGURATIONS = ("one-cluster", "OB", "RHOP", "VC")


@dataclass
class Figure5Result:
    """Reproduced Figure 5: per-benchmark and average slowdowns versus OP."""

    #: slowdown[benchmark][configuration] in percent.
    slowdowns: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Raw per-benchmark results for deeper inspection.
    raw: Dict[str, Dict[str, BenchmarkResult]] = field(default_factory=dict)
    #: Benchmarks in the integer suite (panel a).
    int_benchmarks: List[str] = field(default_factory=list)
    #: Benchmarks in the floating-point suite (panel b).
    fp_benchmarks: List[str] = field(default_factory=list)
    #: Plotted (non-baseline) configuration names, in table-column order.
    plotted: List[str] = field(default_factory=lambda: list(FIGURE5_CONFIGURATIONS))

    def average(self, configuration: str, suite: str = "all") -> float:
        """Average slowdown of ``configuration`` over a suite (panel c)."""
        if suite == "int":
            names = self.int_benchmarks
        elif suite == "fp":
            names = self.fp_benchmarks
        elif suite == "all":
            names = self.int_benchmarks + self.fp_benchmarks
        else:
            raise ValueError(f"unknown suite {suite!r}")
        values = [self.slowdowns[name][configuration] for name in names if name in self.slowdowns]
        return float(np.mean(values)) if values else 0.0

    def averages_table(self) -> List[Dict[str, object]]:
        """Panel (c): INT / FP / CPU2000 average slowdowns of each configuration."""
        rows = []
        for configuration in self.plotted:
            rows.append(
                {
                    "configuration": configuration,
                    "INT AVG (%)": round(self.average(configuration, "int"), 2),
                    "FP AVG (%)": round(self.average(configuration, "fp"), 2),
                    "CPU2000 AVG (%)": round(self.average(configuration, "all"), 2),
                }
            )
        return rows

    def benchmark_rows(self, suite: str) -> List[Dict[str, object]]:
        """Panel (a) or (b): per-benchmark slowdown rows for one suite."""
        names = self.int_benchmarks if suite == "int" else self.fp_benchmarks
        rows = []
        for name in names:
            row: Dict[str, object] = {"benchmark": name}
            for configuration in self.plotted:
                row[f"{configuration} (%)"] = round(self.slowdowns[name][configuration], 2)
            rows.append(row)
        return rows


def run_figure5(
    settings: Optional[ExperimentSettings] = None,
    benchmarks: Optional[Sequence[str]] = None,
    runner: Optional[ExperimentRunner] = None,
    configurations: Optional[Sequence[SteeringConfiguration]] = None,
) -> Figure5Result:
    """Reproduce Figure 5 on the 2-cluster machine.

    Parameters
    ----------
    settings:
        Experiment settings (2 clusters / 2 virtual clusters by default).
    benchmarks:
        Trace names to run; the full SPEC CPU2000 set when omitted.
    runner:
        Optionally reuse an existing runner (and its trace cache).
    configurations:
        Baseline first, then the plotted configurations; the paper's Table 3
        line-up (OP baseline) when omitted.
    """
    settings = settings or ExperimentSettings(num_clusters=2, num_virtual_clusters=2)
    if settings.num_clusters != 2:
        raise ValueError("Figure 5 is defined for the 2-cluster machine")
    runner = runner or ExperimentRunner(settings)
    names = list(benchmarks) if benchmarks is not None else all_trace_names("all")
    if configurations is None:
        configurations = [TABLE3_CONFIGURATIONS["OP"]] + [
            TABLE3_CONFIGURATIONS[name] for name in FIGURE5_CONFIGURATIONS
        ]
    if len(configurations) < 2:
        raise ValueError("Figure 5 needs a baseline plus at least one configuration")
    baseline_name = configurations[0].name
    plotted = [configuration.name for configuration in configurations[1:]]
    raw = runner.run_suite(names, list(configurations))
    result = Figure5Result(raw=raw, plotted=plotted)
    for name in names:
        suite = profile_for(name).suite
        if suite == "int":
            result.int_benchmarks.append(name)
        else:
            result.fp_benchmarks.append(name)
        baseline = raw[name][baseline_name].cycles
        result.slowdowns[name] = {
            configuration: slowdown_percent(raw[name][configuration].cycles, baseline)
            for configuration in plotted
        }
    return result
