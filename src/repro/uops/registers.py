"""Architectural register model.

The compiler substrate and the simulator share a flat integer register
namespace.  Integer registers occupy ids ``[0, num_int)`` and floating-point
registers occupy ids ``[num_int, num_int + num_fp)``.  A small
:class:`RegisterSpace` object provides allocation helpers for the synthetic
program generator and classification helpers for the rename/steering logic.

The physical register files of each cluster (256 INT + 256 FP entries in
Table 2) are modelled in :mod:`repro.cluster.regfile`; this module only covers
the *architectural* registers named by instructions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RegisterKind(enum.IntEnum):
    """Architectural register kind."""

    INT = 0
    FP = 1


@dataclass(frozen=True)
class RegisterSpace:
    """Description of the architectural register namespace.

    Parameters
    ----------
    num_int:
        Number of architectural integer registers.
    num_fp:
        Number of architectural floating-point registers.

    Notes
    -----
    The default of 64+64 approximates the fused x86 architectural +
    micro-architectural temporaries visible after µop cracking; the steering
    algorithms only care that values are named consistently so that data
    dependences can be tracked.
    """

    num_int: int = 64
    num_fp: int = 64

    @property
    def total(self) -> int:
        """Total number of architectural registers."""
        return self.num_int + self.num_fp

    def int_register(self, index: int) -> int:
        """Return the register id of integer register ``index``."""
        if not 0 <= index < self.num_int:
            raise ValueError(f"integer register index {index} out of range [0, {self.num_int})")
        return index

    def fp_register(self, index: int) -> int:
        """Return the register id of floating-point register ``index``."""
        if not 0 <= index < self.num_fp:
            raise ValueError(f"fp register index {index} out of range [0, {self.num_fp})")
        return self.num_int + index

    def kind_of(self, reg: int) -> RegisterKind:
        """Return the :class:`RegisterKind` of register id ``reg``."""
        if not 0 <= reg < self.total:
            raise ValueError(f"register id {reg} out of range [0, {self.total})")
        return RegisterKind.INT if reg < self.num_int else RegisterKind.FP

    def is_int(self, reg: int) -> bool:
        """True if ``reg`` is an integer register."""
        return self.kind_of(reg) == RegisterKind.INT

    def is_fp(self, reg: int) -> bool:
        """True if ``reg`` is a floating-point register."""
        return self.kind_of(reg) == RegisterKind.FP

    def name(self, reg: int) -> str:
        """Human-readable name (``R7`` / ``F3``) for register id ``reg``."""
        if self.kind_of(reg) == RegisterKind.INT:
            return f"R{reg}"
        return f"F{reg - self.num_int}"


#: Register space shared by the synthetic workloads and the examples.
DEFAULT_REGISTER_SPACE = RegisterSpace()
