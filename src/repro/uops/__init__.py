"""Micro-op (µop) and ISA model.

This package defines the instruction representation shared by the compiler
substrate (:mod:`repro.program`, :mod:`repro.partition`) and the clustered
microarchitecture simulator (:mod:`repro.cluster`):

* :mod:`repro.uops.opcodes` -- µop classes, execution latencies and issue-queue
  routing (integer / floating-point / copy).
* :mod:`repro.uops.registers` -- the architectural register model (integer and
  floating-point register namespaces).
* :mod:`repro.uops.uop` -- :class:`StaticInstruction` (the compiler-visible
  instruction) and :class:`DynamicUop` (one dynamic instance executed by the
  simulator).
* :mod:`repro.uops.encoding` -- the ISA extension of the paper: the
  ``vc_id`` / chain-leader annotation carried from the compiler to the
  hardware steering unit, including a compact binary encoding.
* :mod:`repro.uops.compiled` -- :class:`CompiledTrace`, the
  structure-of-arrays form of a dynamic trace that the simulation kernel
  consumes and the engine persists as on-disk artifacts (see DESIGN.md).
"""

from repro.uops.compiled import (
    NO_ANNOTATION,
    CompiledTrace,
    CompiledUopView,
    compile_trace,
)
from repro.uops.encoding import SteeringAnnotation, encode_annotation, decode_annotation
from repro.uops.opcodes import (
    UopClass,
    latency_of,
    queue_of,
    IssueQueueKind,
    is_memory,
    is_floating_point,
    is_branch,
    INT_OPCODES,
    FP_OPCODES,
    MEM_OPCODES,
)
from repro.uops.registers import RegisterSpace, RegisterKind
from repro.uops.uop import StaticInstruction, DynamicUop

__all__ = [
    "UopClass",
    "IssueQueueKind",
    "latency_of",
    "queue_of",
    "is_memory",
    "is_floating_point",
    "is_branch",
    "INT_OPCODES",
    "FP_OPCODES",
    "MEM_OPCODES",
    "RegisterSpace",
    "RegisterKind",
    "StaticInstruction",
    "DynamicUop",
    "CompiledTrace",
    "CompiledUopView",
    "compile_trace",
    "NO_ANNOTATION",
    "SteeringAnnotation",
    "encode_annotation",
    "decode_annotation",
]
