"""µop classes, latencies and issue-queue routing.

The paper's processor executes x86 micro-ops.  We model the µop stream at the
granularity that matters for steering: every µop belongs to a *class* that
determines

* its execution latency on a functional unit,
* which per-cluster issue queue it occupies (integer, floating-point, or the
  dedicated copy queue of Table 2), and
* whether it touches memory (and therefore the unified LSQ / data cache).

Latencies follow common values for the era of the paper (Pentium-4 class
cores); the cross-scheme comparisons in the evaluation are insensitive to the
exact numbers as long as loads, FP and long-latency operations are much
slower than simple ALU operations.
"""

from __future__ import annotations

import enum
from typing import Mapping


class UopClass(enum.IntEnum):
    """Classes of micro-operations understood by the simulator."""

    INT_ALU = 0      #: simple integer ALU operation (add, logic, shift)
    INT_MUL = 1      #: integer multiply
    INT_DIV = 2      #: integer divide
    LOAD = 3         #: memory load (address generation + cache access)
    STORE = 4        #: memory store (address generation; data written at commit)
    BRANCH = 5       #: conditional / unconditional branch, call, return
    FP_ADD = 6       #: floating-point add / subtract / convert
    FP_MUL = 7       #: floating-point multiply
    FP_DIV = 8       #: floating-point divide / sqrt
    COPY = 9         #: inter-cluster copy µop (inserted by the hardware)
    NOP = 10         #: no-operation (used as padding in synthetic programs)


class IssueQueueKind(enum.IntEnum):
    """Which per-cluster issue queue a µop is allocated into (Table 2)."""

    INT = 0
    FP = 1
    COPY = 2


#: Execution latency (cycles on the functional unit) per µop class.  Loads use
#: this as the address-generation latency; the cache access latency is added
#: by the memory hierarchy model.
_LATENCY: Mapping[UopClass, int] = {
    UopClass.INT_ALU: 1,
    UopClass.INT_MUL: 3,
    UopClass.INT_DIV: 20,
    UopClass.LOAD: 1,
    UopClass.STORE: 1,
    UopClass.BRANCH: 1,
    UopClass.FP_ADD: 4,
    UopClass.FP_MUL: 6,
    UopClass.FP_DIV: 24,
    UopClass.COPY: 1,
    UopClass.NOP: 1,
}

#: Issue queue used by each µop class.
_QUEUE: Mapping[UopClass, IssueQueueKind] = {
    UopClass.INT_ALU: IssueQueueKind.INT,
    UopClass.INT_MUL: IssueQueueKind.INT,
    UopClass.INT_DIV: IssueQueueKind.INT,
    UopClass.LOAD: IssueQueueKind.INT,
    UopClass.STORE: IssueQueueKind.INT,
    UopClass.BRANCH: IssueQueueKind.INT,
    UopClass.FP_ADD: IssueQueueKind.FP,
    UopClass.FP_MUL: IssueQueueKind.FP,
    UopClass.FP_DIV: IssueQueueKind.FP,
    UopClass.COPY: IssueQueueKind.COPY,
    UopClass.NOP: IssueQueueKind.INT,
}

#: µop classes that allocate an LSQ entry and access the data cache.
MEM_OPCODES = frozenset({UopClass.LOAD, UopClass.STORE})

#: µop classes dispatched to the floating-point issue queue.
FP_OPCODES = frozenset({UopClass.FP_ADD, UopClass.FP_MUL, UopClass.FP_DIV})

#: µop classes dispatched to the integer issue queue (memory ops compute their
#: effective address on the integer side, as in the paper's baseline).
INT_OPCODES = frozenset(
    {
        UopClass.INT_ALU,
        UopClass.INT_MUL,
        UopClass.INT_DIV,
        UopClass.LOAD,
        UopClass.STORE,
        UopClass.BRANCH,
        UopClass.NOP,
    }
)


def latency_of(opclass: UopClass) -> int:
    """Return the functional-unit latency in cycles for ``opclass``."""
    return _LATENCY[UopClass(opclass)]


def queue_of(opclass: UopClass) -> IssueQueueKind:
    """Return the per-cluster issue queue that ``opclass`` is allocated into."""
    return _QUEUE[UopClass(opclass)]


def is_memory(opclass: UopClass) -> bool:
    """True for loads and stores (they reserve an LSQ slot at dispatch)."""
    return opclass in MEM_OPCODES


def is_floating_point(opclass: UopClass) -> bool:
    """True for µops executed on the floating-point functional units."""
    return opclass in FP_OPCODES


def is_branch(opclass: UopClass) -> bool:
    """True for control-flow µops."""
    return opclass == UopClass.BRANCH
