"""ISA extension carrying steering annotations from compiler to hardware.

Section 5.1 of the paper extends the x86 instruction set so that the virtual
cluster id assigned at compile time, together with the chain-leader mark, can
be passed to the hardware.  We model that extension explicitly:

* :class:`SteeringAnnotation` is the logical content of the extension,
* :func:`encode_annotation` / :func:`decode_annotation` pack it into a small
  integer exactly as an instruction prefix would, which lets the tests verify
  that the information the hardware needs fits in a handful of bits (the
  complexity argument of the paper relies on the annotation being tiny).

Encoding layout (least-significant bits first)::

    bit 0       : valid        (annotation present)
    bit 1       : chain leader (Figure 3 mark; non-leaders carry 0)
    bits 2..5   : vc_id        (up to 16 virtual clusters)
    bits 6..9   : static physical cluster + 1 (0 = unbound), for software-only
                  schemes that bind instructions directly to physical clusters
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.uops.uop import StaticInstruction

#: Maximum number of virtual clusters representable by the encoding.
MAX_VIRTUAL_CLUSTERS = 16

#: Maximum number of physical clusters representable by the encoding.
MAX_PHYSICAL_CLUSTERS = 15

#: Number of bits used by the encoded annotation.
ANNOTATION_BITS = 10


@dataclass(frozen=True)
class SteeringAnnotation:
    """Steering information attached to one static instruction.

    ``vc_id`` / ``chain_leader`` are produced by the hybrid VC partitioner;
    ``static_cluster`` is produced by the software-only partitioners (OB and
    RHOP) which bind instructions directly to physical clusters.
    """

    vc_id: Optional[int] = None
    chain_leader: bool = False
    static_cluster: Optional[int] = None

    @property
    def is_empty(self) -> bool:
        """True when the instruction carries no steering information."""
        return self.vc_id is None and self.static_cluster is None and not self.chain_leader


def annotation_of(inst: StaticInstruction) -> SteeringAnnotation:
    """Extract the :class:`SteeringAnnotation` carried by ``inst``."""
    return SteeringAnnotation(
        vc_id=inst.vc_id,
        chain_leader=inst.chain_leader,
        static_cluster=inst.static_cluster,
    )


def apply_annotation(inst: StaticInstruction, annotation: SteeringAnnotation) -> None:
    """Write ``annotation`` onto ``inst`` (overwrites previous annotations)."""
    inst.vc_id = annotation.vc_id
    inst.chain_leader = annotation.chain_leader
    inst.static_cluster = annotation.static_cluster


def encode_annotation(annotation: SteeringAnnotation) -> int:
    """Pack ``annotation`` into the :data:`ANNOTATION_BITS`-bit ISA field.

    Raises
    ------
    ValueError
        If the virtual or physical cluster id does not fit the encoding.
    """
    if annotation.is_empty:
        return 0
    vc = annotation.vc_id if annotation.vc_id is not None else 0
    if not 0 <= vc < MAX_VIRTUAL_CLUSTERS:
        raise ValueError(f"vc_id {vc} does not fit in the {MAX_VIRTUAL_CLUSTERS}-entry encoding")
    if annotation.static_cluster is None:
        pc_field = 0
    else:
        if not 0 <= annotation.static_cluster < MAX_PHYSICAL_CLUSTERS:
            raise ValueError(
                f"static_cluster {annotation.static_cluster} does not fit in the encoding"
            )
        pc_field = annotation.static_cluster + 1
    word = 1  # valid bit
    word |= (1 if annotation.chain_leader else 0) << 1
    word |= vc << 2
    word |= pc_field << 6
    return word


def decode_annotation(word: int) -> SteeringAnnotation:
    """Unpack an annotation previously produced by :func:`encode_annotation`."""
    if word < 0 or word >= (1 << ANNOTATION_BITS):
        raise ValueError(f"annotation word {word} out of range")
    if word & 1 == 0:
        return SteeringAnnotation()
    chain_leader = bool((word >> 1) & 1)
    vc_id = (word >> 2) & 0xF
    pc_field = (word >> 6) & 0xF
    static_cluster = pc_field - 1 if pc_field > 0 else None
    return SteeringAnnotation(vc_id=vc_id, chain_leader=chain_leader, static_cluster=static_cluster)
