"""Static instructions and dynamic µops.

The paper's hybrid scheme relies on a strict split of responsibilities:

* the **compiler** works on *static* instructions organised in basic blocks
  and data-dependence graphs, and attaches steering annotations (virtual
  cluster id, chain-leader mark, or a static physical-cluster binding) to
  them;
* the **hardware** executes a *dynamic* stream of µops, each of which is an
  instance of a static instruction and inherits its annotations through the
  ISA extension.

:class:`StaticInstruction` and :class:`DynamicUop` model the two sides of
that split.  Both are lightweight ``__slots__`` classes because the simulator
creates one :class:`DynamicUop` per trace element (tens of thousands per
simulation point).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.uops.opcodes import (
    IssueQueueKind,
    UopClass,
    is_branch,
    is_floating_point,
    is_memory,
    latency_of,
    queue_of,
)


class StaticInstruction:
    """One compiler-visible instruction.

    Parameters
    ----------
    sid:
        Unique static id within the program.
    opclass:
        The :class:`~repro.uops.opcodes.UopClass` of the instruction.
    dests:
        Destination architectural register ids (usually zero or one).
    srcs:
        Source architectural register ids.
    block:
        Id of the basic block containing the instruction.

    Attributes
    ----------
    vc_id:
        Virtual cluster assigned by the compile-time VC partitioner
        (``None`` when the pass has not run).
    chain_leader:
        ``True`` when this instruction starts a new chain (Figure 3); only
        meaningful when ``vc_id`` is set.
    static_cluster:
        Physical cluster chosen by a software-only partitioner (OB / RHOP);
        ``None`` for hardware-only or hybrid steering.
    """

    __slots__ = (
        "sid",
        "opclass",
        "dests",
        "srcs",
        "block",
        "vc_id",
        "chain_leader",
        "static_cluster",
    )

    def __init__(
        self,
        sid: int,
        opclass: UopClass,
        dests: Sequence[int] = (),
        srcs: Sequence[int] = (),
        block: int = 0,
    ) -> None:
        self.sid = int(sid)
        self.opclass = UopClass(opclass)
        self.dests: Tuple[int, ...] = tuple(int(d) for d in dests)
        self.srcs: Tuple[int, ...] = tuple(int(s) for s in srcs)
        self.block = int(block)
        self.vc_id: Optional[int] = None
        self.chain_leader: bool = False
        self.static_cluster: Optional[int] = None

    # -- classification helpers -------------------------------------------------
    @property
    def latency(self) -> int:
        """Functional-unit latency of the instruction."""
        return latency_of(self.opclass)

    @property
    def queue(self) -> IssueQueueKind:
        """Issue queue this instruction is allocated into."""
        return queue_of(self.opclass)

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return is_memory(self.opclass)

    @property
    def is_load(self) -> bool:
        """True for loads."""
        return self.opclass == UopClass.LOAD

    @property
    def is_store(self) -> bool:
        """True for stores."""
        return self.opclass == UopClass.STORE

    @property
    def is_fp(self) -> bool:
        """True for floating-point arithmetic."""
        return is_floating_point(self.opclass)

    @property
    def is_branch(self) -> bool:
        """True for control-flow instructions."""
        return is_branch(self.opclass)

    def clear_annotations(self) -> None:
        """Remove any steering annotations left by a previous compiler pass."""
        self.vc_id = None
        self.chain_leader = False
        self.static_cluster = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StaticInstruction(sid={self.sid}, {self.opclass.name}, "
            f"dests={self.dests}, srcs={self.srcs}, block={self.block}, "
            f"vc={self.vc_id}, leader={self.chain_leader}, static_cluster={self.static_cluster})"
        )


class DynamicUop:
    """One dynamic µop executed by the simulator.

    A dynamic µop references the static instruction it was fetched from and
    carries the per-instance information the simulator needs: sequence number,
    effective address of memory operations, and the branch outcome used to
    model front-end redirects.
    """

    __slots__ = ("seq", "static", "address", "mispredicted")

    def __init__(
        self,
        seq: int,
        static: StaticInstruction,
        address: int = 0,
        mispredicted: bool = False,
    ) -> None:
        self.seq = int(seq)
        self.static = static
        self.address = int(address)
        self.mispredicted = bool(mispredicted)

    # Delegation properties keep the hot simulator loops readable while
    # avoiding duplicated state per dynamic instance.
    @property
    def opclass(self) -> UopClass:
        """µop class of the underlying static instruction."""
        return self.static.opclass

    @property
    def dests(self) -> Tuple[int, ...]:
        """Destination registers."""
        return self.static.dests

    @property
    def srcs(self) -> Tuple[int, ...]:
        """Source registers."""
        return self.static.srcs

    @property
    def latency(self) -> int:
        """Functional-unit latency."""
        return self.static.latency

    @property
    def queue(self) -> IssueQueueKind:
        """Issue queue kind."""
        return self.static.queue

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self.static.is_memory

    @property
    def is_load(self) -> bool:
        """True for loads."""
        return self.static.is_load

    @property
    def is_store(self) -> bool:
        """True for stores."""
        return self.static.is_store

    @property
    def is_branch(self) -> bool:
        """True for control-flow µops."""
        return self.static.is_branch

    @property
    def is_fp(self) -> bool:
        """True for floating-point arithmetic."""
        return self.static.is_fp

    @property
    def vc_id(self) -> Optional[int]:
        """Virtual cluster id inherited from the static instruction."""
        return self.static.vc_id

    @property
    def chain_leader(self) -> bool:
        """Chain-leader mark inherited from the static instruction."""
        return self.static.chain_leader

    @property
    def static_cluster(self) -> Optional[int]:
        """Static physical-cluster binding inherited from the static instruction."""
        return self.static.static_cluster

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynamicUop(seq={self.seq}, sid={self.static.sid}, {self.opclass.name})"
