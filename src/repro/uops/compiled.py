"""Compiled µop traces: a structure-of-arrays intermediate representation.

:class:`CompiledTrace` is the simulator-facing form of a dynamic µop stream.
Where a list of :class:`~repro.uops.uop.DynamicUop` re-derives per-µop facts
(issue queue, latency, memory flags, deduplicated sources) through Python
property indirection on every dispatch, a compiled trace precomputes all of
them once into flat numpy arrays -- the same hoist-everything-loop-invariant
discipline the preconditioned-solver kernels in SNIPPETS.md apply: the inner
loop should only ever index, never recompute (see DESIGN.md).

The representation has three layers:

* **stored columns** (numpy arrays, one element per µop): sequence number,
  static id, basic block, µop class, effective address, mispredict bit, the
  steering annotations (``vc_id`` / ``chain_leader`` / ``static_cluster``,
  with ``-1`` encoding "unannotated"), and CSR-style (offsets + flat values)
  source/destination register lists.  These are exactly what
  :meth:`CompiledTrace.save` persists, so on-disk trace artifacts stay small
  and independent of the latency/queue tables.
* **derived columns**, recomputed from the µop class at construction time
  via vectorised table lookups: issue-queue kind, functional-unit latency and
  the memory/load/store/branch flags.  Editing
  :mod:`repro.uops.opcodes` therefore never stales an on-disk artifact.
* **hot-path caches**: plain Python lists/tuples materialised lazily from
  the arrays (``latency_list`` and friends).  The simulator's inner loops
  index these lists -- scalar indexing of numpy arrays allocates a numpy
  scalar per access and is *slower* than list indexing in pure Python, so
  the arrays are the storage format and the lists are the execution format.

Losslessness: ``compile_trace(trace).materialize()`` rebuilds an equivalent
``DynamicUop`` list (shared static instructions reconstructed per ``sid``),
and ``compile_trace(materialize(c))`` equals ``c`` array-for-array -- the
round-trip property the test suite pins.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed (CI matrix)
    from numba import njit as _njit
except ImportError:  # pragma: no cover - the default environment
    _njit = None

from repro.uops.opcodes import (
    IssueQueueKind,
    UopClass,
    is_branch,
    is_floating_point,
    is_memory,
    latency_of,
    queue_of,
)
from repro.uops.uop import DynamicUop, StaticInstruction

#: Sentinel used in the ``vc_id`` / ``static_cluster`` columns for "no
#: annotation" (the object model uses ``None``).
NO_ANNOTATION = -1

#: Vectorised per-class lookup tables (index = UopClass value).
_LATENCY_TABLE = np.array([latency_of(c) for c in UopClass], dtype=np.int32)
_QUEUE_TABLE = np.array([int(queue_of(c)) for c in UopClass], dtype=np.int8)
_MEMORY_TABLE = np.array([is_memory(c) for c in UopClass], dtype=bool)
_LOAD_TABLE = np.array([c == UopClass.LOAD for c in UopClass], dtype=bool)
_STORE_TABLE = np.array([c == UopClass.STORE for c in UopClass], dtype=bool)
_BRANCH_TABLE = np.array([is_branch(c) for c in UopClass], dtype=bool)
_FP_TABLE = np.array([is_floating_point(c) for c in UopClass], dtype=bool)

#: Singleton enum members, indexable by the integer class/queue codes.
_UOP_CLASSES = list(UopClass)
_QUEUE_KINDS = list(IssueQueueKind)


def _csr(rows: Sequence[Tuple[int, ...]]) -> Tuple[np.ndarray, np.ndarray]:
    """Pack variable-length integer rows into (offsets, flat values) arrays."""
    lengths = np.fromiter((len(row) for row in rows), dtype=np.int64, count=len(rows))
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    flat = np.fromiter(
        (reg for row in rows for reg in row), dtype=np.int32, count=int(offsets[-1])
    )
    return offsets, flat


def _uncsr(offsets: np.ndarray, flat: np.ndarray) -> List[Tuple[int, ...]]:
    """Unpack CSR arrays back into a list of tuples of Python ints."""
    bounds = offsets.tolist()
    values = flat.tolist()
    return [tuple(values[bounds[i]:bounds[i + 1]]) for i in range(len(bounds) - 1)]


def _scan_last_writers(n, usrc_offsets, usrc_regs, dest_offsets, dest_regs, num_regs):
    """Map every deduplicated source operand to the definition that produces it.

    A *definition id* is a position in the destination CSR: definition ``d``
    is the ``dest_regs[d]`` write of µop ``i`` where
    ``dest_offsets[i] <= d < dest_offsets[i + 1]``.  The scan walks the trace
    in program order keeping the last definition of every architectural
    register; sources with no prior in-trace writer (live-ins) are dropped --
    the rename table marks live-ins available in every cluster, so dispatch
    planning never waits on them.  Returns the dependence lists in CSR form
    (``dep_offsets``, ``dep_defs``), preserving the first-occurrence source
    order ``_try_dispatch`` plans in.

    The body is a plain loop over integer arrays so that, when numba is
    available, it is JIT-compiled as-is; the pure-Python execution of the same
    code is the fallback (the result is bit-for-bit the same either way, and
    it is computed once per trace and cached).
    """
    last = np.full(num_regs, -1, dtype=np.int64)
    dep_offsets = np.zeros(n + 1, dtype=np.int64)
    dep_defs = np.empty(len(usrc_regs), dtype=np.int64)
    filled = 0
    for i in range(n):
        for j in range(usrc_offsets[i], usrc_offsets[i + 1]):
            d = last[usrc_regs[j]]
            if d >= 0:
                dep_defs[filled] = d
                filled += 1
        dep_offsets[i + 1] = filled
        for d in range(dest_offsets[i], dest_offsets[i + 1]):
            last[dest_regs[d]] = d
    return dep_offsets, dep_defs[:filled]


if _njit is not None:  # pragma: no cover - only where numba is installed
    _scan_last_writers = _njit(cache=False)(_scan_last_writers)


class DependencePlan(NamedTuple):
    """Per-trace dependence structure consumed by the vectorized kernel.

    Everything here is a pure function of the stored source/destination
    columns -- independent of steering annotations and machine configuration
    -- so one plan is shared by every run (and every policy) of a trace.
    """

    #: Per-µop tuple of producer definition ids, in deduplicated
    #: first-occurrence source order (live-in sources excluded).
    deps: List[Tuple[int, ...]]
    #: Producing µop index of each definition id.
    def_uop: List[int]
    #: Architectural register written by each definition id.
    def_reg: List[int]
    #: CSR offsets: µop ``i`` owns definition ids ``[o[i], o[i + 1])``.
    dest_offsets: List[int]

    @property
    def num_defs(self) -> int:
        """Total number of in-trace register definitions."""
        return len(self.def_uop)


class DispatchMetaArrays(NamedTuple):
    """The :meth:`CompiledTrace.dispatch_meta` facts as flat numpy arrays.

    This is the marshalling format of the jitted inner loop
    (:mod:`repro.cluster.jitloop`): where the Python-tier kernel wants lists
    and tuples (scalar indexing of numpy arrays is slower in pure Python),
    the jitted loop wants exactly the opposite -- contiguous typed arrays it
    can index without boxing.  All integer arrays are ``int64`` and all flag
    arrays are ``bool`` so the compiled loop is monomorphic.  Like the
    dependence plan, everything here is annotation-independent, so one
    instance is shared by every run of a trace.
    """

    #: Per-µop issue-queue kind (0=INT, 1=FP, 2=COPY).
    queue: np.ndarray
    #: Per-µop memory / load / branch / mispredict flags.
    is_memory: np.ndarray
    is_load: np.ndarray
    is_branch: np.ndarray
    mispredicted: np.ndarray
    #: Per-µop INT / FP destination counts (register-space dependent).
    dest_int: np.ndarray
    dest_fp: np.ndarray
    #: Per-µop functional-unit latency.
    latency: np.ndarray
    #: Source registers, duplicates preserved, CSR form (the steering view).
    src_offsets: np.ndarray
    src_regs: np.ndarray
    #: Producer definition ids per µop, CSR form (the dependence plan).
    dep_offsets: np.ndarray
    dep_defs: np.ndarray
    #: Definition ids owned by µop ``i``: ``[dest_offsets[i], dest_offsets[i+1])``.
    dest_offsets: np.ndarray
    #: Producing µop / written register of each definition id.
    def_uop: np.ndarray
    def_reg: np.ndarray


def _dedup(row: Tuple[int, ...]) -> Tuple[int, ...]:
    """First-occurrence deduplication (the order ``_try_dispatch`` plans in)."""
    if len(row) < 2:
        return row
    seen = set()
    out = []
    for reg in row:
        if reg not in seen:
            seen.add(reg)
            out.append(reg)
    return tuple(out)


class CompiledTrace:
    """A dynamic µop trace compiled to structure-of-arrays form.

    Instances are built by :func:`compile_trace` (from ``DynamicUop`` lists),
    by :meth:`repro.program.trace.TraceGenerator.generate_compiled` (directly
    from a static program, no intermediate objects) or by :meth:`load` (from
    an on-disk artifact).  All constructor arguments are numpy arrays of
    equal length ``n`` except the CSR pairs (offset arrays of length
    ``n + 1``).
    """

    __slots__ = (
        "seq",
        "sid",
        "block",
        "opclass",
        "address",
        "mispredicted",
        "vc_id",
        "chain_leader",
        "static_cluster",
        "src_offsets",
        "src_regs",
        "dest_offsets",
        "dest_regs",
        "queue",
        "latency",
        "is_memory",
        "is_load",
        "is_store",
        "is_branch",
        "is_fp",
        "_cache",
    )

    #: Stored columns, in ``save``/``load`` order.
    STORED_FIELDS = (
        "seq",
        "sid",
        "block",
        "opclass",
        "address",
        "mispredicted",
        "vc_id",
        "chain_leader",
        "static_cluster",
        "src_offsets",
        "src_regs",
        "dest_offsets",
        "dest_regs",
    )

    def __init__(
        self,
        seq: np.ndarray,
        sid: np.ndarray,
        block: np.ndarray,
        opclass: np.ndarray,
        address: np.ndarray,
        mispredicted: np.ndarray,
        vc_id: np.ndarray,
        chain_leader: np.ndarray,
        static_cluster: np.ndarray,
        src_offsets: np.ndarray,
        src_regs: np.ndarray,
        dest_offsets: np.ndarray,
        dest_regs: np.ndarray,
    ) -> None:
        self.seq = np.asarray(seq, dtype=np.int64)
        self.sid = np.asarray(sid, dtype=np.int64)
        self.block = np.asarray(block, dtype=np.int32)
        self.opclass = np.asarray(opclass, dtype=np.uint8)
        self.address = np.asarray(address, dtype=np.int64)
        self.mispredicted = np.asarray(mispredicted, dtype=bool)
        self.vc_id = np.asarray(vc_id, dtype=np.int32)
        self.chain_leader = np.asarray(chain_leader, dtype=bool)
        self.static_cluster = np.asarray(static_cluster, dtype=np.int32)
        self.src_offsets = np.asarray(src_offsets, dtype=np.int64)
        self.src_regs = np.asarray(src_regs, dtype=np.int32)
        self.dest_offsets = np.asarray(dest_offsets, dtype=np.int64)
        self.dest_regs = np.asarray(dest_regs, dtype=np.int32)
        n = len(self.seq)
        for name in ("sid", "block", "opclass", "address", "mispredicted",
                     "vc_id", "chain_leader", "static_cluster"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name!r} has length {len(getattr(self, name))}, expected {n}")
        for name in ("src_offsets", "dest_offsets"):
            if len(getattr(self, name)) != n + 1:
                raise ValueError(f"offset column {name!r} must have length n + 1")
        # Derived columns: vectorised lookups on the µop class.
        self.queue = _QUEUE_TABLE[self.opclass]
        self.latency = _LATENCY_TABLE[self.opclass]
        self.is_memory = _MEMORY_TABLE[self.opclass]
        self.is_load = _LOAD_TABLE[self.opclass]
        self.is_store = _STORE_TABLE[self.opclass]
        self.is_branch = _BRANCH_TABLE[self.opclass]
        self.is_fp = _FP_TABLE[self.opclass]
        #: Lazily materialised hot-path lists (dropped on re-annotation).
        self._cache: Dict[str, object] = {}

    # ------------------------------------------------------------------ basics --
    def __len__(self) -> int:
        return len(self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledTrace({len(self)} µops, {int(self.src_offsets[-1])} source operands)"

    def equals(self, other: "CompiledTrace") -> bool:
        """Array-for-array equality of the stored columns."""
        if not isinstance(other, CompiledTrace) or len(self) != len(other):
            return False
        return all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in self.STORED_FIELDS
        )

    # --------------------------------------------------------- hot-path caches --
    def _cached(self, key: str, build) -> object:
        value = self._cache.get(key)
        if value is None:
            value = build()
            self._cache[key] = value
        return value

    def src_tuples(self) -> List[Tuple[int, ...]]:
        """Per-µop source registers, duplicates preserved (the steering view)."""
        return self._cached("srcs", lambda: _uncsr(self.src_offsets, self.src_regs))

    def unique_src_tuples(self) -> List[Tuple[int, ...]]:
        """Per-µop sources deduplicated in first-occurrence order (dispatch planning)."""
        return self._cached(
            "usrcs", lambda: [_dedup(row) for row in self.src_tuples()]
        )

    def dest_tuples(self) -> List[Tuple[int, ...]]:
        """Per-µop destination registers."""
        return self._cached("dests", lambda: _uncsr(self.dest_offsets, self.dest_regs))

    def queue_kinds(self) -> List[IssueQueueKind]:
        """Per-µop issue-queue kind as enum singletons."""
        return self._cached(
            "queue_kinds", lambda: [_QUEUE_KINDS[q] for q in self.queue.tolist()]
        )

    def queue_kind_ints(self) -> List[int]:
        """Per-µop issue-queue kind as plain ints (the vectorized kernel's form)."""
        return self._cached("queue_ints", self.queue.tolist)

    def latency_list(self) -> List[int]:
        """Per-µop functional-unit latency as plain ints."""
        return self._cached("latency", self.latency.tolist)

    def seq_list(self) -> List[int]:
        """Per-µop sequence number as plain ints."""
        return self._cached("seq", self.seq.tolist)

    def address_list(self) -> List[int]:
        """Per-µop effective address as plain ints."""
        return self._cached("address", self.address.tolist)

    def is_memory_list(self) -> List[bool]:
        """Per-µop memory flag as plain bools."""
        return self._cached("is_memory", self.is_memory.tolist)

    def is_load_list(self) -> List[bool]:
        """Per-µop load flag as plain bools."""
        return self._cached("is_load", self.is_load.tolist)

    def is_branch_list(self) -> List[bool]:
        """Per-µop branch flag as plain bools."""
        return self._cached("is_branch", self.is_branch.tolist)

    def is_fp_list(self) -> List[bool]:
        """Per-µop floating-point flag as plain bools."""
        return self._cached("is_fp", self.is_fp.tolist)

    def mispredicted_list(self) -> List[bool]:
        """Per-µop mispredict bit as plain bools."""
        return self._cached("mispredicted", self.mispredicted.tolist)

    def vc_id_list(self) -> List[Optional[int]]:
        """Per-µop virtual-cluster id (``None`` when unannotated)."""
        return self._cached(
            "vc_id",
            lambda: [None if v == NO_ANNOTATION else v for v in self.vc_id.tolist()],
        )

    def chain_leader_list(self) -> List[bool]:
        """Per-µop chain-leader mark as plain bools."""
        return self._cached("chain_leader", self.chain_leader.tolist)

    def static_cluster_list(self) -> List[Optional[int]]:
        """Per-µop static physical-cluster binding (``None`` when unbound)."""
        return self._cached(
            "static_cluster",
            lambda: [None if v == NO_ANNOTATION else v for v in self.static_cluster.tolist()],
        )

    def dest_kind_counts(self, register_space) -> List[Tuple[int, int]]:
        """Per-µop ``(int, fp)`` destination counts for the given register space.

        Lets the register-file model allocate/release by count instead of
        classifying every destination register on every dispatch and commit.
        """
        key = f"dest_counts_{register_space.num_int}_{register_space.num_fp}"

        def build() -> List[Tuple[int, int]]:
            boundary = register_space.num_int
            counts = []
            for dests in self.dest_tuples():
                fp = sum(1 for reg in dests if reg >= boundary)
                counts.append((len(dests) - fp, fp))
            return counts

        return self._cached(key, build)

    def memory_access_plan(self) -> Tuple[List[int], List[bool]]:
        """``(addresses, is_load)`` of the memory µops, in trace order.

        Cache warm-up replays exactly this access stream; precomputing it
        keeps the per-run warm-up loop free of full-trace scans.
        """
        def build() -> Tuple[List[int], List[bool]]:
            index = np.flatnonzero(self.is_memory)
            return (self.address[index].tolist(), self.is_load[index].tolist())

        return self._cached("memory_plan", build)

    def dispatch_meta(self, register_space) -> List[tuple]:
        """Per-µop fused dispatch metadata for the vectorized kernel.

        One tuple per µop::

            (queue kind, is_memory, is_load, is_branch, mispredicted,
             int dests, fp dests, dependence row, first def id, past-last def id)

        The dispatch stage touches all of these fields for every µop it
        dispatches; fusing them into one cached tuple list turns eight
        scattered column lookups into a single list index plus an unpack.
        Keyed by register-space geometry (like :meth:`dest_kind_counts`)
        because the INT/FP destination split depends on it.
        """
        key = f"dispatch_meta_{register_space.num_int}_{register_space.num_fp}"

        def build() -> List[tuple]:
            plan = self.dependency_plan()
            counts = self.dest_kind_counts(register_space)
            dest_offsets = plan.dest_offsets
            return list(
                zip(
                    self.queue_kind_ints(),
                    self.is_memory_list(),
                    self.is_load_list(),
                    self.is_branch_list(),
                    self.mispredicted_list(),
                    [di for di, _ in counts],
                    [df for _, df in counts],
                    plan.deps,
                    dest_offsets[:-1],
                    dest_offsets[1:],
                )
            )

        return self._cached(key, build)

    def dispatch_meta_arrays(self, register_space) -> DispatchMetaArrays:
        """The dispatch metadata as :class:`DispatchMetaArrays` (jit kernel form).

        Keyed by register-space geometry like :meth:`dispatch_meta`; built
        from the same dependence plan, so both forms describe the identical
        structure (the jit parity suite pins this transitively by comparing
        run metrics).
        """
        key = f"dispatch_meta_arrays_{register_space.num_int}_{register_space.num_fp}"

        def build() -> DispatchMetaArrays:
            n = len(self)
            plan = self.dependency_plan()
            dep_offsets, dep_defs = _csr(plan.deps)
            dest_offsets = self.dest_offsets.astype(np.int64)
            boundary = register_space.num_int
            fp_flags = (self.dest_regs >= boundary).astype(np.int64)
            running = np.zeros(len(fp_flags) + 1, dtype=np.int64)
            np.cumsum(fp_flags, out=running[1:])
            dest_fp = running[dest_offsets[1:]] - running[dest_offsets[:-1]]
            dest_int = (dest_offsets[1:] - dest_offsets[:-1]) - dest_fp
            counts = np.diff(dest_offsets)
            return DispatchMetaArrays(
                queue=self.queue.astype(np.int64),
                is_memory=self.is_memory,
                is_load=self.is_load,
                is_branch=self.is_branch,
                mispredicted=self.mispredicted,
                dest_int=dest_int,
                dest_fp=dest_fp,
                latency=self.latency.astype(np.int64),
                src_offsets=self.src_offsets.astype(np.int64),
                src_regs=self.src_regs.astype(np.int64),
                dep_offsets=dep_offsets,
                dep_defs=dep_defs.astype(np.int64),
                dest_offsets=dest_offsets,
                def_uop=np.repeat(np.arange(n, dtype=np.int64), counts),
                def_reg=self.dest_regs.astype(np.int64),
            )

        return self._cached(key, build)

    def memory_access_plan_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`memory_access_plan` as ``(int64 addresses, bool is_load)`` arrays."""
        def build() -> Tuple[np.ndarray, np.ndarray]:
            index = np.flatnonzero(self.is_memory)
            return (self.address[index].astype(np.int64), self.is_load[index])

        return self._cached("memory_plan_arrays", build)

    def dependency_plan(self) -> DependencePlan:
        """The :class:`DependencePlan` of the trace (built once, then cached).

        Annotation refreshes (:meth:`annotate_from`) do not invalidate it --
        the dynamic dependence structure never depends on steering
        annotations -- so the plan survives across every configuration of a
        batch, like the other dynamic-column caches.
        """
        def build() -> DependencePlan:
            n = len(self)
            usrc_offsets, usrc_regs = _csr(self.unique_src_tuples())
            num_regs = 1 + int(
                max(
                    self.src_regs.max(initial=-1),
                    self.dest_regs.max(initial=-1),
                )
            )
            dep_offsets, dep_defs = _scan_last_writers(
                n, usrc_offsets, usrc_regs, self.dest_offsets, self.dest_regs,
                max(num_regs, 1),
            )
            deps = _uncsr(dep_offsets, dep_defs)
            counts = np.diff(self.dest_offsets)
            def_uop = np.repeat(np.arange(n, dtype=np.int64), counts).tolist()
            return DependencePlan(
                deps=deps,
                def_uop=def_uop,
                def_reg=self.dest_regs.tolist(),
                dest_offsets=self.dest_offsets.tolist(),
            )

        return self._cached("dep_plan", build)

    # ---------------------------------------------------------------- freezing --
    @property
    def frozen(self) -> bool:
        """Whether the stored columns are marked read-only (write sanitizer).

        ``seq`` is the marker: it is never replaced after construction (only
        the annotation columns are, and :meth:`annotate_from` re-freezes
        those on frozen traces), so its flag reflects the whole trace.
        """
        return not self.seq.flags.writeable

    def freeze(self) -> "CompiledTrace":
        """Mark every stored column read-only; in-place writes then raise.

        This is the write sanitizer's teeth (``$REPRO_SANITIZE=1``; see
        :mod:`repro.sanitize`): traces are shared across the memo, the
        artifact store, shm segments and every configuration of a batch, so
        a frozen trace turns any in-place mutation of shared state into a
        ``ValueError`` at the offending line.  Views attached over
        shared-memory segments arrive frozen already; freezing is idempotent
        and irreversible for a given array (callers needing a mutable trace
        rebuild one from copies).  Returns ``self`` for chaining.
        """
        for name in self.STORED_FIELDS:
            array = getattr(self, name)
            if array.flags.writeable:
                array.flags.writeable = False
        return self

    # ------------------------------------------------------------- annotations --
    def annotate_from(self, program) -> "CompiledTrace":
        """Refresh the steering-annotation columns from ``program``'s statics.

        The dynamic µop stream never depends on annotations, so one compiled
        trace is shared by every steering configuration of a phase; each
        configuration re-annotates the program (or clears it) and then calls
        this to scatter the per-``sid`` annotations across the per-µop
        columns.  Returns ``self`` for chaining.
        """
        size = int(self.sid.max()) + 1 if len(self.sid) else 0
        vc = np.full(size, NO_ANNOTATION, dtype=np.int32)
        leader = np.zeros(size, dtype=bool)
        static_cluster = np.full(size, NO_ANNOTATION, dtype=np.int32)
        for inst in program.all_instructions():
            sid = inst.sid
            if 0 <= sid < size:
                vc[sid] = NO_ANNOTATION if inst.vc_id is None else int(inst.vc_id)
                leader[sid] = bool(inst.chain_leader)
                static_cluster[sid] = (
                    NO_ANNOTATION if inst.static_cluster is None else int(inst.static_cluster)
                )
        refreeze = self.frozen
        self.vc_id = vc[self.sid]
        self.chain_leader = leader[self.sid]
        self.static_cluster = static_cluster[self.sid]
        if refreeze:
            # Frozen traces stay frozen: the scatter *replaces* the
            # annotation arrays (never writes in place), so the fresh arrays
            # inherit the read-only mark the sanitizer relies on.
            for key in ("vc_id", "chain_leader", "static_cluster"):
                getattr(self, key).flags.writeable = False
        for key in ("vc_id", "chain_leader", "static_cluster"):
            self._cache.pop(key, None)
        return self

    # ----------------------------------------------------------- materialise --
    def materialize(self) -> List[DynamicUop]:
        """Rebuild the equivalent :class:`DynamicUop` list.

        One :class:`StaticInstruction` is reconstructed per distinct ``sid``
        (dynamic instances of the same static instruction share it, exactly
        like traces expanded from a program), annotations included.
        """
        statics: Dict[int, StaticInstruction] = {}
        srcs = self.src_tuples()
        dests = self.dest_tuples()
        sids = self.sid.tolist()
        blocks = self.block.tolist()
        opclasses = self.opclass.tolist()
        vc_ids = self.vc_id_list()
        leaders = self.chain_leader_list()
        static_clusters = self.static_cluster_list()
        seqs = self.seq.tolist()
        addresses = self.address_list()
        mispredicts = self.mispredicted_list()
        trace: List[DynamicUop] = []
        for i, sid in enumerate(sids):
            static = statics.get(sid)
            if static is None:
                static = StaticInstruction(
                    sid, _UOP_CLASSES[opclasses[i]], dests[i], srcs[i], block=blocks[i]
                )
                static.vc_id = vc_ids[i]
                static.chain_leader = leaders[i]
                static.static_cluster = static_clusters[i]
                statics[sid] = static
            trace.append(
                DynamicUop(seqs[i], static, address=addresses[i], mispredicted=mispredicts[i])
            )
        return trace

    # ------------------------------------------------------------ persistence --
    def stored_columns(self) -> Dict[str, np.ndarray]:
        """The stored columns as ``{name: array}``, in ``STORED_FIELDS`` order.

        This is the serialisation surface shared by every persistence layer:
        :meth:`save` compresses these arrays to ``.npz``, the artifact store
        adds the program pickle, and the shared-memory segment layer copies
        their raw bytes into a block.  Passing the dict straight back to the
        constructor (``CompiledTrace(**columns)``) is zero-copy when dtypes
        already match -- the derived columns are recomputed, the stored ones
        are adopted as-is (including read-only views over shared buffers).
        """
        return {name: getattr(self, name) for name in self.STORED_FIELDS}

    @property
    def stored_nbytes(self) -> int:
        """Total payload bytes of the stored columns (uncompressed)."""
        return sum(array.nbytes for array in self.stored_columns().values())

    def save(self, path: Union[str, Path]) -> None:
        """Write the stored columns to a compressed ``.npz`` file."""
        np.savez_compressed(
            str(path), **{name: getattr(self, name) for name in self.STORED_FIELDS}
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CompiledTrace":
        """Rebuild a compiled trace from a :meth:`save` artifact."""
        with np.load(str(path), allow_pickle=False) as data:
            missing = [name for name in cls.STORED_FIELDS if name not in data]
            if missing:
                raise ValueError(f"trace artifact {path} is missing columns {missing}")
            return cls(**{name: data[name] for name in cls.STORED_FIELDS})

    # ------------------------------------------------------------ constructors --
    @classmethod
    def from_columns(
        cls,
        sids: Sequence[int],
        opclasses: Sequence[int],
        srcs: Sequence[Tuple[int, ...]],
        dests: Sequence[Tuple[int, ...]],
        blocks: Sequence[int],
        addresses: Sequence[int],
        mispredicted: Sequence[bool],
        vc_ids: Sequence[int],
        chain_leaders: Sequence[bool],
        static_clusters: Sequence[int],
        seqs: Optional[Sequence[int]] = None,
    ) -> "CompiledTrace":
        """Build a trace from per-µop Python columns (annotation sentinel ``-1``)."""
        n = len(sids)
        src_offsets, src_regs = _csr(srcs)
        dest_offsets, dest_regs = _csr(dests)
        return cls(
            seq=np.arange(n, dtype=np.int64) if seqs is None else np.asarray(seqs, dtype=np.int64),
            sid=np.asarray(sids, dtype=np.int64),
            block=np.asarray(blocks, dtype=np.int32),
            opclass=np.asarray(opclasses, dtype=np.uint8),
            address=np.asarray(addresses, dtype=np.int64),
            mispredicted=np.asarray(mispredicted, dtype=bool),
            vc_id=np.asarray(vc_ids, dtype=np.int32),
            chain_leader=np.asarray(chain_leaders, dtype=bool),
            static_cluster=np.asarray(static_clusters, dtype=np.int32),
            src_offsets=src_offsets,
            src_regs=src_regs,
            dest_offsets=dest_offsets,
            dest_regs=dest_regs,
        )

    @classmethod
    def from_uops(cls, trace: Iterable[DynamicUop]) -> "CompiledTrace":
        """Compile a :class:`DynamicUop` sequence (see :func:`compile_trace`)."""
        sids, opclasses, srcs, dests, blocks = [], [], [], [], []
        addresses, mispredicts, vc_ids, leaders, static_clusters, seqs = [], [], [], [], [], []
        for uop in trace:
            static = uop.static
            sids.append(static.sid)
            opclasses.append(int(static.opclass))
            srcs.append(static.srcs)
            dests.append(static.dests)
            blocks.append(static.block)
            addresses.append(uop.address)
            mispredicts.append(uop.mispredicted)
            vc_ids.append(NO_ANNOTATION if static.vc_id is None else int(static.vc_id))
            leaders.append(bool(static.chain_leader))
            static_clusters.append(
                NO_ANNOTATION if static.static_cluster is None else int(static.static_cluster)
            )
            seqs.append(uop.seq)
        return cls.from_columns(
            sids, opclasses, srcs, dests, blocks, addresses, mispredicts,
            vc_ids, leaders, static_clusters, seqs=seqs,
        )


def compile_trace(trace: Union[CompiledTrace, Sequence[DynamicUop]]) -> CompiledTrace:
    """Compile ``trace`` into a :class:`CompiledTrace` (idempotent)."""
    if isinstance(trace, CompiledTrace):
        return trace
    return CompiledTrace.from_uops(trace)


class CompiledUopView:
    """Flyweight µop: the :class:`DynamicUop` interface over compiled arrays.

    The simulator passes one (mutable-cursor) view instance to the steering
    policy per dispatch instead of materialising a ``DynamicUop`` -- policies
    read ``uop.srcs`` / ``uop.queue`` / ``uop.vc_id`` exactly as before, but
    each access is a single list index.  Setting :attr:`index` re-points the
    view at another µop of the same trace.
    """

    __slots__ = (
        "trace",
        "index",
        "_statics",
        "_srcs",
        "_dests",
        "_queues",
        "_latencies",
        "_is_memory",
        "_is_load",
        "_is_branch",
        "_is_fp",
        "_addresses",
        "_mispredicted",
        "_vc_ids",
        "_leaders",
        "_static_clusters",
        "_seqs",
    )

    def __init__(self, trace: CompiledTrace) -> None:
        self.trace = trace
        self.index = 0
        self._statics: Dict[int, StaticInstruction] = {}
        self._srcs = trace.src_tuples()
        self._dests = trace.dest_tuples()
        self._queues = trace.queue_kinds()
        self._latencies = trace.latency_list()
        self._is_memory = trace.is_memory_list()
        self._is_load = trace.is_load_list()
        self._is_branch = trace.is_branch_list()
        self._is_fp = trace.is_fp_list()
        self._addresses = trace.address_list()
        self._mispredicted = trace.mispredicted_list()
        self._vc_ids = trace.vc_id_list()
        self._leaders = trace.chain_leader_list()
        self._static_clusters = trace.static_cluster_list()
        self._seqs = trace.seq_list()

    # The property set mirrors DynamicUop, so existing policies (including
    # user-registered ones) work unchanged on the compiled path.
    @property
    def seq(self) -> int:
        """Sequence number of the µop."""
        return self._seqs[self.index]

    @property
    def opclass(self) -> UopClass:
        """µop class."""
        return _UOP_CLASSES[self.trace.opclass[self.index]]

    @property
    def srcs(self) -> Tuple[int, ...]:
        """Source registers (duplicates preserved, as in the static encoding)."""
        return self._srcs[self.index]

    @property
    def dests(self) -> Tuple[int, ...]:
        """Destination registers."""
        return self._dests[self.index]

    @property
    def queue(self) -> IssueQueueKind:
        """Issue queue kind."""
        return self._queues[self.index]

    @property
    def latency(self) -> int:
        """Functional-unit latency."""
        return self._latencies[self.index]

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self._is_memory[self.index]

    @property
    def is_load(self) -> bool:
        """True for loads."""
        return self._is_load[self.index]

    @property
    def is_store(self) -> bool:
        """True for stores."""
        return self._is_memory[self.index] and not self._is_load[self.index]

    @property
    def is_branch(self) -> bool:
        """True for control-flow µops."""
        return self._is_branch[self.index]

    @property
    def is_fp(self) -> bool:
        """True for floating-point arithmetic."""
        return self._is_fp[self.index]

    @property
    def address(self) -> int:
        """Effective address of memory µops."""
        return self._addresses[self.index]

    @property
    def mispredicted(self) -> bool:
        """Mispredict bit of branch µops."""
        return self._mispredicted[self.index]

    @property
    def vc_id(self) -> Optional[int]:
        """Virtual-cluster annotation (``None`` when unannotated)."""
        return self._vc_ids[self.index]

    @property
    def chain_leader(self) -> bool:
        """Chain-leader mark."""
        return self._leaders[self.index]

    @property
    def static_cluster(self) -> Optional[int]:
        """Static physical-cluster binding (``None`` when unbound)."""
        return self._static_clusters[self.index]

    @property
    def sid(self) -> int:
        """Static id of the underlying instruction."""
        return int(self.trace.sid[self.index])

    @property
    def static(self) -> StaticInstruction:
        """The underlying static instruction, rebuilt on demand per ``sid``.

        Policies keying per-instruction state on ``uop.static`` / ``.sid``
        keep working: instances are cached per ``sid``, so every dynamic
        occurrence of one instruction returns the same object (as on the
        ``DynamicUop`` path).  Note it is a *reconstruction* carrying the
        trace's annotation snapshot, not the program's own instance.
        """
        index = self.index
        sid = int(self.trace.sid[index])
        static = self._statics.get(sid)
        if static is None:
            static = StaticInstruction(
                sid,
                self.opclass,
                self._dests[index],
                self._srcs[index],
                block=int(self.trace.block[index]),
            )
            static.vc_id = self._vc_ids[index]
            static.chain_leader = self._leaders[index]
            static.static_cluster = self._static_clusters[index]
            self._statics[sid] = static
        return static

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledUopView(index={self.index}, seq={self.seq}, {self.opclass.name})"
