"""Region (superblock) formation for the compile-time partitioners.

The paper's software side partitions "data dependence graphs" built over a
compilation scope larger than a hardware dispatch group -- that is precisely
the advantage it claims for software steering (Section 3.2: "a bigger window
of instructions is inspected at compile time").  We form superblock-style
regions: starting from a seed block, the region grows along the most likely
CFG successor until an instruction budget is reached, a block is revisited,
or the path probability falls below a threshold.

Every basic block belongs to exactly one region, so annotating all regions
annotates the whole program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.program.program import Program
from repro.uops.uop import StaticInstruction


@dataclass
class Region:
    """One compilation region: an ordered list of block ids and their instructions."""

    rid: int
    block_ids: List[int] = field(default_factory=list)
    instructions: List[StaticInstruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)


def form_regions(
    program: Program,
    max_instructions: int = 128,
    min_path_probability: float = 0.05,
) -> List[Region]:
    """Partition ``program`` into superblock regions.

    Parameters
    ----------
    program:
        The static program.
    max_instructions:
        Upper bound on the number of instructions in a region (the compiler's
        window size).
    min_path_probability:
        Stop growing a region when the cumulative probability of the path
        from its seed falls below this threshold.

    Returns
    -------
    list[Region]
        Regions covering every block exactly once, ordered by seed block id.
    """
    if max_instructions < 1:
        raise ValueError("max_instructions must be positive")
    claimed: Dict[int, int] = {}
    regions: List[Region] = []
    order = sorted(program.blocks)
    # Seed regions starting from the CFG entry first, then any unclaimed block
    # in id order; this mirrors trace-based superblock formation seeded at the
    # hottest unvisited block without requiring a profile.
    seeds = [program.cfg.entry] + [b for b in order if b != program.cfg.entry]
    for seed in seeds:
        if seed in claimed:
            continue
        region = Region(rid=len(regions))
        bid = seed
        path_probability = 1.0
        while (
            bid is not None
            and bid not in claimed
            and len(region.instructions) < max_instructions
            and path_probability >= min_path_probability
        ):
            block = program.block(bid)
            if region.instructions and len(region.instructions) + len(block) > max_instructions:
                break
            claimed[bid] = region.rid
            region.block_ids.append(bid)
            region.instructions.extend(block.instructions)
            # Follow the most likely forward successor.
            succ = program.cfg.most_likely_successor(bid, exclude_back_edges=True)
            best_probability = 0.0
            for edge in program.cfg.successors(bid):
                if not edge.is_back_edge and edge.dst == succ:
                    best_probability = max(best_probability, edge.probability)
            path_probability *= best_probability
            bid = succ
        if region.block_ids:
            regions.append(region)
    return regions


def region_of_block(regions: Sequence[Region]) -> Dict[int, int]:
    """Return a mapping from block id to region id."""
    out: Dict[int, int] = {}
    for region in regions:
        for bid in region.block_ids:
            out[bid] = region.rid
    return out
