"""Compiler intermediate representation.

The compile-time half of the hybrid steering scheme (and both software-only
baselines) operates on a conventional compiler IR:

* :mod:`repro.program.basic_block` -- straight-line sequences of
  :class:`~repro.uops.uop.StaticInstruction`.
* :mod:`repro.program.cfg` -- the control-flow graph with edge probabilities
  and loop back-edges, used both by region formation and by the dynamic trace
  expander.
* :mod:`repro.program.program` -- the :class:`Program` container tying blocks,
  CFG and live-in registers together.
* :mod:`repro.program.ddg` -- data-dependence graph construction over a
  sequence of static instructions (the object all partitioners work on).
* :mod:`repro.program.regions` -- superblock-style region formation that gives
  the compiler the "bigger window of instructions" the paper credits
  software-only schemes with.
* :mod:`repro.program.trace` -- expansion of a static :class:`Program` into a
  dynamic µop trace consumed by the simulator.
"""

from repro.program.basic_block import BasicBlock
from repro.program.cfg import ControlFlowGraph, CFGEdge
from repro.program.ddg import DataDependenceGraph, build_ddg
from repro.program.program import Program
from repro.program.regions import Region, form_regions
from repro.program.trace import TraceGenerator, expand_trace

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "CFGEdge",
    "Program",
    "DataDependenceGraph",
    "build_ddg",
    "Region",
    "form_regions",
    "TraceGenerator",
    "expand_trace",
]
