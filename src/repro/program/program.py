"""Static program container."""

from __future__ import annotations

from typing import Dict, Iterator, Sequence

from repro.program.basic_block import BasicBlock
from repro.program.cfg import ControlFlowGraph
from repro.uops.registers import DEFAULT_REGISTER_SPACE, RegisterSpace
from repro.uops.uop import StaticInstruction


class Program:
    """A static program: basic blocks plus a control-flow graph.

    This is the unit the compile-time partitioners annotate and the trace
    expander executes.  Blocks are stored by id; the CFG references the same
    ids.

    Parameters
    ----------
    name:
        Program (benchmark/trace) name, used in reports.
    blocks:
        The basic blocks.
    cfg:
        Control-flow graph over the block ids.
    register_space:
        The architectural register namespace used by the instructions.
    """

    def __init__(
        self,
        name: str,
        blocks: Sequence[BasicBlock],
        cfg: ControlFlowGraph,
        register_space: RegisterSpace = DEFAULT_REGISTER_SPACE,
    ) -> None:
        self.name = name
        self.blocks: Dict[int, BasicBlock] = {b.bid: b for b in blocks}
        if len(self.blocks) != len(blocks):
            raise ValueError("duplicate basic-block ids in program")
        self.cfg = cfg
        self.register_space = register_space
        for bid in self.blocks:
            cfg.add_block(bid)

    # -- queries -----------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        """Number of basic blocks."""
        return len(self.blocks)

    @property
    def num_instructions(self) -> int:
        """Total number of static instructions."""
        return sum(len(b) for b in self.blocks.values())

    def block(self, bid: int) -> BasicBlock:
        """Return the basic block with id ``bid``."""
        return self.blocks[bid]

    def all_instructions(self) -> Iterator[StaticInstruction]:
        """Iterate over every static instruction (block order, program order)."""
        for bid in sorted(self.blocks):
            yield from self.blocks[bid].instructions

    def instruction_by_sid(self, sid: int) -> StaticInstruction:
        """Find the instruction with static id ``sid`` (linear scan)."""
        for inst in self.all_instructions():
            if inst.sid == sid:
                return inst
        raise KeyError(f"no instruction with sid {sid}")

    def clear_annotations(self) -> None:
        """Remove all steering annotations (between compiler passes)."""
        for inst in self.all_instructions():
            inst.clear_annotations()

    def annotation_summary(self) -> Dict[str, int]:
        """Count annotated instructions; useful in tests and reports."""
        vc = leaders = static = 0
        for inst in self.all_instructions():
            if inst.vc_id is not None:
                vc += 1
            if inst.chain_leader:
                leaders += 1
            if inst.static_cluster is not None:
                static += 1
        return {"vc_annotated": vc, "chain_leaders": leaders, "static_cluster_bound": static}

    def validate(self) -> None:
        """Check structural invariants of the program.

        * the CFG validates,
        * every CFG block id has a basic block,
        * static ids are unique,
        * register ids are within the register space.
        """
        self.cfg.validate()
        for bid in self.cfg.blocks:
            if bid not in self.blocks:
                raise ValueError(f"CFG references unknown block {bid}")
        seen = set()
        for inst in self.all_instructions():
            if inst.sid in seen:
                raise ValueError(f"duplicate static id {inst.sid}")
            seen.add(inst.sid)
            for reg in (*inst.dests, *inst.srcs):
                if not 0 <= reg < self.register_space.total:
                    raise ValueError(
                        f"instruction {inst.sid} references register {reg} outside the register space"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Program(name={self.name!r}, blocks={self.num_blocks}, "
            f"instructions={self.num_instructions})"
        )
