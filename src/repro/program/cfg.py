"""Control-flow graph with edge probabilities and loop annotations.

The CFG serves two purposes in the reproduction:

* region formation for the compile-time partitioners follows the most likely
  successor of each block (a superblock-style compilation scope), and
* the dynamic trace expander walks the CFG using the edge probabilities and
  loop trip counts to produce a µop stream with realistic repetition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx


@dataclass(frozen=True)
class CFGEdge:
    """One control-flow edge with its taken probability."""

    src: int
    dst: int
    probability: float = 1.0
    is_back_edge: bool = False


class ControlFlowGraph:
    """Directed control-flow graph over basic-block ids.

    The graph stores, per block, an ordered list of outgoing
    :class:`CFGEdge`.  Probabilities of the outgoing edges of a block should
    sum to 1 (validated by :meth:`validate`).  Back-edges mark natural loops;
    the trace expander uses per-loop expected trip counts stored in
    ``loop_trip_counts``.
    """

    def __init__(self, entry: int = 0) -> None:
        self.entry = int(entry)
        self._succs: Dict[int, List[CFGEdge]] = {}
        self._preds: Dict[int, List[CFGEdge]] = {}
        #: Expected trip count of the loop headed by each block (back-edge target).
        self.loop_trip_counts: Dict[int, float] = {}

    # -- construction ------------------------------------------------------------
    def add_block(self, bid: int) -> None:
        """Register a block id (idempotent)."""
        self._succs.setdefault(int(bid), [])
        self._preds.setdefault(int(bid), [])

    def add_edge(
        self,
        src: int,
        dst: int,
        probability: float = 1.0,
        is_back_edge: bool = False,
    ) -> CFGEdge:
        """Add a control-flow edge and return it."""
        if probability < 0 or probability > 1:
            raise ValueError(f"edge probability {probability} must be in [0, 1]")
        edge = CFGEdge(int(src), int(dst), float(probability), bool(is_back_edge))
        self.add_block(src)
        self.add_block(dst)
        self._succs[edge.src].append(edge)
        self._preds[edge.dst].append(edge)
        return edge

    def set_loop_trip_count(self, header: int, trips: float) -> None:
        """Record the expected trip count of the loop headed by ``header``."""
        if trips < 0:
            raise ValueError("trip count must be non-negative")
        self.loop_trip_counts[int(header)] = float(trips)

    # -- queries -----------------------------------------------------------------
    @property
    def blocks(self) -> List[int]:
        """All block ids known to the CFG."""
        return sorted(self._succs.keys())

    def successors(self, bid: int) -> List[CFGEdge]:
        """Outgoing edges of ``bid`` (ordered as inserted)."""
        return list(self._succs.get(int(bid), []))

    def predecessors(self, bid: int) -> List[CFGEdge]:
        """Incoming edges of ``bid``."""
        return list(self._preds.get(int(bid), []))

    def most_likely_successor(self, bid: int, exclude_back_edges: bool = True) -> Optional[int]:
        """Return the successor reached with the highest probability.

        Back-edges are excluded by default so that region formation follows
        the fall-through path out of loops rather than spinning inside them.
        """
        best: Optional[CFGEdge] = None
        for edge in self._succs.get(int(bid), []):
            if exclude_back_edges and edge.is_back_edge:
                continue
            if best is None or edge.probability > best.probability:
                best = edge
        return best.dst if best is not None else None

    def back_edges(self) -> List[CFGEdge]:
        """All edges flagged as loop back-edges."""
        return [e for edges in self._succs.values() for e in edges if e.is_back_edge]

    def loop_headers(self) -> List[int]:
        """Targets of back-edges (natural loop headers)."""
        return sorted({e.dst for e in self.back_edges()})

    def validate(self) -> None:
        """Check structural invariants; raise :class:`ValueError` on violation.

        * the entry block exists,
        * outgoing probabilities of every block with successors sum to ~1,
        * every back-edge target has a trip count if any trip counts are set.
        """
        if self.entry not in self._succs:
            raise ValueError(f"entry block {self.entry} is not part of the CFG")
        for bid, edges in self._succs.items():
            if not edges:
                continue
            total = sum(e.probability for e in edges)
            if abs(total - 1.0) > 1e-6:
                raise ValueError(
                    f"outgoing probabilities of block {bid} sum to {total:.6f}, expected 1.0"
                )

    # -- interoperability --------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        """Export the CFG as a :class:`networkx.DiGraph` (edges carry probability)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.blocks)
        for edges in self._succs.values():
            for e in edges:
                graph.add_edge(e.src, e.dst, probability=e.probability, back_edge=e.is_back_edge)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n_edges = sum(len(v) for v in self._succs.values())
        return f"ControlFlowGraph(blocks={len(self._succs)}, edges={n_edges}, entry={self.entry})"
