"""Basic blocks: straight-line sequences of static instructions."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.uops.uop import StaticInstruction


class BasicBlock:
    """A maximal straight-line sequence of static instructions.

    Parameters
    ----------
    bid:
        Unique block id within the program.
    instructions:
        The instructions of the block, in program order.  The block id of
        each instruction is rewritten to ``bid``.
    name:
        Optional human-readable label (e.g. ``"loop_body"``).
    """

    __slots__ = ("bid", "instructions", "name")

    def __init__(
        self,
        bid: int,
        instructions: Optional[Sequence[StaticInstruction]] = None,
        name: str = "",
    ) -> None:
        self.bid = int(bid)
        self.instructions: List[StaticInstruction] = list(instructions or [])
        for inst in self.instructions:
            inst.block = self.bid
        self.name = name or f"bb{bid}"

    def append(self, inst: StaticInstruction) -> None:
        """Append ``inst`` to the block, claiming it for this block."""
        inst.block = self.bid
        self.instructions.append(inst)

    def extend(self, insts: Iterable[StaticInstruction]) -> None:
        """Append every instruction in ``insts``."""
        for inst in insts:
            self.append(inst)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[StaticInstruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> StaticInstruction:
        return self.instructions[index]

    @property
    def terminator(self) -> Optional[StaticInstruction]:
        """The final instruction if it is a branch, otherwise ``None``."""
        if self.instructions and self.instructions[-1].is_branch:
            return self.instructions[-1]
        return None

    @property
    def defined_registers(self) -> frozenset:
        """Set of registers written anywhere in the block."""
        out = set()
        for inst in self.instructions:
            out.update(inst.dests)
        return frozenset(out)

    @property
    def used_registers(self) -> frozenset:
        """Set of registers read anywhere in the block."""
        out = set()
        for inst in self.instructions:
            out.update(inst.srcs)
        return frozenset(out)

    @property
    def live_in_registers(self) -> frozenset:
        """Registers read before any write inside the block (block-local live-ins)."""
        written = set()
        live_in = set()
        for inst in self.instructions:
            for src in inst.srcs:
                if src not in written:
                    live_in.add(src)
            written.update(inst.dests)
        return frozenset(live_in)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BasicBlock(bid={self.bid}, name={self.name!r}, n={len(self)})"
