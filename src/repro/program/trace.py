"""Dynamic trace expansion.

The paper's simulator is trace-driven: it executes traces of IA32 binaries
collected with Pin.  Our substitute expands a static :class:`~repro.program.program.Program`
into a stream of :class:`~repro.uops.uop.DynamicUop` by walking the CFG with
a seeded random generator:

* control flow follows the edge probabilities of the CFG (loops therefore
  iterate with their expected trip counts),
* memory instructions receive effective addresses from per-instruction
  address streams (strided or uniformly random within a configurable working
  set), so the cache hierarchy sees realistic locality,
* branch µops are occasionally flagged as mispredicted, which the front end
  of the simulator turns into fetch redirect penalties.

Everything is reproducible from the ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.program.program import Program
from repro.uops.uop import DynamicUop, StaticInstruction

#: Cache line size assumed by the address model (bytes).
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class AddressModel:
    """Parameters of the synthetic effective-address streams.

    Parameters
    ----------
    working_set_bytes:
        Size of the region of memory touched by random accesses.  Working
        sets larger than the L1 (or L2) produce the corresponding miss
        behaviour.
    strided_fraction:
        Fraction of static memory instructions whose dynamic instances form a
        sequential strided stream (high spatial locality); the remainder
        access uniformly random lines of the working set.
    stride_bytes:
        Stride of the sequential streams.
    """

    working_set_bytes: int = 512 * 1024
    strided_fraction: float = 0.6
    stride_bytes: int = 8


class TraceGenerator:
    """Expand a static program into a dynamic µop trace.

    Parameters
    ----------
    program:
        The static program to execute.
    seed:
        Seed of the NumPy generator used for control flow, addresses and
        branch outcomes.
    address_model:
        Synthetic memory behaviour (see :class:`AddressModel`).
    mispredict_rate:
        Probability that a dynamic branch is flagged as mispredicted.
    """

    def __init__(
        self,
        program: Program,
        seed: int = 0,
        address_model: Optional[AddressModel] = None,
        mispredict_rate: float = 0.02,
    ) -> None:
        self.program = program
        self.seed = int(seed)
        self.address_model = address_model or AddressModel()
        if not 0.0 <= mispredict_rate <= 1.0:
            raise ValueError("mispredict_rate must be in [0, 1]")
        self.mispredict_rate = float(mispredict_rate)
        self._rng = np.random.default_rng(self.seed)
        # Per static memory instruction: (is_strided, base_address, counter).
        self._streams: Dict[int, List[int]] = {}
        self._stream_is_strided: Dict[int, bool] = {}

    # -- address streams ---------------------------------------------------------
    def _address_for(self, inst: StaticInstruction) -> int:
        """Next effective address for a dynamic instance of ``inst``."""
        model = self.address_model
        sid = inst.sid
        if sid not in self._stream_is_strided:
            self._stream_is_strided[sid] = bool(self._rng.random() < model.strided_fraction)
            base = int(self._rng.integers(0, max(1, model.working_set_bytes // CACHE_LINE_BYTES)))
            self._streams[sid] = [base * CACHE_LINE_BYTES, 0]
        if self._stream_is_strided[sid]:
            base, count = self._streams[sid]
            address = (base + count * model.stride_bytes) % model.working_set_bytes
            self._streams[sid][1] = count + 1
            return address
        line = int(self._rng.integers(0, max(1, model.working_set_bytes // CACHE_LINE_BYTES)))
        return line * CACHE_LINE_BYTES

    # -- control flow ------------------------------------------------------------
    def _next_block(self, bid: int) -> int:
        """Sample the next block id from the outgoing edges of ``bid``."""
        edges = self.program.cfg.successors(bid)
        if not edges:
            return self.program.cfg.entry
        if len(edges) == 1:
            return edges[0].dst
        probabilities = np.array([e.probability for e in edges], dtype=float)
        total = probabilities.sum()
        if total <= 0:
            return edges[0].dst
        probabilities /= total
        choice = int(self._rng.choice(len(edges), p=probabilities))
        return edges[choice].dst

    # -- expansion ---------------------------------------------------------------
    def generate(self, num_uops: int) -> List[DynamicUop]:
        """Produce a trace of approximately ``num_uops`` dynamic µops.

        The trace always ends at a basic-block boundary, so the length may
        exceed ``num_uops`` by at most one block.
        """
        if num_uops < 1:
            raise ValueError("num_uops must be positive")
        trace: List[DynamicUop] = []
        bid = self.program.cfg.entry
        seq = 0
        guard = 0
        max_blocks = num_uops * 4 + 16  # guard against degenerate CFGs with empty blocks
        while len(trace) < num_uops and guard < max_blocks:
            guard += 1
            block = self.program.block(bid)
            for inst in block.instructions:
                address = self._address_for(inst) if inst.is_memory else 0
                mispredicted = bool(
                    inst.is_branch and self._rng.random() < self.mispredict_rate
                )
                trace.append(DynamicUop(seq, inst, address=address, mispredicted=mispredicted))
                seq += 1
            bid = self._next_block(bid)
        if not trace:
            raise ValueError("trace expansion produced no µops (empty program?)")
        return trace

    def iterate(self, num_uops: int) -> Iterator[DynamicUop]:
        """Iterator variant of :meth:`generate` (materialises the list once)."""
        return iter(self.generate(num_uops))


def expand_trace(
    program: Program,
    num_uops: int,
    seed: int = 0,
    address_model: Optional[AddressModel] = None,
    mispredict_rate: float = 0.02,
) -> List[DynamicUop]:
    """Convenience wrapper around :class:`TraceGenerator`.

    See :class:`TraceGenerator` for parameter semantics.
    """
    generator = TraceGenerator(
        program,
        seed=seed,
        address_model=address_model,
        mispredict_rate=mispredict_rate,
    )
    return generator.generate(num_uops)
