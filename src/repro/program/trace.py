"""Dynamic trace expansion.

The paper's simulator is trace-driven: it executes traces of IA32 binaries
collected with Pin.  Our substitute expands a static :class:`~repro.program.program.Program`
into a stream of :class:`~repro.uops.uop.DynamicUop` by walking the CFG with
a seeded random generator:

* control flow follows the edge probabilities of the CFG (loops therefore
  iterate with their expected trip counts),
* memory instructions receive effective addresses from per-instruction
  address streams (strided or uniformly random within a configurable working
  set), so the cache hierarchy sees realistic locality,
* branch µops are occasionally flagged as mispredicted, which the front end
  of the simulator turns into fetch redirect penalties.

Everything is reproducible from the ``seed``.  Both output forms share one
seeded CFG walk: :meth:`TraceGenerator.generate` materialises
:class:`~repro.uops.uop.DynamicUop` objects referencing the program's static
instructions (annotations stay shared by reference), while
:meth:`TraceGenerator.generate_compiled` emits a
:class:`~repro.uops.compiled.CompiledTrace` directly -- per-instruction facts
are gathered once per static instruction and scattered across the dynamic
stream, so no per-µop Python object is ever created on the fast path.  The
two forms are interchangeable: ``generate_compiled(n)`` equals
``compile_trace(generate(n))`` for the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.program.basic_block import BasicBlock
from repro.program.program import Program
from repro.uops.compiled import NO_ANNOTATION, CompiledTrace
from repro.uops.uop import DynamicUop, StaticInstruction

#: Cache line size assumed by the address model (bytes).
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class AddressModel:
    """Parameters of the synthetic effective-address streams.

    Parameters
    ----------
    working_set_bytes:
        Size of the region of memory touched by random accesses.  Working
        sets larger than the L1 (or L2) produce the corresponding miss
        behaviour.
    strided_fraction:
        Fraction of static memory instructions whose dynamic instances form a
        sequential strided stream (high spatial locality); the remainder
        access uniformly random lines of the working set.
    stride_bytes:
        Stride of the sequential streams.
    """

    working_set_bytes: int = 512 * 1024
    strided_fraction: float = 0.6
    stride_bytes: int = 8


class TraceGenerator:
    """Expand a static program into a dynamic µop trace.

    Parameters
    ----------
    program:
        The static program to execute.
    seed:
        Seed of the NumPy generator used for control flow, addresses and
        branch outcomes.
    address_model:
        Synthetic memory behaviour (see :class:`AddressModel`).
    mispredict_rate:
        Probability that a dynamic branch is flagged as mispredicted.
    """

    def __init__(
        self,
        program: Program,
        seed: int = 0,
        address_model: Optional[AddressModel] = None,
        mispredict_rate: float = 0.02,
    ) -> None:
        self.program = program
        self.seed = int(seed)
        self.address_model = address_model or AddressModel()
        if not 0.0 <= mispredict_rate <= 1.0:
            raise ValueError("mispredict_rate must be in [0, 1]")
        self.mispredict_rate = float(mispredict_rate)
        self._rng = np.random.default_rng(self.seed)
        # Per static memory instruction: (is_strided, base_address, counter).
        self._streams: Dict[int, List[int]] = {}
        self._stream_is_strided: Dict[int, bool] = {}

    # -- address streams ---------------------------------------------------------
    def _address_for(self, inst: StaticInstruction) -> int:
        """Next effective address for a dynamic instance of ``inst``."""
        model = self.address_model
        sid = inst.sid
        if sid not in self._stream_is_strided:
            self._stream_is_strided[sid] = bool(self._rng.random() < model.strided_fraction)
            base = int(self._rng.integers(0, max(1, model.working_set_bytes // CACHE_LINE_BYTES)))
            self._streams[sid] = [base * CACHE_LINE_BYTES, 0]
        if self._stream_is_strided[sid]:
            base, count = self._streams[sid]
            address = (base + count * model.stride_bytes) % model.working_set_bytes
            self._streams[sid][1] = count + 1
            return address
        line = int(self._rng.integers(0, max(1, model.working_set_bytes // CACHE_LINE_BYTES)))
        return line * CACHE_LINE_BYTES

    # -- control flow ------------------------------------------------------------
    def _next_block(self, bid: int) -> int:
        """Sample the next block id from the outgoing edges of ``bid``."""
        edges = self.program.cfg.successors(bid)
        if not edges:
            return self.program.cfg.entry
        if len(edges) == 1:
            return edges[0].dst
        probabilities = np.array([e.probability for e in edges], dtype=float)
        total = probabilities.sum()
        if total <= 0:
            return edges[0].dst
        probabilities /= total
        choice = int(self._rng.choice(len(edges), p=probabilities))
        return edges[choice].dst

    # -- expansion ---------------------------------------------------------------
    def _walk_blocks(self, num_uops: int) -> Iterator[BasicBlock]:
        """The seeded CFG walk shared by both trace forms.

        Yields basic blocks until at least ``num_uops`` instructions have
        been covered (the trace always ends at a block boundary).  Both
        :meth:`generate` and :meth:`generate_compiled` consume this walk and
        draw their per-µop randomness in the same order, which is what makes
        the two forms bit-identical for one seed.
        """
        count = 0
        bid = self.program.cfg.entry
        guard = 0
        max_blocks = num_uops * 4 + 16  # guard against degenerate CFGs with empty blocks
        while count < num_uops and guard < max_blocks:
            guard += 1
            block = self.program.block(bid)
            yield block
            count += len(block.instructions)
            bid = self._next_block(bid)

    def generate(self, num_uops: int) -> List[DynamicUop]:
        """Produce a trace of approximately ``num_uops`` dynamic µops.

        The trace always ends at a basic-block boundary, so the length may
        exceed ``num_uops`` by at most one block.  The returned µops share
        the program's :class:`StaticInstruction` instances, so compiler
        annotations applied to the program after expansion are visible
        through the trace.
        """
        if num_uops < 1:
            raise ValueError("num_uops must be positive")
        trace: List[DynamicUop] = []
        seq = 0
        for block in self._walk_blocks(num_uops):
            for inst in block.instructions:
                address = self._address_for(inst) if inst.is_memory else 0
                mispredicted = bool(
                    inst.is_branch and self._rng.random() < self.mispredict_rate
                )
                trace.append(DynamicUop(seq, inst, address=address, mispredicted=mispredicted))
                seq += 1
        if not trace:
            raise ValueError("trace expansion produced no µops (empty program?)")
        return trace

    def generate_compiled(self, num_uops: int) -> CompiledTrace:
        """Expand directly to a :class:`~repro.uops.compiled.CompiledTrace`.

        Identical stream to :meth:`generate` (same walk, same per-µop
        randomness), but no ``DynamicUop`` objects are created: the walk
        only records ``(sid, address, mispredict)`` and every static fact is
        gathered per distinct instruction afterwards.
        """
        if num_uops < 1:
            raise ValueError("num_uops must be positive")
        sids: List[int] = []
        addresses: List[int] = []
        mispredicted: List[bool] = []
        rng_random = self._rng.random
        rate = self.mispredict_rate
        address_for = self._address_for
        for block in self._walk_blocks(num_uops):
            for inst in block.instructions:
                sids.append(inst.sid)
                addresses.append(address_for(inst) if inst.is_memory else 0)
                mispredicted.append(bool(inst.is_branch and rng_random() < rate))
        if not sids:
            raise ValueError("trace expansion produced no µops (empty program?)")
        # Gather the static columns once per instruction, scatter per µop.
        by_sid: Dict[int, StaticInstruction] = {}
        for block in self.program.blocks.values():
            for inst in block.instructions:
                by_sid[inst.sid] = inst
        statics = [by_sid[sid] for sid in sids]
        return CompiledTrace.from_columns(
            sids=sids,
            opclasses=[int(inst.opclass) for inst in statics],
            srcs=[inst.srcs for inst in statics],
            dests=[inst.dests for inst in statics],
            blocks=[inst.block for inst in statics],
            addresses=addresses,
            mispredicted=mispredicted,
            vc_ids=[NO_ANNOTATION if inst.vc_id is None else int(inst.vc_id) for inst in statics],
            chain_leaders=[bool(inst.chain_leader) for inst in statics],
            static_clusters=[
                NO_ANNOTATION if inst.static_cluster is None else int(inst.static_cluster)
                for inst in statics
            ],
        )

    def iterate(self, num_uops: int) -> Iterator[DynamicUop]:
        """Iterator variant of :meth:`generate` (materialises the list once)."""
        return iter(self.generate(num_uops))


def expand_trace(
    program: Program,
    num_uops: int,
    seed: int = 0,
    address_model: Optional[AddressModel] = None,
    mispredict_rate: float = 0.02,
) -> List[DynamicUop]:
    """Convenience wrapper around :class:`TraceGenerator`.

    See :class:`TraceGenerator` for parameter semantics.
    """
    generator = TraceGenerator(
        program,
        seed=seed,
        address_model=address_model,
        mispredict_rate=mispredict_rate,
    )
    return generator.generate(num_uops)


def expand_compiled_trace(
    program: Program,
    num_uops: int,
    seed: int = 0,
    address_model: Optional[AddressModel] = None,
    mispredict_rate: float = 0.02,
) -> CompiledTrace:
    """Convenience wrapper around :meth:`TraceGenerator.generate_compiled`.

    See :class:`TraceGenerator` for parameter semantics.
    """
    generator = TraceGenerator(
        program,
        seed=seed,
        address_model=address_model,
        mispredict_rate=mispredict_rate,
    )
    return generator.generate_compiled(num_uops)
