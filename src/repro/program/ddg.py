"""Data-dependence graph (DDG) construction.

Every compile-time partitioner in the paper (the VC partitioner of Figure 2,
RHOP and the OB/SPDI placer) operates on the data-dependence graph of a
compilation region.  The DDG built here contains one node per static
instruction of the region and one edge per register true (read-after-write)
dependence, annotated with the producer latency.  Anti- and output
dependences are irrelevant for steering (the out-of-order backend renames
registers), so they are not represented.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.uops.uop import StaticInstruction


class DataDependenceGraph:
    """DDG over the instructions of one compilation region.

    Nodes are integer positions ``0..n-1`` into the region's instruction
    sequence; :attr:`instructions` maps positions back to
    :class:`~repro.uops.uop.StaticInstruction` objects.  Edges are stored as
    adjacency lists (``succs`` / ``preds``) with the producer latency as the
    edge weight, which is what the criticality and slack analyses need.
    """

    def __init__(self, instructions: Sequence[StaticInstruction]) -> None:
        self.instructions: List[StaticInstruction] = list(instructions)
        n = len(self.instructions)
        self.succs: List[List[int]] = [[] for _ in range(n)]
        self.preds: List[List[int]] = [[] for _ in range(n)]
        #: Edge latency keyed by ``(producer, consumer)`` node pair.
        self.edge_latency: Dict[Tuple[int, int], int] = {}

    # -- construction ------------------------------------------------------------
    def add_edge(self, producer: int, consumer: int, latency: Optional[int] = None) -> None:
        """Add a true-dependence edge from node ``producer`` to node ``consumer``."""
        n = len(self.instructions)
        if not (0 <= producer < n and 0 <= consumer < n):
            raise ValueError(f"edge ({producer}, {consumer}) out of range for {n} nodes")
        if producer == consumer:
            raise ValueError("self-dependences are not allowed in a DDG")
        key = (producer, consumer)
        if key in self.edge_latency:
            return
        if latency is None:
            latency = self.instructions[producer].latency
        self.succs[producer].append(consumer)
        self.preds[consumer].append(producer)
        self.edge_latency[key] = int(latency)

    # -- queries -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def num_edges(self) -> int:
        """Number of dependence edges."""
        return len(self.edge_latency)

    def roots(self) -> List[int]:
        """Nodes with no predecessors (region live-in consumers or constants)."""
        return [i for i in range(len(self.instructions)) if not self.preds[i]]

    def leaves(self) -> List[int]:
        """Nodes with no successors inside the region."""
        return [i for i in range(len(self.instructions)) if not self.succs[i]]

    def topological_order(self) -> List[int]:
        """Nodes in a topological order (program order is always valid).

        The DDG is built from a single program-ordered instruction sequence,
        so program order itself is a topological order; we return it directly
        which also keeps partitioning deterministic.
        """
        return list(range(len(self.instructions)))

    def instruction(self, node: int) -> StaticInstruction:
        """Return the static instruction at DDG node ``node``."""
        return self.instructions[node]

    def to_networkx(self) -> nx.DiGraph:
        """Export to a :class:`networkx.DiGraph`; node attribute ``inst`` holds the instruction."""
        graph = nx.DiGraph()
        for i, inst in enumerate(self.instructions):
            graph.add_node(i, inst=inst)
        for (p, c), lat in self.edge_latency.items():
            graph.add_edge(p, c, latency=lat)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataDependenceGraph(nodes={len(self)}, edges={self.num_edges})"


def build_ddg(
    instructions: Sequence[StaticInstruction],
    include_memory_edges: bool = False,
) -> DataDependenceGraph:
    """Build the DDG of a program-ordered instruction sequence.

    Parameters
    ----------
    instructions:
        Instructions in program order (one compilation region).
    include_memory_edges:
        When ``True``, add a conservative dependence edge from every store to
        every later load (same-region memory ordering).  The paper's
        steering algorithms work on register dependences only; the option is
        provided for sensitivity studies.

    Returns
    -------
    DataDependenceGraph
        The register true-dependence graph of the region.
    """
    ddg = DataDependenceGraph(instructions)
    last_writer: Dict[int, int] = {}
    last_stores: List[int] = []
    for i, inst in enumerate(instructions):
        for src in inst.srcs:
            producer = last_writer.get(src)
            if producer is not None:
                ddg.add_edge(producer, i)
        if include_memory_edges and inst.is_load:
            for store in last_stores:
                ddg.add_edge(store, i)
        for dst in inst.dests:
            last_writer[dst] = i
        if include_memory_edges and inst.is_store:
            last_stores.append(i)
    return ddg
