"""Compile-time partitioning passes (the software half of steering).

Three passes are implemented, matching the configurations of Table 3:

* :mod:`repro.partition.vc_partitioner` -- the paper's contribution: the
  virtual-cluster partitioner of Figure 2 (criticality computation,
  completion-time-driven assignment to virtual clusters, chain / chain-leader
  identification of Figure 3).
* :mod:`repro.partition.rhop_partitioner` -- RHOP: multilevel (coarsening +
  refinement) graph partitioning with slack-based weights, binding
  instructions to physical clusters.
* :mod:`repro.partition.ob_partitioner` -- OB: SPDI-style static placement
  with dynamic issue; greedy per-operation placement onto physical clusters
  using static latency and load estimates.

All passes share the region-driven driver in :mod:`repro.partition.base` and
write their results as annotations on the static instructions (the ISA
extension modelled in :mod:`repro.uops.encoding`).
"""

from repro.partition.base import PartitionReport, RegionPartitioner
from repro.partition.chains import Chain, identify_chains
from repro.partition.multilevel import MultilevelPartitioner, PartitionObjective
from repro.partition.ob_partitioner import OperationBasedPartitioner
from repro.partition.rhop_partitioner import RhopPartitioner
from repro.partition.vc_partitioner import VirtualClusterPartitioner

__all__ = [
    "PartitionReport",
    "RegionPartitioner",
    "Chain",
    "identify_chains",
    "MultilevelPartitioner",
    "PartitionObjective",
    "OperationBasedPartitioner",
    "RhopPartitioner",
    "VirtualClusterPartitioner",
]
