"""OB: static-placement dynamic-issue operation-based steering (SPDI).

Nagarajan et al. (PACT'04) place instructions onto the ALUs of an EDGE
machine at compile time and let the hardware issue them dynamically; the
paper uses this "operation-based" (OB) scheme as its second software-only
baseline.  Placement is greedy and per operation: visiting the region DDG
top-down, every instruction is bound to the physical cluster that minimises
its statically-estimated start time, considering

* where its producers were placed (a cross-cluster producer adds the
  communication latency), and
* how many operations each cluster has already received (static load,
  divided by the cluster issue width).

Unlike the VC partitioner the result is a hard binding to a *physical*
cluster carried to the hardware unchanged; unlike RHOP there is no global
(multilevel) view, which is why OB tends to produce fewer copies than RHOP
but worse balance.
"""

from __future__ import annotations

from typing import List

from repro.analysis.completion_time import CompletionTimeEstimator
from repro.partition.base import RegionPartitioner
from repro.program.ddg import DataDependenceGraph
from repro.scenarios.registry import register_partitioner


class OperationBasedPartitioner(RegionPartitioner):
    """Greedy static placement of operations onto physical clusters.

    Parameters
    ----------
    num_clusters:
        Number of physical clusters of the target machine.
    region_size:
        Compiler window (instructions per region).
    issue_width:
        Per-cluster issue bandwidth assumed by the static load estimate.
    communication_latency:
        Assumed inter-cluster communication latency (cycles).
    balance_bias:
        Additional weight (cycles per queued operation) that penalises the
        more loaded cluster even when communication is a tie; SPDI balances
        load across ALUs fairly aggressively.
    """

    name = "OB"

    def __init__(
        self,
        num_clusters: int = 2,
        region_size: int = 128,
        issue_width: int = 2,
        communication_latency: int = 1,
        balance_bias: float = 0.25,
    ) -> None:
        super().__init__(num_targets=num_clusters, region_size=region_size)
        self.issue_width = int(issue_width)
        self.communication_latency = int(communication_latency)
        self.balance_bias = float(balance_bias)

    def partition_region(self, ddg: DataDependenceGraph) -> List[int]:
        """Bind every DDG node to a physical cluster."""
        estimator = CompletionTimeEstimator(
            ddg,
            num_virtual_clusters=self.num_targets,
            issue_width=self.issue_width,
            communication_latency=self.communication_latency,
            contention_mode="absolute",
        )
        assignment = [0] * len(ddg)
        for node in ddg.topological_order():
            best_cluster = 0
            best_score = None
            for cluster in range(self.num_targets):
                completion = estimator.estimate(node, cluster)
                score = completion + self.balance_bias * estimator.load[cluster]
                key = (score, estimator.load[cluster], cluster)
                if best_score is None or key < best_score:
                    best_score = key
                    best_cluster = cluster
            estimator.assign(node, best_cluster)
            assignment[node] = best_cluster
        return assignment


@register_partitioner("OB")
def _build_ob(
    num_clusters: int, num_virtual_clusters: int, region_size: int, **params
) -> OperationBasedPartitioner:
    """Registry builder for the OB/SPDI pass (physical-cluster targets)."""
    return OperationBasedPartitioner(num_clusters=num_clusters, region_size=region_size, **params)
