"""RHOP: region-based hierarchical operation partitioning (Chu et al., PLDI'03).

RHOP is the strongest software-only baseline in the paper.  It formulates
cluster assignment as a graph-partitioning problem solved with a multilevel
algorithm:

* **weights** -- nodes and edges of the region DDG are weighted using slack
  information computed from static latencies (operations and dependences on
  the critical path have no slack and therefore heavy edges);
* **coarsening** -- heavy-edge matching groups critical-path operations
  together and stops when the coarse graph is small;
* **refinement** -- the initial partition is projected back through the
  hierarchy while greedy moves improve the combined workload-balance /
  communication objective.

The output binds every static instruction to a *physical* cluster
(``static_cluster``); at run time the hardware follows that binding blindly
(:class:`repro.steering.static_follow.StaticAssignmentSteering`), which is
precisely the weakness the hybrid scheme addresses: the compile-time workload
estimate cannot anticipate dynamic behaviour in an out-of-order core.
"""

from __future__ import annotations

from typing import List

from repro.analysis.slack import compute_slack
from repro.partition.base import RegionPartitioner
from repro.partition.multilevel import MultilevelPartitioner, PartitionObjective
from repro.program.ddg import DataDependenceGraph
from repro.scenarios.registry import register_partitioner


class RhopPartitioner(RegionPartitioner):
    """Multilevel slack-weighted partitioning onto physical clusters.

    Parameters
    ----------
    num_clusters:
        Number of physical clusters of the target machine.
    region_size:
        Compiler window (instructions per region).
    max_edge_weight:
        Weight given to zero-slack (critical) dependence edges; slacker edges
        get proportionally smaller weights down to 1.
    objective:
        Cut / balance trade-off of the refinement stage.  RHOP refines using
        "the workload per cluster and total system workload"; the default
        objective therefore weighs imbalance more heavily than the generic
        engine's default, which is what makes RHOP balance-oriented (and, as
        the paper observes, better balanced but copy-heavier than VC).
    """

    name = "RHOP"

    def __init__(
        self,
        num_clusters: int = 2,
        region_size: int = 128,
        max_edge_weight: int = 16,
        objective: PartitionObjective | None = None,
    ) -> None:
        super().__init__(num_targets=num_clusters, region_size=region_size)
        self.max_edge_weight = int(max_edge_weight)
        self.objective = objective or PartitionObjective(
            cut_weight=1.0, imbalance_weight=2.0, max_imbalance=0.15
        )

    def partition_region(self, ddg: DataDependenceGraph) -> List[int]:
        """Partition one region DDG onto the physical clusters."""
        if len(ddg) == 0:
            return []
        slack = compute_slack(ddg)
        node_weights = [slack.node_weight(node) for node in range(len(ddg))]
        edge_weights = {
            edge: slack.edge_weight(edge, max_weight=self.max_edge_weight)
            for edge in ddg.edge_latency
        }
        # Balance groups: the basic block of every operation.  RHOP balances
        # the *estimated schedule*, not raw instruction counts; grouping by
        # block forces every part of the region that executes together to be
        # spread over the clusters (see MultilevelPartitioner.partition).
        node_groups = [inst.block for inst in ddg.instructions]
        partitioner = MultilevelPartitioner(self.num_targets, objective=self.objective)
        return partitioner.partition(node_weights, edge_weights, node_groups=node_groups)


@register_partitioner("RHOP")
def _build_rhop(
    num_clusters: int, num_virtual_clusters: int, region_size: int, **params
) -> RhopPartitioner:
    """Registry builder for the RHOP pass (physical-cluster targets)."""
    return RhopPartitioner(num_clusters=num_clusters, region_size=region_size, **params)
