"""The virtual-cluster partitioner (Figure 2): the software half of the hybrid scheme.

The pass performs the three steps of Figure 2:

1. **Computation of critical paths** -- depth + height traversals over the
   region DDG (:mod:`repro.analysis.criticality`).
2. **Partition of DDG into virtual clusters** -- a top-down (topological)
   traversal that assigns each instruction to the virtual cluster with the
   best *benefit*, where the benefit is the estimated completion time of the
   instruction on that virtual cluster
   (:class:`~repro.analysis.completion_time.CompletionTimeEstimator`:
   dependences, latencies and resource contention).  The traversal visits
   more critical instructions first within each dependence level so that
   critical chains claim their cluster before less important work does.
3. **Identification of chains and chain leaders** -- chains are split where a
   run-time remap is free (:mod:`repro.partition.chains`), and leaders are
   marked so the hardware knows when to consult the workload counters.

The output is written onto the static instructions as ``vc_id`` plus the
``chain_leader`` mark -- exactly the information the paper's ISA extension
carries.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.completion_time import CompletionTimeEstimator
from repro.analysis.criticality import compute_criticality
from repro.partition.base import PartitionReport, RegionPartitioner
from repro.partition.chains import identify_chains
from repro.program.ddg import DataDependenceGraph
from repro.scenarios.registry import register_partitioner


class VirtualClusterPartitioner(RegionPartitioner):
    """Assign instructions to virtual clusters and mark chain leaders.

    Parameters
    ----------
    num_virtual_clusters:
        Number of virtual clusters exposed by the ISA (2 in the paper's main
        configuration; 2 or 4 in the 4-cluster study).
    region_size:
        Compiler window (instructions per region).
    issue_width:
        Per-cluster issue bandwidth assumed by the completion-time estimator.
    communication_latency:
        Assumed inter-cluster communication latency (cycles).
    criticality_first:
        When ``True`` (default) ties between virtual clusters are broken in
        favour of the cluster of the instruction's most critical predecessor,
        which keeps critical chains together as the paper intends.
    """

    name = "VC"

    def __init__(
        self,
        num_virtual_clusters: int = 2,
        region_size: int = 128,
        issue_width: int = 2,
        communication_latency: int = 2,
        criticality_first: bool = True,
    ) -> None:
        super().__init__(num_targets=num_virtual_clusters, region_size=region_size)
        self.issue_width = int(issue_width)
        self.communication_latency = int(communication_latency)
        self.criticality_first = bool(criticality_first)

    # -- Figure 2, steps 1 and 2 --------------------------------------------------
    def partition_region(self, ddg: DataDependenceGraph) -> List[int]:
        """Assign every DDG node to a virtual cluster."""
        criticality = compute_criticality(ddg)
        estimator = CompletionTimeEstimator(
            ddg,
            num_virtual_clusters=self.num_targets,
            issue_width=self.issue_width,
            communication_latency=self.communication_latency,
            contention_mode="relative",
        )
        assignment = [0] * len(ddg)
        for node in ddg.topological_order():
            best_vc = 0
            best_key = None
            for vc in range(self.num_targets):
                completion = estimator.estimate(node, vc)
                # Tie-breaking: prefer the virtual cluster of the most critical
                # predecessor (keeps critical chains whole), then the least
                # loaded virtual cluster, then the lowest index for determinism.
                pred_bonus = 0
                if self.criticality_first and ddg.preds[node]:
                    most_critical_pred = max(
                        ddg.preds[node], key=lambda p: criticality.criticality[p]
                    )
                    if estimator.assignment[most_critical_pred] == vc:
                        pred_bonus = -1
                key = (completion, pred_bonus, estimator.load[vc], vc)
                if best_key is None or key < best_key:
                    best_key = key
                    best_vc = vc
            estimator.assign(node, best_vc)
            assignment[node] = best_vc
        return assignment

    # -- Figure 2, step 3 ----------------------------------------------------------
    def apply_assignment(
        self, ddg: DataDependenceGraph, assignment: Sequence[int], report: PartitionReport
    ) -> None:
        """Write ``vc_id`` and the chain-leader marks onto the instructions."""
        chains, leaders = identify_chains(ddg, assignment)
        for node, vc in enumerate(assignment):
            inst = ddg.instructions[node]
            inst.vc_id = int(vc)
            inst.chain_leader = bool(leaders[node])
            # The hybrid scheme never binds instructions to physical clusters
            # at compile time; make sure stale annotations cannot leak through.
            inst.static_cluster = None


@register_partitioner("VC")
def _build_vc(
    num_clusters: int, num_virtual_clusters: int, region_size: int, **params
) -> VirtualClusterPartitioner:
    """Registry builder for the paper's virtual-cluster pass: it targets
    *virtual* clusters, so it takes the virtual-cluster count, not the
    physical one."""
    params.setdefault("num_virtual_clusters", num_virtual_clusters)
    return VirtualClusterPartitioner(region_size=region_size, **params)
