"""Shared driver for compile-time partitioning passes.

Every pass works region by region: the driver forms superblock regions,
builds the region DDG, asks the concrete partitioner for a per-node target
(virtual cluster or physical cluster), and lets the partitioner write the
corresponding annotations onto the static instructions.  A
:class:`PartitionReport` summarising cut edges and balance is returned so
examples, tests and reports can inspect what the compiler did.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.program.ddg import DataDependenceGraph, build_ddg
from repro.program.program import Program
from repro.program.regions import Region, form_regions


@dataclass
class PartitionReport:
    """Summary of one compile-time partitioning run over a program."""

    program_name: str
    partitioner: str
    num_regions: int = 0
    num_instructions: int = 0
    #: Register dependence edges whose endpoints were placed on different targets.
    cut_edges: int = 0
    #: Total register dependence edges considered.
    total_edges: int = 0
    #: Number of instructions assigned to each target, accumulated over regions.
    target_loads: Dict[int, int] = field(default_factory=dict)
    #: Number of chain leaders marked (VC partitioner only).
    chain_leaders: int = 0

    @property
    def cut_fraction(self) -> float:
        """Fraction of dependence edges cut by the partition (0 when no edges)."""
        return self.cut_edges / self.total_edges if self.total_edges else 0.0

    @property
    def balance(self) -> float:
        """Load balance across targets in (0, 1]; 1 is perfectly even."""
        if not self.target_loads:
            return 1.0
        loads = list(self.target_loads.values())
        worst = max(loads)
        if worst == 0:
            return 1.0
        ideal = sum(loads) / len(loads)
        return min(1.0, ideal / worst)


class RegionPartitioner(abc.ABC):
    """Base class of compile-time partitioners.

    Parameters
    ----------
    num_targets:
        Number of partitions to produce (virtual clusters for the hybrid
        scheme, physical clusters for the software-only schemes).
    region_size:
        Compiler window: maximum number of instructions per region.
    """

    #: Short name used in reports; subclasses override.
    name = "base"

    def __init__(self, num_targets: int, region_size: int = 128) -> None:
        if num_targets < 1:
            raise ValueError("num_targets must be positive")
        self.num_targets = int(num_targets)
        self.region_size = int(region_size)

    # -- hooks ------------------------------------------------------------------
    @abc.abstractmethod
    def partition_region(self, ddg: DataDependenceGraph) -> List[int]:
        """Return the target index (``0..num_targets-1``) of every DDG node."""

    def apply_assignment(
        self, ddg: DataDependenceGraph, assignment: Sequence[int], report: PartitionReport
    ) -> None:
        """Write annotations for one region.  Default: bind to physical clusters."""
        for node, target in enumerate(assignment):
            ddg.instructions[node].static_cluster = int(target)

    # -- driver -------------------------------------------------------------------
    def annotate_program(self, program: Program) -> PartitionReport:
        """Run the pass over every region of ``program`` and annotate it in place."""
        program.clear_annotations()
        report = PartitionReport(program_name=program.name, partitioner=self.name)
        regions: List[Region] = form_regions(program, max_instructions=self.region_size)
        report.num_regions = len(regions)
        for region in regions:
            if not region.instructions:
                continue
            ddg = build_ddg(region.instructions)
            assignment = self.partition_region(ddg)
            if len(assignment) != len(ddg):
                raise ValueError(
                    f"{self.name}: partition returned {len(assignment)} targets "
                    f"for {len(ddg)} nodes"
                )
            for target in assignment:
                if not 0 <= target < self.num_targets:
                    raise ValueError(f"{self.name}: target {target} out of range")
            self.apply_assignment(ddg, assignment, report)
            # Book-keeping for the report.
            report.num_instructions += len(ddg)
            for target in assignment:
                report.target_loads[target] = report.target_loads.get(target, 0) + 1
            for producer, consumer in ddg.edge_latency:
                report.total_edges += 1
                if assignment[producer] != assignment[consumer]:
                    report.cut_edges += 1
        report.chain_leaders = sum(
            1 for inst in program.all_instructions() if inst.chain_leader
        )
        return report
