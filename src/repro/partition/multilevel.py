"""Generic multilevel graph partitioner (coarsening + refinement).

RHOP formulates cluster assignment as graph partitioning and solves it with a
multilevel algorithm in the style of Karypis & Kumar: the graph is repeatedly
*coarsened* by collapsing heavy edges, an initial partition is computed on
the small coarse graph, and the partition is *projected back* level by level
while a boundary refinement pass (Fiduccia-Mattheyses-style single-node
moves) improves the objective at every level.

The engine here is independent of RHOP's specific weights; it partitions any
weighted undirected graph given as node weights plus an edge-weight mapping.
:class:`~repro.partition.rhop_partitioner.RhopPartitioner` supplies
slack-derived weights and the per-cluster balance constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class PartitionObjective:
    """Objective weights of the refinement pass.

    ``cut_weight`` scales the total weight of edges crossing partitions
    (communication); ``imbalance_weight`` scales the deviation of each
    partition's node weight from the ideal (workload imbalance).  RHOP's
    refinement considers both "the workload per cluster and total system
    workload" along with communication; the defaults weight communication
    higher, matching its coarsening bias towards keeping critical paths
    together.
    """

    cut_weight: float = 1.0
    imbalance_weight: float = 0.5
    max_imbalance: float = 0.25


class _Level:
    """One level of the multilevel hierarchy."""

    def __init__(
        self,
        node_weights: List[int],
        edges: Dict[Tuple[int, int], int],
        node_groups: List[int],
        fine_to_coarse: Optional[List[int]] = None,
    ) -> None:
        self.node_weights = node_weights
        self.edges = edges
        #: Balance group of every node (see ``MultilevelPartitioner.partition``).
        self.node_groups = node_groups
        #: Mapping from the finer level's node ids to this level's node ids.
        self.fine_to_coarse = fine_to_coarse
        self.adjacency: List[Dict[int, int]] = [dict() for _ in node_weights]
        for (u, v), w in edges.items():
            self.adjacency[u][v] = self.adjacency[u].get(v, 0) + w
            self.adjacency[v][u] = self.adjacency[v].get(u, 0) + w

    @property
    def num_nodes(self) -> int:
        return len(self.node_weights)


class MultilevelPartitioner:
    """Partition a weighted graph into ``num_parts`` balanced parts.

    Parameters
    ----------
    num_parts:
        Number of partitions.
    objective:
        Cut / imbalance trade-off used by refinement.
    max_refinement_passes:
        Upper bound on refinement sweeps per level.
    """

    def __init__(
        self,
        num_parts: int,
        objective: Optional[PartitionObjective] = None,
        max_refinement_passes: int = 4,
    ) -> None:
        if num_parts < 1:
            raise ValueError("num_parts must be positive")
        self.num_parts = int(num_parts)
        self.objective = objective or PartitionObjective()
        self.max_refinement_passes = int(max_refinement_passes)

    # -- public API ---------------------------------------------------------------
    def partition(
        self,
        node_weights: Sequence[int],
        edge_weights: Dict[Tuple[int, int], int],
        node_groups: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """Partition the graph and return the part index of every node.

        ``edge_weights`` keys are ``(u, v)`` node pairs (direction ignored).

        ``node_groups`` optionally assigns every node to a *balance group*:
        the imbalance penalty is then evaluated per group and summed, so the
        partition must be balanced inside every group rather than only in
        aggregate.  RHOP uses the basic block of each operation as its group,
        which approximates the schedule-step balance of the original
        algorithm: operations that execute around the same time must be
        spread over the clusters, otherwise a region that is balanced only in
        total instruction counts can still execute serially (one block on one
        cluster, the next block on the other).
        """
        n = len(node_weights)
        if n == 0:
            return []
        if self.num_parts == 1 or n <= self.num_parts:
            # Trivial cases: everything in one part, or one node per part.
            return [min(i, self.num_parts - 1) for i in range(n)]
        groups = list(int(g) for g in node_groups) if node_groups is not None else [0] * n
        if len(groups) != n:
            raise ValueError("node_groups length does not match node_weights")
        # Normalise edges to an undirected canonical form.
        undirected: Dict[Tuple[int, int], int] = {}
        for (u, v), w in edge_weights.items():
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            undirected[key] = undirected.get(key, 0) + int(w)
        levels = [_Level(list(int(w) for w in node_weights), undirected, groups)]
        # Coarsening: stop when the graph is small (a handful of nodes per
        # part, as RHOP stops when coarse nodes ~= number of clusters) or when
        # matching makes no further progress.
        while levels[-1].num_nodes > max(self.num_parts, 8):
            coarser = self._coarsen(levels[-1])
            if coarser.num_nodes == levels[-1].num_nodes:
                break
            levels.append(coarser)
        # Initial partition on the coarsest level.
        assignment = self._initial_partition(levels[-1])
        assignment = self._refine(levels[-1], assignment)
        # Uncoarsen and refine at every level.
        for level_index in range(len(levels) - 1, 0, -1):
            coarse = levels[level_index]
            fine = levels[level_index - 1]
            projected = [assignment[coarse.fine_to_coarse[i]] for i in range(fine.num_nodes)]
            assignment = self._refine(fine, projected)
        return assignment

    # -- coarsening ----------------------------------------------------------------
    def _coarsen(self, level: _Level) -> _Level:
        """Heavy-edge matching: collapse the heaviest available edge of each node."""
        n = level.num_nodes
        matched = [False] * n
        merge_with: List[int] = list(range(n))
        # Visit nodes in order of decreasing heaviest incident edge so that the
        # most critical dependences are collapsed first (RHOP groups the
        # critical path during coarsening).
        heaviest = [max(level.adjacency[i].values(), default=0) for i in range(n)]
        order = sorted(range(n), key=lambda i: -heaviest[i])
        for u in order:
            if matched[u]:
                continue
            best_v = -1
            best_w = 0
            for v, w in level.adjacency[u].items():
                if not matched[v] and v != u and w > best_w:
                    best_v, best_w = v, w
            if best_v >= 0:
                matched[u] = matched[best_v] = True
                merge_with[best_v] = u
            else:
                matched[u] = True
        # Build the coarse node ids.
        fine_to_coarse = [-1] * n
        next_coarse = 0
        for i in range(n):
            if merge_with[i] == i:
                fine_to_coarse[i] = next_coarse
                next_coarse += 1
        for i in range(n):
            if merge_with[i] != i:
                fine_to_coarse[i] = fine_to_coarse[merge_with[i]]
        coarse_weights = [0] * next_coarse
        coarse_groups = [0] * next_coarse
        for i in range(n):
            coarse_weights[fine_to_coarse[i]] += level.node_weights[i]
            if merge_with[i] == i:
                # The representative node defines the coarse node's balance group.
                coarse_groups[fine_to_coarse[i]] = level.node_groups[i]
        coarse_edges: Dict[Tuple[int, int], int] = {}
        for (u, v), w in level.edges.items():
            cu, cv = fine_to_coarse[u], fine_to_coarse[v]
            if cu == cv:
                continue
            key = (min(cu, cv), max(cu, cv))
            coarse_edges[key] = coarse_edges.get(key, 0) + w
        return _Level(coarse_weights, coarse_edges, coarse_groups, fine_to_coarse)

    # -- initial partition -----------------------------------------------------------
    def _initial_partition(self, level: _Level) -> List[int]:
        """Greedy balanced assignment of the coarse nodes (heaviest first, per group)."""
        order = sorted(range(level.num_nodes), key=lambda i: -level.node_weights[i])
        group_part_weight: Dict[Tuple[int, int], int] = {}
        assignment = [0] * level.num_nodes
        for node in order:
            group = level.node_groups[node]
            part = min(
                range(self.num_parts),
                key=lambda p: (group_part_weight.get((group, p), 0), p),
            )
            assignment[node] = part
            group_part_weight[(group, part)] = (
                group_part_weight.get((group, part), 0) + level.node_weights[node]
            )
        return assignment

    # -- refinement --------------------------------------------------------------------
    def _group_weights(
        self, level: _Level, assignment: Sequence[int]
    ) -> Dict[int, List[int]]:
        """Per-group, per-part node weight totals."""
        weights: Dict[int, List[int]] = {}
        for node, part in enumerate(assignment):
            group = level.node_groups[node]
            if group not in weights:
                weights[group] = [0] * self.num_parts
            weights[group][part] += level.node_weights[node]
        return weights

    @staticmethod
    def _imbalance_of(per_part: Sequence[int]) -> float:
        ideal = sum(per_part) / len(per_part)
        return sum(abs(w - ideal) for w in per_part)

    def _cost(self, level: _Level, assignment: Sequence[int]) -> float:
        """Objective value of ``assignment`` on ``level`` (lower is better)."""
        cut = 0
        for (u, v), w in level.edges.items():
            if assignment[u] != assignment[v]:
                cut += w
        imbalance = sum(
            self._imbalance_of(per_part)
            for per_part in self._group_weights(level, assignment).values()
        )
        return self.objective.cut_weight * cut + self.objective.imbalance_weight * imbalance

    def _refine(self, level: _Level, assignment: List[int]) -> List[int]:
        """Greedy single-node moves until no move improves the objective."""
        assignment = list(assignment)
        group_weights = self._group_weights(level, assignment)
        part_weight = [0] * self.num_parts
        for node, part in enumerate(assignment):
            part_weight[part] += level.node_weights[node]
        total_weight = sum(part_weight)
        max_part = (total_weight / self.num_parts) * (1.0 + self.objective.max_imbalance)
        for _ in range(self.max_refinement_passes):
            improved = False
            for node in range(level.num_nodes):
                current = assignment[node]
                group = level.node_groups[node]
                weight = level.node_weights[node]
                per_part = group_weights[group]
                # Gain of moving `node` to `target`: reduction in cut minus
                # the change in the node's group imbalance penalty.
                external: Dict[int, int] = {}
                internal = 0
                for neighbour, w in level.adjacency[node].items():
                    if assignment[neighbour] == current:
                        internal += w
                    else:
                        external[assignment[neighbour]] = (
                            external.get(assignment[neighbour], 0) + w
                        )
                candidate_targets = external or {
                    p: 0 for p in range(self.num_parts) if p != current
                }
                for target, external_weight in candidate_targets.items():
                    if part_weight[target] + weight > max_part:
                        continue
                    cut_gain = external_weight - internal
                    imbalance_before = self._imbalance_of(per_part)
                    per_part[current] -= weight
                    per_part[target] += weight
                    imbalance_after = self._imbalance_of(per_part)
                    per_part[current] += weight
                    per_part[target] -= weight
                    gain = (
                        self.objective.cut_weight * cut_gain
                        + self.objective.imbalance_weight * (imbalance_before - imbalance_after)
                    )
                    if gain > 0:
                        per_part[current] -= weight
                        per_part[target] += weight
                        part_weight[current] -= weight
                        part_weight[target] += weight
                        assignment[node] = target
                        improved = True
                        break
            if not improved:
                break
        return assignment
