"""Chain and chain-leader identification (Figure 3).

The paper defines a *chain* as "a group of instructions in the same virtual
cluster that are mapped into the same physical cluster", and the *chain
leader* as the first instruction of a chain.  Chain leaders are the places
where the hardware consults the workload counters and (possibly) remaps the
virtual cluster to a different physical cluster; every non-leader simply
follows the current mapping of its virtual cluster.

The compiler must therefore start a new chain exactly where a remap would be
harmless: at an instruction that does not consume any value produced by the
chain currently open on its virtual cluster.  We reconstruct that rule as
follows (traversing the region in program order):

* the first instruction of each virtual cluster starts a chain (and leads it);
* a later instruction of the same virtual cluster starts a *new* chain when
  **none of its DDG predecessors belong to the same virtual cluster** -- such
  an instruction begins a fresh dependence chain, so remapping the virtual
  cluster at that point cannot put it on a different physical cluster than a
  same-VC value it consumes;
* otherwise it joins the chain currently open on its virtual cluster (its
  same-VC producers follow the same mapping, because the mapping can only
  have changed at a leader, and a leader by definition does not consume
  same-VC values).

In the example of Figure 3 this yields exactly three leaders (A, B and E):
A opens virtual cluster 0's chain, B opens virtual cluster 1's chain, and E
(which depends only on nodes of the other virtual cluster) opens a second
chain on its virtual cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.program.ddg import DataDependenceGraph


@dataclass
class Chain:
    """One chain: consecutive same-VC instructions steered as a unit."""

    chain_id: int
    vc_id: int
    nodes: List[int] = field(default_factory=list)

    @property
    def leader(self) -> int:
        """DDG node index of the chain leader (first node of the chain)."""
        return self.nodes[0]

    def __len__(self) -> int:
        return len(self.nodes)


def identify_chains(
    ddg: DataDependenceGraph, assignment: Sequence[int]
) -> Tuple[List[Chain], List[bool]]:
    """Split a virtual-cluster ``assignment`` of ``ddg`` into chains.

    Parameters
    ----------
    ddg:
        The region's data-dependence graph.
    assignment:
        Virtual cluster index of every DDG node.

    Returns
    -------
    (chains, leader_flags)
        The list of :class:`Chain` objects (in order of creation) and a
        per-node boolean list marking chain leaders.
    """
    if len(assignment) != len(ddg):
        raise ValueError("assignment length does not match the DDG")
    chains: List[Chain] = []
    leader_flags = [False] * len(ddg)
    #: Open chain per virtual cluster (chain index into ``chains``).
    open_chain: Dict[int, int] = {}
    #: Fast membership test: node -> chain index.
    chain_of_node: Dict[int, int] = {}
    for node in range(len(ddg)):
        vc = int(assignment[node])
        current = open_chain.get(vc)
        starts_new = current is None
        if not starts_new:
            # The node extends the open chain of its virtual cluster unless it
            # starts a fresh dependence chain (no producer in the same VC).
            has_same_vc_producer = any(
                int(assignment[pred]) == vc for pred in ddg.preds[node]
            )
            starts_new = not has_same_vc_producer
        if starts_new:
            chain = Chain(chain_id=len(chains), vc_id=vc)
            chains.append(chain)
            open_chain[vc] = chain.chain_id
            leader_flags[node] = True
            current = chain.chain_id
        chains[current].nodes.append(node)
        chain_of_node[node] = current
    return chains, leader_flags


def chain_length_histogram(chains: Sequence[Chain]) -> Dict[int, int]:
    """Histogram of chain lengths (length -> count); useful for reports and tests."""
    histogram: Dict[int, int] = {}
    for chain in chains:
        histogram[len(chain)] = histogram.get(len(chain), 0) + 1
    return histogram
