"""repro: a reproduction of *A Software-Hardware Hybrid Steering Mechanism for
Clustered Microarchitectures* (Cai, Codina, González, González -- IPPS 2008).

The package contains everything the paper's evaluation needs, built from
scratch in Python:

* the **virtual-cluster hybrid steering scheme** -- a compile-time DDG
  partitioner with chain/chain-leader identification
  (:mod:`repro.partition.vc_partitioner`) plus the tiny run-time mapping
  hardware (:mod:`repro.steering.virtual_cluster`);
* the **clustered out-of-order simulator** it is evaluated on
  (:mod:`repro.cluster`), configured per Table 2;
* the **baselines**: occupancy-aware hardware-only steering, one-cluster,
  OB/SPDI and RHOP (:mod:`repro.steering`, :mod:`repro.partition`);
* a **synthetic SPEC CPU2000 workload substrate** with PinPoints-style
  weighted simulation points (:mod:`repro.workloads`);
* the **experiment harness** regenerating every table and figure of the
  evaluation (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import quick_comparison
>>> results = quick_comparison("164.gzip-1", trace_length=2000)
>>> sorted(results)  # doctest: +ELLIPSIS
['OB', 'OP', 'RHOP', 'VC', 'one-cluster']
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster import (
    ClusterConfig,
    ClusteredProcessor,
    SimulationMetrics,
    four_cluster_config,
    simulate_trace,
    two_cluster_config,
)
from repro.engine import ParallelRunner, ResultCache, SimulationJob, TraceArtifactStore
from repro.experiments import (
    ExperimentRunner,
    ExperimentSettings,
    run_figure5,
    run_figure6,
    run_figure7,
    run_table1,
)
from repro.experiments.configs import (
    SteeringConfiguration,
    TABLE3_CONFIGURATIONS,
    make_configuration,
    vc_variant,
)
from repro.partition import (
    OperationBasedPartitioner,
    RhopPartitioner,
    VirtualClusterPartitioner,
)
from repro.program import Program, build_ddg, expand_trace, form_regions
from repro.scenarios import (
    MachineSpec,
    ScenarioSpec,
    SweepAxis,
    builtin_scenario,
    register_machine,
    register_partitioner,
    register_policy,
    run_scenario,
)
from repro.steering import (
    OccupancyAwareSteering,
    OneClusterSteering,
    StaticAssignmentSteering,
    VirtualClusterSteering,
)
from repro.uops import CompiledTrace, DynamicUop, StaticInstruction, UopClass, compile_trace
from repro.workloads import (
    BenchmarkProfile,
    WorkloadGenerator,
    all_trace_names,
    profile_for,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # µop / program model
    "UopClass",
    "StaticInstruction",
    "DynamicUop",
    "CompiledTrace",
    "compile_trace",
    "Program",
    "build_ddg",
    "form_regions",
    "expand_trace",
    # compile-time passes
    "VirtualClusterPartitioner",
    "RhopPartitioner",
    "OperationBasedPartitioner",
    # run-time policies
    "OccupancyAwareSteering",
    "OneClusterSteering",
    "StaticAssignmentSteering",
    "VirtualClusterSteering",
    # simulator
    "ClusterConfig",
    "two_cluster_config",
    "four_cluster_config",
    "ClusteredProcessor",
    "SimulationMetrics",
    "simulate_trace",
    # workloads
    "BenchmarkProfile",
    "WorkloadGenerator",
    "all_trace_names",
    "profile_for",
    # engine
    "ParallelRunner",
    "ResultCache",
    "SimulationJob",
    "TraceArtifactStore",
    # scenarios
    "ScenarioSpec",
    "MachineSpec",
    "SweepAxis",
    "builtin_scenario",
    "run_scenario",
    "register_policy",
    "register_partitioner",
    "register_machine",
    # experiments
    "ExperimentRunner",
    "ExperimentSettings",
    "SteeringConfiguration",
    "TABLE3_CONFIGURATIONS",
    "make_configuration",
    "vc_variant",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_table1",
    "quick_comparison",
]


def quick_comparison(
    benchmark: str = "164.gzip-1",
    trace_length: int = 2000,
    num_clusters: int = 2,
    num_virtual_clusters: int = 2,
    max_phases: int = 1,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> Dict[str, SimulationMetrics]:
    """Run every Table 3 configuration on one benchmark and return the metrics.

    This is the one-call entry point used by the quickstart example: it
    generates the benchmark's first simulation point, annotates it with each
    compile-time pass, simulates all five configurations on the same trace
    and returns ``{configuration name: SimulationMetrics}``.

    Parameters
    ----------
    benchmark:
        A SPEC CPU2000 trace name (see :func:`repro.workloads.all_trace_names`).
    trace_length:
        Dynamic µops per simulation point.
    num_clusters / num_virtual_clusters:
        Machine geometry.
    max_phases:
        Simulation points to run per benchmark.
    jobs:
        Worker processes for the simulation job matrix (1 = serial;
        bit-identical results for any value).
    cache_dir:
        Optional on-disk result cache directory (``None`` disables caching).
    """
    settings = ExperimentSettings(
        num_clusters=num_clusters,
        num_virtual_clusters=num_virtual_clusters,
        trace_length=trace_length,
        max_phases=max_phases,
    )
    runner = ExperimentRunner(settings, jobs=jobs, cache_dir=cache_dir)
    per_config = runner.run_suite([benchmark], list(TABLE3_CONFIGURATIONS.values()))[benchmark]
    # Surface the first phase's metrics object; weighted aggregates are in
    # the BenchmarkResult itself.
    return {name: per_config[name].phase_results[0].metrics for name in TABLE3_CONFIGURATIONS}
