"""PinPoints-style simulation points.

The paper uses PinPoints to select representative simulation points: every
point contains 10 million instructions, there are at most 10 phases per
benchmark, and all reported results are weighted by the PinPoints weights.

We mirror that structure: each benchmark profile declares a number of phases;
:func:`select_simulation_points` assigns each phase a deterministic weight
(derived from the benchmark seed, normalised to 1) and a seed, and
:func:`weighted_average` folds per-phase metrics into the benchmark-level
number exactly as the paper's weighting does.  Trace lengths are scaled down
from 10 M µops to keep pure-Python simulation tractable; the scaling factor
is a harness parameter, not a property of this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.workloads.generator import BenchmarkProfile, WorkloadGenerator

#: Maximum number of phases per benchmark, as in the paper.
MAX_PHASES = 10


@dataclass(frozen=True)
class SimulationPoint:
    """One weighted simulation point (phase) of a benchmark."""

    benchmark: str
    phase: int
    weight: float
    seed: int

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``"164.gzip-1/p0"``."""
        return f"{self.benchmark}/p{self.phase}"


def select_simulation_points(
    profile: BenchmarkProfile, max_phases: int = MAX_PHASES
) -> List[SimulationPoint]:
    """Return the weighted simulation points of ``profile``.

    The number of points is ``min(profile.num_phases, max_phases)``.  Weights
    are drawn from a Dirichlet-like scheme seeded by the benchmark so that
    phases have unequal but reproducible importance (as PinPoints weights
    do), and always sum to 1.
    """
    if max_phases < 1:
        raise ValueError("max_phases must be positive")
    num = min(profile.num_phases, max_phases)
    generator = WorkloadGenerator(profile)
    rng = np.random.default_rng(profile.base_seed * 31 + 17)
    raw = rng.dirichlet(np.ones(num) * 2.0) if num > 1 else np.array([1.0])
    points = [
        SimulationPoint(
            benchmark=profile.name,
            phase=phase,
            weight=float(raw[phase]),
            seed=generator.phase_seed(phase),
        )
        for phase in range(num)
    ]
    return points


def weighted_average(values: Sequence[float], points: Sequence[SimulationPoint]) -> float:
    """Weight per-phase ``values`` by the PinPoints weights of ``points``.

    Raises
    ------
    ValueError
        If the lengths differ or the weights do not sum to a positive value.
    """
    if len(values) != len(points):
        raise ValueError(f"{len(values)} values for {len(points)} simulation points")
    total_weight = sum(p.weight for p in points)
    if total_weight <= 0:
        raise ValueError("simulation point weights must sum to a positive value")
    return float(sum(v * p.weight for v, p in zip(values, points)) / total_weight)


def weights_by_phase(points: Sequence[SimulationPoint]) -> Dict[int, float]:
    """Return a ``phase -> weight`` mapping for convenience."""
    return {p.phase: p.weight for p in points}
