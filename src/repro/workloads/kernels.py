"""Instruction-pattern kernels used to build synthetic benchmarks.

Each kernel emits a list of *instruction specs* -- ``(opclass, dests, srcs)``
tuples over an abstract register pool -- with a characteristic data-dependence
shape:

========================  =====================================================
Kernel                    DDG shape
========================  =====================================================
:func:`serial_chain_kernel`      one long serial chain (ILP ~ 1); models
                                 pointer chasing (mcf, parser, twolf)
:func:`parallel_chains_kernel`   ``k`` independent chains of equal length;
                                 the bread-and-butter case for steering
:func:`reduction_kernel`         balanced binary reduction tree; high ILP at
                                 the leaves collapsing to 1 at the root
                                 (FP codes such as galgel, swim)
:func:`stream_kernel`            load - compute - store per element, iterations
                                 independent; memory-bandwidth bound codes
                                 (art, swim, equake)
:func:`branchy_kernel`           short chains interleaved with compares and
                                 branches; control-dominated integer codes
                                 (gcc, perlbmk, crafty)
========================  =====================================================

Kernels are pure functions of their RNG and the register pool, so programs
built from them are fully reproducible.
"""

from __future__ import annotations

import enum
from typing import List, Sequence, Tuple

import numpy as np

from repro.uops.opcodes import UopClass
from repro.uops.registers import RegisterSpace

#: An instruction spec: (opclass, destination registers, source registers).
InstructionSpec = Tuple[UopClass, Tuple[int, ...], Tuple[int, ...]]


class KernelKind(enum.Enum):
    """Enumeration of the available kernels, used by benchmark profiles."""

    SERIAL_CHAIN = "serial_chain"
    PARALLEL_CHAINS = "parallel_chains"
    REDUCTION = "reduction"
    STREAM = "stream"
    BRANCHY = "branchy"


class RegisterPool:
    """Round-robin allocator over a register window.

    Each kernel invocation receives its own pool carved out of the program's
    register space so that independent chains use disjoint registers (no
    accidental false dependences) while values still get reused often enough
    for cross-block dependences to exist.
    """

    def __init__(
        self,
        space: RegisterSpace,
        int_window: Sequence[int],
        fp_window: Sequence[int],
        live_ins: Sequence[int],
    ) -> None:
        if not int_window:
            raise ValueError("integer register window must not be empty")
        self.space = space
        self._int_window = list(int_window)
        self._fp_window = list(fp_window) if fp_window else list(int_window)
        self._live_ins = list(live_ins) if live_ins else list(int_window[:1])
        self._int_next = 0
        self._fp_next = 0

    def live_in(self, rng: np.random.Generator) -> int:
        """A register holding a region live-in value."""
        return int(self._live_ins[int(rng.integers(0, len(self._live_ins)))])

    def next_int(self) -> int:
        """Allocate the next integer destination register (round robin)."""
        reg = self._int_window[self._int_next % len(self._int_window)]
        self._int_next += 1
        return int(reg)

    def next_fp(self) -> int:
        """Allocate the next floating-point destination register (round robin)."""
        reg = self._fp_window[self._fp_next % len(self._fp_window)]
        self._fp_next += 1
        return int(reg)


def _arith_op(rng: np.random.Generator, fp: bool, long_latency_fraction: float) -> UopClass:
    """Pick an arithmetic µop class; occasionally a long-latency one."""
    roll = rng.random()
    if fp:
        if roll < long_latency_fraction * 0.3:
            return UopClass.FP_DIV
        if roll < 0.5:
            return UopClass.FP_MUL
        return UopClass.FP_ADD
    if roll < long_latency_fraction * 0.2:
        return UopClass.INT_DIV
    if roll < long_latency_fraction:
        return UopClass.INT_MUL
    return UopClass.INT_ALU


def serial_chain_kernel(
    rng: np.random.Generator,
    size: int,
    pool: RegisterPool,
    fp: bool = False,
    load_fraction: float = 0.3,
    long_latency_fraction: float = 0.1,
) -> List[InstructionSpec]:
    """One serial dependence chain of ``size`` operations (ILP ~ 1).

    A fraction of the chain links are loads (pointer chasing): the loaded
    value feeds the next link, which is what makes these codes so hostile to
    clustering.
    """
    specs: List[InstructionSpec] = []
    current = pool.live_in(rng)
    for _ in range(max(1, size)):
        dest = pool.next_fp() if fp else pool.next_int()
        if rng.random() < load_fraction:
            specs.append((UopClass.LOAD, (dest,), (current,)))
        else:
            op = _arith_op(rng, fp, long_latency_fraction)
            other = pool.live_in(rng)
            specs.append((op, (dest,), (current, other)))
        current = dest
    return specs


def parallel_chains_kernel(
    rng: np.random.Generator,
    size: int,
    pool: RegisterPool,
    num_chains: int = 3,
    fp: bool = False,
    load_fraction: float = 0.25,
    store_fraction: float = 0.1,
    cross_chain_fraction: float = 0.1,
    long_latency_fraction: float = 0.1,
) -> List[InstructionSpec]:
    """``num_chains`` independent chains interleaved in program order.

    ``cross_chain_fraction`` of operations read a value from another chain,
    creating the occasional diagonal dependence that distinguishes a good
    partition (chains kept whole) from a bad one (chains split).
    """
    num_chains = max(1, num_chains)
    specs: List[InstructionSpec] = []
    heads: List[int] = [pool.live_in(rng) for _ in range(num_chains)]
    for i in range(max(1, size)):
        chain = i % num_chains
        dest = pool.next_fp() if fp else pool.next_int()
        roll = rng.random()
        srcs: Tuple[int, ...]
        if roll < load_fraction:
            op = UopClass.LOAD
            srcs = (heads[chain],)
        elif roll < load_fraction + store_fraction:
            op = UopClass.STORE
            address = pool.live_in(rng)
            specs.append((op, (), (address, heads[chain])))
            continue
        else:
            op = _arith_op(rng, fp, long_latency_fraction)
            if num_chains > 1 and rng.random() < cross_chain_fraction:
                other_chain = int(rng.integers(0, num_chains))
                srcs = (heads[chain], heads[other_chain])
            else:
                srcs = (heads[chain], pool.live_in(rng))
        specs.append((op, (dest,), srcs))
        heads[chain] = dest
    return specs


def reduction_kernel(
    rng: np.random.Generator,
    size: int,
    pool: RegisterPool,
    fp: bool = True,
    load_fraction: float = 0.5,
) -> List[InstructionSpec]:
    """Balanced binary reduction: ``size`` leaf values combined pairwise.

    The leaves are loads (or live-in reads); interior nodes are adds.  ILP is
    high near the leaves and collapses towards the root, giving the
    criticality analysis a clear gradient to work with.
    """
    leaves = max(2, size // 2)
    specs: List[InstructionSpec] = []
    frontier: List[int] = []
    for _ in range(leaves):
        dest = pool.next_fp() if fp else pool.next_int()
        if rng.random() < load_fraction:
            specs.append((UopClass.LOAD, (dest,), (pool.live_in(rng),)))
        else:
            op = UopClass.FP_ADD if fp else UopClass.INT_ALU
            specs.append((op, (dest,), (pool.live_in(rng), pool.live_in(rng))))
        frontier.append(dest)
    while len(frontier) > 1:
        next_frontier: List[int] = []
        for i in range(0, len(frontier) - 1, 2):
            dest = pool.next_fp() if fp else pool.next_int()
            op = UopClass.FP_ADD if fp else UopClass.INT_ALU
            specs.append((op, (dest,), (frontier[i], frontier[i + 1])))
            next_frontier.append(dest)
        if len(frontier) % 2 == 1:
            next_frontier.append(frontier[-1])
        frontier = next_frontier
    return specs


def stream_kernel(
    rng: np.random.Generator,
    size: int,
    pool: RegisterPool,
    fp: bool = True,
    ops_per_element: int = 2,
    long_latency_fraction: float = 0.15,
) -> List[InstructionSpec]:
    """Streaming loop body: load, a short computation, store -- per element.

    Iterations are mutually independent, so the DDG is a forest of small
    trees; these codes want balanced distribution more than anything else.
    """
    specs: List[InstructionSpec] = []
    elements = max(1, size // (ops_per_element + 2))
    for _ in range(elements):
        address = pool.live_in(rng)
        value = pool.next_fp() if fp else pool.next_int()
        specs.append((UopClass.LOAD, (value,), (address,)))
        current = value
        for _ in range(ops_per_element):
            dest = pool.next_fp() if fp else pool.next_int()
            op = _arith_op(rng, fp, long_latency_fraction)
            specs.append((op, (dest,), (current, pool.live_in(rng))))
            current = dest
        specs.append((UopClass.STORE, (), (address, current)))
    return specs


def branchy_kernel(
    rng: np.random.Generator,
    size: int,
    pool: RegisterPool,
    load_fraction: float = 0.3,
    branch_fraction: float = 0.2,
) -> List[InstructionSpec]:
    """Control-dominated integer code: short chains, compares and branches.

    Branches read the most recently produced value (the compare result), so
    they sit at the end of short dependence chains as in real integer code.
    """
    specs: List[InstructionSpec] = []
    recent: List[int] = [pool.live_in(rng)]
    for _ in range(max(1, size)):
        roll = rng.random()
        if roll < branch_fraction and specs:
            specs.append((UopClass.BRANCH, (), (recent[-1],)))
            continue
        dest = pool.next_int()
        if roll < branch_fraction + load_fraction:
            specs.append((UopClass.LOAD, (dest,), (recent[-1],)))
        else:
            src_a = recent[int(rng.integers(0, len(recent)))]
            src_b = pool.live_in(rng)
            specs.append((UopClass.INT_ALU, (dest,), (src_a, src_b)))
        recent.append(dest)
        if len(recent) > 4:
            recent.pop(0)
    return specs


#: Dispatch table from :class:`KernelKind` to the kernel function.
KERNEL_FUNCTIONS = {
    KernelKind.SERIAL_CHAIN: serial_chain_kernel,
    KernelKind.PARALLEL_CHAINS: parallel_chains_kernel,
    KernelKind.REDUCTION: reduction_kernel,
    KernelKind.STREAM: stream_kernel,
    KernelKind.BRANCHY: branchy_kernel,
}
