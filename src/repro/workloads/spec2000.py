"""SPEC CPU2000 trace profiles.

One :class:`~repro.workloads.generator.BenchmarkProfile` per trace used in
the paper's evaluation (Figures 5-7).  The x-axes of Figures 5 and 7 list the
traces: several benchmarks contribute multiple PinPoints traces
(``gzip-1``..``gzip-5``, ``gcc-1``..``gcc-5``, ...).

The profiles are synthetic but deliberately differentiated along the axes the
paper's analysis identifies as decisive for steering:

* integer codes have smaller blocks, shorter chains, more branches and more
  irregular memory (so copies hurt and balance is easy), while
* floating-point codes have larger blocks, higher ILP, regular strided
  memory and long-latency operations (so balance matters and good
  partitions pay off -- e.g. ``galgel``, which shows the largest VC benefit
  in the paper, gets a high-ILP, reduction-heavy profile).

Absolute performance is not expected to match the paper (the substrate is a
synthetic-trace simulator); the *relative* behaviour of the steering schemes
is what these profiles are designed to exercise.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.generator import BenchmarkProfile
from repro.workloads.kernels import KernelKind

# ---------------------------------------------------------------------------
# Profile helpers
# ---------------------------------------------------------------------------


def _int_profile(name: str, seed: int, **overrides) -> BenchmarkProfile:
    """Default integer-benchmark profile (branchy, modest ILP, irregular memory)."""
    defaults = dict(
        suite="int",
        kernel_mix={
            KernelKind.PARALLEL_CHAINS: 0.45,
            KernelKind.BRANCHY: 0.35,
            KernelKind.SERIAL_CHAIN: 0.20,
        },
        ilp=3,
        block_size_mean=18,
        num_blocks=24,
        loop_fraction=0.25,
        loop_trip_mean=10.0,
        skip_fraction=0.3,
        load_fraction=0.28,
        store_fraction=0.10,
        branch_fraction=0.18,
        long_latency_fraction=0.08,
        cross_chain_fraction=0.25,
        working_set_kb=192,
        strided_fraction=0.45,
        mispredict_rate=0.04,
        num_phases=3,
        base_seed=seed,
    )
    defaults.update(overrides)
    return BenchmarkProfile(name=name, **defaults)


def _fp_profile(name: str, seed: int, **overrides) -> BenchmarkProfile:
    """Default floating-point profile (large blocks, high ILP, regular memory)."""
    defaults = dict(
        suite="fp",
        kernel_mix={
            KernelKind.PARALLEL_CHAINS: 0.40,
            KernelKind.STREAM: 0.35,
            KernelKind.REDUCTION: 0.25,
        },
        ilp=4,
        block_size_mean=32,
        num_blocks=20,
        loop_fraction=0.45,
        loop_trip_mean=24.0,
        skip_fraction=0.15,
        load_fraction=0.30,
        store_fraction=0.12,
        branch_fraction=0.06,
        long_latency_fraction=0.18,
        cross_chain_fraction=0.18,
        working_set_kb=768,
        strided_fraction=0.75,
        mispredict_rate=0.01,
        num_phases=3,
        base_seed=seed,
    )
    defaults.update(overrides)
    return BenchmarkProfile(name=name, **defaults)


# ---------------------------------------------------------------------------
# Integer traces (26, as on the x-axis of Figure 5a / 7a)
# ---------------------------------------------------------------------------

SPEC_INT_TRACES: Dict[str, BenchmarkProfile] = {}


def _register_int(profile: BenchmarkProfile) -> None:
    SPEC_INT_TRACES[profile.name] = profile


# 164.gzip: compression -- tight loops over buffers, moderate ILP.
for _i in range(1, 6):
    _register_int(
        _int_profile(
            f"164.gzip-{_i}",
            seed=100 + _i,
            kernel_mix={
                KernelKind.PARALLEL_CHAINS: 0.55,
                KernelKind.BRANCHY: 0.25,
                KernelKind.STREAM: 0.20,
            },
            ilp=3,
            loop_fraction=0.4,
            working_set_kb=128 + 32 * _i,
            strided_fraction=0.65,
        )
    )

# 175.vpr: placement & routing -- pointer structures plus FP-ish geometry.
for _i in range(1, 3):
    _register_int(
        _int_profile(
            f"175.vpr-{_i}",
            seed=200 + _i,
            kernel_mix={
                KernelKind.PARALLEL_CHAINS: 0.4,
                KernelKind.SERIAL_CHAIN: 0.35,
                KernelKind.BRANCHY: 0.25,
            },
            ilp=2,
            working_set_kb=384,
            mispredict_rate=0.05,
        )
    )

# 176.gcc: compiler -- very branchy, large irregular footprint, low ILP.
for _i in range(1, 6):
    _register_int(
        _int_profile(
            f"176.gcc-{_i}",
            seed=300 + _i,
            kernel_mix={
                KernelKind.BRANCHY: 0.5,
                KernelKind.PARALLEL_CHAINS: 0.3,
                KernelKind.SERIAL_CHAIN: 0.2,
            },
            ilp=2,
            block_size_mean=14,
            num_blocks=32,
            branch_fraction=0.22,
            working_set_kb=512,
            strided_fraction=0.35,
            mispredict_rate=0.06,
        )
    )

# 181.mcf: minimum-cost flow -- pointer chasing, cache-miss dominated.
_register_int(
    _int_profile(
        "181.mcf",
        seed=400,
        kernel_mix={KernelKind.SERIAL_CHAIN: 0.6, KernelKind.PARALLEL_CHAINS: 0.4},
        ilp=2,
        load_fraction=0.38,
        working_set_kb=4096,
        strided_fraction=0.2,
        mispredict_rate=0.05,
    )
)

# 186.crafty: chess -- integer logic, high branch density, small working set.
_register_int(
    _int_profile(
        "186.crafty",
        seed=410,
        kernel_mix={KernelKind.BRANCHY: 0.45, KernelKind.PARALLEL_CHAINS: 0.55},
        ilp=4,
        block_size_mean=20,
        working_set_kb=96,
        strided_fraction=0.55,
        mispredict_rate=0.05,
    )
)

# 197.parser: NLP parser -- linked lists, low ILP.
_register_int(
    _int_profile(
        "197.parser",
        seed=420,
        kernel_mix={KernelKind.SERIAL_CHAIN: 0.5, KernelKind.BRANCHY: 0.3, KernelKind.PARALLEL_CHAINS: 0.2},
        ilp=2,
        load_fraction=0.33,
        working_set_kb=640,
        strided_fraction=0.3,
        mispredict_rate=0.06,
    )
)

# 252.eon: ray tracing in C++ -- mixed int/fp-ish computation, moderate ILP.
for _i in range(1, 4):
    _register_int(
        _int_profile(
            f"252.eon-{_i}",
            seed=500 + _i,
            kernel_mix={
                KernelKind.PARALLEL_CHAINS: 0.55,
                KernelKind.REDUCTION: 0.2,
                KernelKind.BRANCHY: 0.25,
            },
            ilp=4,
            block_size_mean=24,
            long_latency_fraction=0.14,
            working_set_kb=128,
            mispredict_rate=0.02,
        )
    )

# 253.perlbmk: interpreter -- extremely branchy, irregular.
_register_int(
    _int_profile(
        "253.perlbmk",
        seed=520,
        kernel_mix={KernelKind.BRANCHY: 0.55, KernelKind.SERIAL_CHAIN: 0.2, KernelKind.PARALLEL_CHAINS: 0.25},
        ilp=2,
        block_size_mean=12,
        num_blocks=36,
        branch_fraction=0.24,
        working_set_kb=320,
        mispredict_rate=0.07,
    )
)

# 254.gap: group theory -- integer arithmetic with multiplies.
_register_int(
    _int_profile(
        "254.gap",
        seed=530,
        ilp=3,
        long_latency_fraction=0.16,
        working_set_kb=448,
        strided_fraction=0.5,
    )
)

# 255.vortex: object database -- pointer heavy, large footprint.
for _i in range(1, 3):
    _register_int(
        _int_profile(
            f"255.vortex-{_i}",
            seed=540 + _i,
            kernel_mix={KernelKind.SERIAL_CHAIN: 0.4, KernelKind.BRANCHY: 0.3, KernelKind.PARALLEL_CHAINS: 0.3},
            ilp=3,
            load_fraction=0.34,
            working_set_kb=1024,
            strided_fraction=0.35,
        )
    )

# 256.bzip2: compression -- similar to gzip but larger blocks.
for _i in range(1, 4):
    _register_int(
        _int_profile(
            f"256.bzip2-{_i}",
            seed=560 + _i,
            kernel_mix={
                KernelKind.PARALLEL_CHAINS: 0.6,
                KernelKind.STREAM: 0.2,
                KernelKind.BRANCHY: 0.2,
            },
            ilp=3,
            block_size_mean=22,
            loop_fraction=0.45,
            working_set_kb=256 + 128 * _i,
            strided_fraction=0.7,
        )
    )

# 300.twolf: place & route -- pointer chasing and short chains.
_register_int(
    _int_profile(
        "300.twolf",
        seed=580,
        kernel_mix={KernelKind.SERIAL_CHAIN: 0.45, KernelKind.BRANCHY: 0.3, KernelKind.PARALLEL_CHAINS: 0.25},
        ilp=2,
        load_fraction=0.32,
        working_set_kb=288,
        strided_fraction=0.3,
        mispredict_rate=0.05,
    )
)


# ---------------------------------------------------------------------------
# Floating-point traces (14, as on the x-axis of Figure 5b)
# ---------------------------------------------------------------------------

SPEC_FP_TRACES: Dict[str, BenchmarkProfile] = {}


def _register_fp(profile: BenchmarkProfile) -> None:
    SPEC_FP_TRACES[profile.name] = profile


_register_fp(
    _fp_profile(
        "168.wupwise",
        seed=700,
        kernel_mix={KernelKind.PARALLEL_CHAINS: 0.5, KernelKind.REDUCTION: 0.3, KernelKind.STREAM: 0.2},
        ilp=4,
        working_set_kb=512,
    )
)
_register_fp(
    _fp_profile(
        "171.swim",
        seed=705,
        kernel_mix={KernelKind.STREAM: 0.65, KernelKind.PARALLEL_CHAINS: 0.35},
        ilp=5,
        working_set_kb=4096,
        strided_fraction=0.9,
        loop_trip_mean=48.0,
    )
)
_register_fp(
    _fp_profile(
        "173.applu",
        seed=710,
        kernel_mix={KernelKind.STREAM: 0.45, KernelKind.PARALLEL_CHAINS: 0.35, KernelKind.REDUCTION: 0.2},
        ilp=4,
        working_set_kb=2048,
        strided_fraction=0.85,
    )
)
_register_fp(
    _fp_profile(
        "177.mesa",
        seed=715,
        kernel_mix={KernelKind.PARALLEL_CHAINS: 0.55, KernelKind.STREAM: 0.25, KernelKind.BRANCHY: 0.2},
        ilp=3,
        block_size_mean=24,
        branch_fraction=0.12,
        working_set_kb=256,
        mispredict_rate=0.02,
    )
)
# galgel shows the largest VC-over-software-only gain in the paper (~20%):
# very high ILP with clear chain structure and long-latency FP operations.
_register_fp(
    _fp_profile(
        "178.galgel",
        seed=720,
        kernel_mix={KernelKind.PARALLEL_CHAINS: 0.55, KernelKind.REDUCTION: 0.45},
        ilp=6,
        block_size_mean=40,
        long_latency_fraction=0.25,
        working_set_kb=384,
        loop_trip_mean=32.0,
    )
)
for _i in range(1, 3):
    _register_fp(
        _fp_profile(
            f"179.art-{_i}",
            seed=725 + _i,
            kernel_mix={KernelKind.STREAM: 0.6, KernelKind.REDUCTION: 0.4},
            ilp=4,
            working_set_kb=3072,
            strided_fraction=0.8,
            loop_trip_mean=64.0,
        )
    )
_register_fp(
    _fp_profile(
        "183.equake",
        seed=735,
        kernel_mix={KernelKind.STREAM: 0.5, KernelKind.PARALLEL_CHAINS: 0.3, KernelKind.SERIAL_CHAIN: 0.2},
        ilp=3,
        working_set_kb=2048,
        strided_fraction=0.6,
    )
)
_register_fp(
    _fp_profile(
        "187.facerec",
        seed=740,
        kernel_mix={KernelKind.REDUCTION: 0.4, KernelKind.PARALLEL_CHAINS: 0.4, KernelKind.STREAM: 0.2},
        ilp=4,
        working_set_kb=768,
    )
)
_register_fp(
    _fp_profile(
        "188.ammp",
        seed=745,
        kernel_mix={KernelKind.PARALLEL_CHAINS: 0.4, KernelKind.SERIAL_CHAIN: 0.3, KernelKind.STREAM: 0.3},
        ilp=3,
        long_latency_fraction=0.22,
        working_set_kb=1024,
        strided_fraction=0.5,
    )
)
_register_fp(
    _fp_profile(
        "189.lucas",
        seed=750,
        kernel_mix={KernelKind.REDUCTION: 0.5, KernelKind.PARALLEL_CHAINS: 0.5},
        ilp=5,
        block_size_mean=36,
        working_set_kb=1536,
        strided_fraction=0.85,
    )
)
_register_fp(
    _fp_profile(
        "191.fma3d",
        seed=755,
        kernel_mix={KernelKind.PARALLEL_CHAINS: 0.5, KernelKind.STREAM: 0.3, KernelKind.BRANCHY: 0.2},
        ilp=3,
        block_size_mean=28,
        branch_fraction=0.1,
        working_set_kb=1024,
    )
)
_register_fp(
    _fp_profile(
        "200.sixtrack",
        seed=760,
        kernel_mix={KernelKind.PARALLEL_CHAINS: 0.6, KernelKind.REDUCTION: 0.4},
        ilp=4,
        block_size_mean=44,
        long_latency_fraction=0.2,
        working_set_kb=192,
        loop_trip_mean=40.0,
    )
)
_register_fp(
    _fp_profile(
        "301.apsi",
        seed=765,
        kernel_mix={KernelKind.STREAM: 0.4, KernelKind.PARALLEL_CHAINS: 0.4, KernelKind.REDUCTION: 0.2},
        ilp=4,
        working_set_kb=896,
        strided_fraction=0.7,
    )
)


# ---------------------------------------------------------------------------
# Lookup helpers
# ---------------------------------------------------------------------------

ALL_TRACES: Dict[str, BenchmarkProfile] = {**SPEC_INT_TRACES, **SPEC_FP_TRACES}


def all_trace_names(suite: str = "all") -> List[str]:
    """Names of the traces in ``suite`` (``"int"``, ``"fp"`` or ``"all"``)."""
    if suite == "int":
        return list(SPEC_INT_TRACES)
    if suite == "fp":
        return list(SPEC_FP_TRACES)
    if suite == "all":
        return list(ALL_TRACES)
    raise ValueError(f"unknown suite {suite!r}; expected 'int', 'fp' or 'all'")


def profile_for(name: str) -> BenchmarkProfile:
    """Return the profile of trace ``name`` (raises ``KeyError`` if unknown)."""
    return ALL_TRACES[name]
