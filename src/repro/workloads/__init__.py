"""Synthetic SPEC CPU2000-like workload substrate.

The paper evaluates on SPEC CPU2000 traces compiled with Intel's production
compiler and sampled with PinPoints.  Neither the binaries, the traces nor
the compiler are available, so this package provides the closest synthetic
equivalent that exercises the same code paths:

* :mod:`repro.workloads.kernels` -- building-block instruction patterns
  (serial chains, parallel chains, reductions, streaming loops, branchy
  integer code) with distinct DDG shapes.
* :mod:`repro.workloads.generator` -- a parametric program generator that
  composes kernels into basic blocks, loops and a CFG according to a
  :class:`~repro.workloads.generator.BenchmarkProfile`.
* :mod:`repro.workloads.spec2000` -- one profile per SPEC CPU2000 trace used
  in Figures 5-7 (26 integer traces, 14 floating-point traces).
* :mod:`repro.workloads.pinpoints` -- PinPoints-style weighted simulation
  points (phases) per benchmark.

The substitution is documented in DESIGN.md: the steering comparison depends
on DDG shape (chain length, ILP, criticality spread) and memory behaviour,
which the profiles control explicitly.
"""

from repro.workloads.generator import BenchmarkProfile, WorkloadGenerator, generate_program
from repro.workloads.kernels import (
    KernelKind,
    branchy_kernel,
    parallel_chains_kernel,
    reduction_kernel,
    serial_chain_kernel,
    stream_kernel,
)
from repro.workloads.pinpoints import SimulationPoint, select_simulation_points, weighted_average
from repro.workloads.spec2000 import (
    SPEC_INT_TRACES,
    SPEC_FP_TRACES,
    all_trace_names,
    profile_for,
)

__all__ = [
    "BenchmarkProfile",
    "WorkloadGenerator",
    "generate_program",
    "KernelKind",
    "serial_chain_kernel",
    "parallel_chains_kernel",
    "reduction_kernel",
    "stream_kernel",
    "branchy_kernel",
    "SimulationPoint",
    "select_simulation_points",
    "weighted_average",
    "SPEC_INT_TRACES",
    "SPEC_FP_TRACES",
    "all_trace_names",
    "profile_for",
]
