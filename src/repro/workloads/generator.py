"""Parametric synthetic benchmark generator.

A :class:`BenchmarkProfile` captures the program characteristics that matter
for instruction steering -- the mix of DDG shapes (kernels), the amount of
instruction-level parallelism, the memory and floating-point intensity, the
control-flow behaviour and the working-set size.  :class:`WorkloadGenerator`
turns a profile (and a phase index) into a static
:class:`~repro.program.program.Program` plus a dynamic µop trace.

Phases model PinPoints simulation points: each phase uses a different seed
and a slightly different working set / kernel emphasis, so the weighted
averaging performed by the harness (as in the paper) is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.program.basic_block import BasicBlock
from repro.program.cfg import ControlFlowGraph
from repro.program.program import Program
from repro.program.trace import AddressModel, TraceGenerator
from repro.uops.compiled import CompiledTrace
from repro.uops.opcodes import UopClass
from repro.uops.registers import RegisterSpace
from repro.uops.uop import DynamicUop, StaticInstruction
from repro.workloads.kernels import (
    KERNEL_FUNCTIONS,
    KernelKind,
    RegisterPool,
)


@dataclass(frozen=True)
class BenchmarkProfile:
    """Parameters of one synthetic benchmark trace.

    Parameters
    ----------
    name:
        Trace name (``"164.gzip-1"`` style names are used by the SPEC set).
    suite:
        ``"int"`` or ``"fp"``; determines which average the harness folds the
        benchmark into.
    kernel_mix:
        Relative weight of each :class:`~repro.workloads.kernels.KernelKind`
        when choosing the kernel of a basic block.
    ilp:
        Number of independent chains per parallel-chains block; the main knob
        controlling how much parallelism a steering scheme can exploit.
    block_size_mean:
        Mean number of instructions per basic block (before the terminator).
    num_blocks:
        Number of basic blocks in the synthetic program.
    loop_fraction:
        Fraction of blocks that are self-loop bodies.
    loop_trip_mean:
        Expected trip count of those loops.
    skip_fraction:
        Fraction of non-loop blocks with a two-way branch (fall-through or
        skip one block ahead).
    load_fraction / store_fraction / branch_fraction:
        Instruction-mix knobs passed to the kernels.
    long_latency_fraction:
        Fraction of arithmetic operations drawn from long-latency classes.
    cross_chain_fraction:
        Probability of a cross-chain dependence inside parallel-chains blocks.
    working_set_kb:
        Memory footprint of the trace; larger than L1/L2 produces misses.
    strided_fraction:
        Fraction of memory instructions with strided (high-locality) streams.
    mispredict_rate:
        Per-branch misprediction probability used by the trace expander.
    num_phases:
        Number of PinPoints-style simulation points (up to 10, as in the
        paper).
    phase_memory_scale:
        Relative working-set growth per phase (phases differ in memory
        behaviour).
    base_seed:
        Seed from which all per-phase seeds are derived.
    """

    name: str
    suite: str = "int"
    kernel_mix: Dict[KernelKind, float] = field(
        default_factory=lambda: {KernelKind.PARALLEL_CHAINS: 1.0}
    )
    ilp: int = 3
    block_size_mean: int = 24
    num_blocks: int = 24
    loop_fraction: float = 0.3
    loop_trip_mean: float = 12.0
    skip_fraction: float = 0.25
    load_fraction: float = 0.25
    store_fraction: float = 0.10
    branch_fraction: float = 0.15
    long_latency_fraction: float = 0.10
    cross_chain_fraction: float = 0.10
    working_set_kb: int = 256
    strided_fraction: float = 0.6
    mispredict_rate: float = 0.03
    num_phases: int = 3
    phase_memory_scale: float = 0.5
    base_seed: int = 1

    def __post_init__(self) -> None:
        if self.suite not in ("int", "fp"):
            raise ValueError(f"suite must be 'int' or 'fp', got {self.suite!r}")
        if self.ilp < 1:
            raise ValueError("ilp must be at least 1")
        if self.num_blocks < 2:
            raise ValueError("num_blocks must be at least 2")
        if not self.kernel_mix:
            raise ValueError("kernel_mix must not be empty")
        if self.num_phases < 1:
            raise ValueError("num_phases must be at least 1")

    @property
    def is_fp(self) -> bool:
        """True for floating-point benchmarks."""
        return self.suite == "fp"

    def with_overrides(self, **kwargs) -> "BenchmarkProfile":
        """Return a copy of the profile with the given fields replaced."""
        return replace(self, **kwargs)


class WorkloadGenerator:
    """Generate static programs and dynamic traces from a benchmark profile."""

    #: Number of disjoint register windows blocks rotate through; values
    #: produced in one block are therefore occasionally consumed a few blocks
    #: later, creating realistic cross-block (region-level) dependences.
    NUM_REGISTER_WINDOWS = 4
    #: Registers reserved as always-live "global" values (stack pointer,
    #: loop bounds, base addresses).
    NUM_LIVE_IN_REGISTERS = 8

    def __init__(self, profile: BenchmarkProfile, register_space: Optional[RegisterSpace] = None):
        self.profile = profile
        self.register_space = register_space or RegisterSpace()

    # -- seeds -------------------------------------------------------------------
    def phase_seed(self, phase: int) -> int:
        """Deterministic seed of the given phase."""
        name_hash = sum(ord(c) * (i + 1) for i, c in enumerate(self.profile.name)) % 100003
        return (self.profile.base_seed * 7919 + phase * 104729 + name_hash) % (2**31 - 1)

    # -- register windows --------------------------------------------------------
    def _pool_for_block(self, block_index: int) -> RegisterPool:
        space = self.register_space
        live_ins = list(range(self.NUM_LIVE_IN_REGISTERS))
        usable_int = space.num_int - self.NUM_LIVE_IN_REGISTERS
        window_size = max(4, usable_int // self.NUM_REGISTER_WINDOWS)
        window_index = block_index % self.NUM_REGISTER_WINDOWS
        start = self.NUM_LIVE_IN_REGISTERS + window_index * window_size
        int_window = [start + i for i in range(window_size) if start + i < space.num_int]
        fp_window_size = max(4, space.num_fp // self.NUM_REGISTER_WINDOWS)
        fp_start = space.num_int + window_index * fp_window_size
        fp_window = [fp_start + i for i in range(fp_window_size) if fp_start + i < space.total]
        return RegisterPool(space, int_window, fp_window, live_ins)

    # -- kernel selection --------------------------------------------------------
    def _pick_kernel(self, rng: np.random.Generator) -> KernelKind:
        kinds = list(self.profile.kernel_mix.keys())
        weights = np.array([self.profile.kernel_mix[k] for k in kinds], dtype=float)
        weights = weights / weights.sum()
        return kinds[int(rng.choice(len(kinds), p=weights))]

    def _emit_kernel(
        self, kind: KernelKind, rng: np.random.Generator, size: int, pool: RegisterPool
    ) -> List[Tuple[UopClass, Tuple[int, ...], Tuple[int, ...]]]:
        profile = self.profile
        fp = profile.is_fp
        if kind == KernelKind.SERIAL_CHAIN:
            return KERNEL_FUNCTIONS[kind](
                rng, size, pool, fp=fp,
                load_fraction=profile.load_fraction,
                long_latency_fraction=profile.long_latency_fraction,
            )
        if kind == KernelKind.PARALLEL_CHAINS:
            return KERNEL_FUNCTIONS[kind](
                rng, size, pool,
                num_chains=profile.ilp, fp=fp,
                load_fraction=profile.load_fraction,
                store_fraction=profile.store_fraction,
                cross_chain_fraction=profile.cross_chain_fraction,
                long_latency_fraction=profile.long_latency_fraction,
            )
        if kind == KernelKind.REDUCTION:
            return KERNEL_FUNCTIONS[kind](
                rng, size, pool, fp=fp, load_fraction=profile.load_fraction
            )
        if kind == KernelKind.STREAM:
            return KERNEL_FUNCTIONS[kind](
                rng, size, pool, fp=fp,
                long_latency_fraction=profile.long_latency_fraction,
            )
        if kind == KernelKind.BRANCHY:
            return KERNEL_FUNCTIONS[kind](
                rng, size, pool,
                load_fraction=profile.load_fraction,
                branch_fraction=profile.branch_fraction,
            )
        raise ValueError(f"unknown kernel kind {kind}")

    # -- program construction ----------------------------------------------------
    def generate_program(self, phase: int = 0) -> Program:
        """Build the static program for simulation point ``phase``."""
        profile = self.profile
        rng = np.random.default_rng(self.phase_seed(phase))
        blocks: List[BasicBlock] = []
        cfg = ControlFlowGraph(entry=0)
        next_sid = 0
        num_blocks = profile.num_blocks
        for bid in range(num_blocks):
            pool = self._pool_for_block(bid)
            kind = self._pick_kernel(rng)
            size = max(3, int(rng.normal(profile.block_size_mean, profile.block_size_mean * 0.25)))
            specs = self._emit_kernel(kind, rng, size, pool)
            block = BasicBlock(bid, name=f"{kind.value}_{bid}")
            for opclass, dests, srcs in specs:
                block.append(StaticInstruction(next_sid, opclass, dests, srcs, block=bid))
                next_sid += 1
            # Every block ends with a branch reading the last produced value
            # (or a live-in when the kernel produced only stores).
            last_value = None
            for inst in reversed(block.instructions):
                if inst.dests:
                    last_value = inst.dests[0]
                    break
            if last_value is None:
                last_value = 0
            block.append(StaticInstruction(next_sid, UopClass.BRANCH, (), (last_value,), block=bid))
            next_sid += 1
            blocks.append(block)

        # Control flow: a ring of blocks with optional self-loops and skip
        # edges; the last block always wraps around to the entry.
        for bid in range(num_blocks):
            succ = (bid + 1) % num_blocks
            if rng.random() < profile.loop_fraction:
                trips = max(2.0, rng.normal(profile.loop_trip_mean, profile.loop_trip_mean * 0.3))
                p_back = 1.0 - 1.0 / trips
                cfg.add_edge(bid, bid, probability=p_back, is_back_edge=True)
                cfg.add_edge(bid, succ, probability=1.0 - p_back)
                cfg.set_loop_trip_count(bid, trips)
            elif rng.random() < profile.skip_fraction and bid + 2 < num_blocks:
                cfg.add_edge(bid, succ, probability=0.7)
                cfg.add_edge(bid, bid + 2, probability=0.3)
            else:
                cfg.add_edge(bid, succ, probability=1.0)

        program = Program(
            name=f"{profile.name}.p{phase}",
            blocks=blocks,
            cfg=cfg,
            register_space=self.register_space,
        )
        program.validate()
        return program

    # -- trace construction ------------------------------------------------------
    def address_model(self, phase: int = 0) -> AddressModel:
        """Address model of the given phase (working set grows with the phase)."""
        profile = self.profile
        scale = 1.0 + phase * profile.phase_memory_scale
        return AddressModel(
            working_set_bytes=int(profile.working_set_kb * 1024 * scale),
            strided_fraction=profile.strided_fraction,
        )

    def _trace_generator(self, phase: int, program: Program) -> TraceGenerator:
        """The seeded expander both trace forms share for ``phase``."""
        return TraceGenerator(
            program,
            seed=self.phase_seed(phase) ^ 0x5BD1E995,
            address_model=self.address_model(phase),
            mispredict_rate=self.profile.mispredict_rate,
        )

    def generate_trace(
        self, num_uops: int, phase: int = 0, program: Optional[Program] = None
    ) -> Tuple[Program, List[DynamicUop]]:
        """Build (or reuse) the phase program and expand a dynamic trace from it.

        Returns the program (so callers can run compiler passes on it before
        or after expanding the trace -- annotations are shared by reference)
        and the list of dynamic µops.
        """
        if program is None:
            program = self.generate_program(phase)
        return program, self._trace_generator(phase, program).generate(num_uops)

    def generate_compiled_trace(
        self, num_uops: int, phase: int = 0, program: Optional[Program] = None
    ) -> Tuple[Program, CompiledTrace]:
        """Build (or reuse) the phase program and expand a *compiled* trace.

        Bit-identical stream to :meth:`generate_trace` (same seed and walk),
        emitted directly in the simulator's structure-of-arrays form.  The
        compiled trace snapshots the program's current annotations; after
        running a compiler pass, refresh them with
        :meth:`~repro.uops.compiled.CompiledTrace.annotate_from`.
        """
        if program is None:
            program = self.generate_program(phase)
        return program, self._trace_generator(phase, program).generate_compiled(num_uops)


def generate_program(profile: BenchmarkProfile, phase: int = 0) -> Program:
    """Convenience wrapper: build the static program of ``profile`` at ``phase``."""
    return WorkloadGenerator(profile).generate_program(phase)
