"""Diff a fresh engine-benchmark run against the committed snapshot.

Usage::

    PYTHONPATH=src python scripts/check_bench_regression.py            # runs pytest itself
    PYTHONPATH=src python scripts/check_bench_regression.py --fresh fresh.json
    PYTHONPATH=src python scripts/check_bench_regression.py --strict   # warnings -> exit 1

Compares per-benchmark throughput (1 / mean wall-clock) of a fresh
``benchmarks/test_engine_sweep.py`` run against the committed reference
snapshot ``benchmarks/BENCH_engine.json`` and **warns** on any benchmark
whose throughput regressed by more than the threshold (default 30 %).  It
also recomputes the batching headline -- the wall-clock speedup of the
batched parallel sweep over per-job parallel scheduling -- and warns if it
fell below the 1.5x the snapshot records.

Warnings do not fail the run by default (benchmark machines vary); pass
``--strict`` to turn them into a non-zero exit for gating jobs.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SNAPSHOT_PATH = REPO_ROOT / "benchmarks" / "BENCH_engine.json"
BENCH_FILE = REPO_ROOT / "benchmarks" / "test_engine_sweep.py"

#: The benchmark pair whose wall-clock ratio is the batching headline.
SPEEDUP_BASELINE = "test_sweep_per_job_parallel"
SPEEDUP_SUBJECT = "test_sweep_batched_parallel"
MIN_SPEEDUP = 1.5


def load_means(path: Path) -> dict:
    """``{benchmark name: mean seconds}`` from a pytest-benchmark JSON file."""
    data = json.loads(path.read_text(encoding="utf-8"))
    return {entry["name"]: float(entry["stats"]["mean"]) for entry in data["benchmarks"]}


def run_fresh(output: Path) -> None:
    """Produce a fresh benchmark JSON by running the sweep benchmarks."""
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_FILE),
        "--benchmark-only",
        f"--benchmark-json={output}",
        "-q",
    ]
    print("+ " + " ".join(command), flush=True)
    subprocess.run(command, check=True, cwd=REPO_ROOT)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--snapshot",
        type=Path,
        default=SNAPSHOT_PATH,
        help="committed reference snapshot (default benchmarks/BENCH_engine.json)",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        default=None,
        help="fresh benchmark JSON to compare; omitted = run the benchmarks now",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=30.0,
        help="warn when throughput regressed by more than this percentage (default 30)",
    )
    parser.add_argument(
        "--strict", action="store_true", help="exit non-zero if any warning fired"
    )
    args = parser.parse_args(argv)

    snapshot = load_means(args.snapshot)
    if args.fresh is not None:
        fresh = load_means(args.fresh)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            fresh_path = Path(tmp) / "fresh.json"
            run_fresh(fresh_path)
            fresh = load_means(fresh_path)

    warnings = 0
    print(f"{'benchmark':<32} {'snapshot':>10} {'fresh':>10} {'throughput':>11}")
    for name in sorted(snapshot):
        if name not in fresh:
            print(f"{name:<32} missing from the fresh run")
            warnings += 1
            continue
        snap_mean, fresh_mean = snapshot[name], fresh[name]
        # Throughput ratio: >1 means faster than the snapshot.
        ratio = snap_mean / fresh_mean if fresh_mean > 0 else float("inf")
        print(f"{name:<32} {snap_mean*1e3:>8.1f}ms {fresh_mean*1e3:>8.1f}ms {ratio:>10.2f}x")
        regression = (1.0 - ratio) * 100.0
        if regression > args.threshold:
            print(
                f"WARNING: {name} throughput regressed {regression:.0f}% "
                f"(>{args.threshold:.0f}% threshold) vs the committed snapshot"
            )
            warnings += 1
    for name in sorted(set(fresh) - set(snapshot)):
        print(f"note: {name} has no snapshot entry (new benchmark?)")

    if SPEEDUP_BASELINE in fresh and SPEEDUP_SUBJECT in fresh:
        speedup = fresh[SPEEDUP_BASELINE] / fresh[SPEEDUP_SUBJECT]
        print(f"\nbatched sweep speedup vs per-job scheduling: {speedup:.2f}x")
        if speedup < MIN_SPEEDUP:
            print(
                f"WARNING: batched sweep speedup {speedup:.2f}x fell below the "
                f"{MIN_SPEEDUP:.1f}x recorded in the reference snapshot"
            )
            warnings += 1

    if warnings:
        print(f"\n{warnings} warning(s).")
        return 1 if args.strict else 0
    print("\nno regressions beyond threshold.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
