"""Diff fresh benchmark runs against the committed snapshots.

Usage::

    PYTHONPATH=src python scripts/check_bench_regression.py            # runs pytest itself
    PYTHONPATH=src python scripts/check_bench_regression.py --fresh fresh.json
    PYTHONPATH=src python scripts/check_bench_regression.py \
        --fresh eng.json --substrate-fresh sub.json
    PYTHONPATH=src python scripts/check_bench_regression.py --strict   # warnings -> exit 1

Compares per-benchmark throughput (1 / mean wall-clock) of a fresh
``benchmarks/test_engine_sweep.py`` run against the committed reference
snapshot ``benchmarks/BENCH_engine.json`` -- and, when a substrate JSON is
supplied (``--substrate-fresh``), of a ``benchmarks/test_simulator_
throughput.py`` run against ``benchmarks/BENCH_substrate.json`` -- and
**warns** on any benchmark whose throughput regressed by more than the
threshold (default 30 %).  It also recomputes the headlines and warns when
any falls below its floor:

* **batching** -- the wall-clock speedup of the batched parallel sweep over
  per-job parallel scheduling (floor 1.5x, the PR 4 number),
* **shared memory** -- the speedup of the shared-memory multi-trace sweep
  over the pickle-path multi-trace sweep (floor 0.85x: the substrate must at
  least match the PR 4 batched path; the sub-1.0 floor only absorbs
  single-core CI noise, the committed snapshot itself records >=1.0x), and
* **kernel speedup** (substrate suite) -- the vectorized two-tier kernel
  versus the interpreter kernel on the same compiled trace, under the OP
  and VC policies (floor 1.5x; the committed snapshot records >=2x),
* **fused steering** (substrate suite) -- the compiled steering tier (the
  fused dispatch fast path) versus the per-µop callback path on the same
  kernel, under OP and VC (floor 1.05x; the committed snapshot records
  ~1.1-1.2x -- the fast path removes Python frames from dispatch only, so
  the honest headline is modest), and
* **jit speedup** (substrate suite) -- the numba-jitted inner loop versus
  the callback path (floor 2.0x).  The ``*_jit`` benchmarks only run where
  numba is installed; without it the headline is skipped with a note, never
  silently passed off as measured,
* **adaptive savings** -- the planned-vs-executed simulation-run ratio the
  adaptive race scheduler records in ``test_race_adaptive``'s ``extra_info``
  (floor 3.0x; the committed snapshot records 5.0x).  A *count* ratio, not a
  wall-clock one, so machine speed cannot move it -- only a changed stopping
  decision can, and
* **adaptivity-off overhead** -- the wall-clock ratio of the hand-rolled
  exhaustive grid over the adaptive machinery running the identical grid
  with its stopping rule disabled (floor 0.9x to absorb CI noise; the
  committed snapshot records >=1.0x).

Name drift between a snapshot and the fresh run is reported both ways: a
snapshot benchmark missing from the fresh run always warns, and when names
are *also* new on the fresh side the script warns about a possible rename
-- a renamed benchmark would otherwise silently stop being checked.

Warnings do not fail the run by default (benchmark machines vary); pass
``--strict`` to turn them into a non-zero exit for gating jobs.

**Schema errors always fail** (exit 2), strict or not: a bench JSON that is
missing its ``benchmarks`` list, an entry's name or a usable positive
``stats.mean`` is broken tooling, not machine variance, and silently
"passing" on it would make every later comparison meaningless.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SNAPSHOT_PATH = REPO_ROOT / "benchmarks" / "BENCH_engine.json"
BENCH_FILE = REPO_ROOT / "benchmarks" / "test_engine_sweep.py"
ADAPTIVE_BENCH_FILE = REPO_ROOT / "benchmarks" / "test_engine_adaptive.py"
SUBSTRATE_SNAPSHOT_PATH = REPO_ROOT / "benchmarks" / "BENCH_substrate.json"

#: The benchmark pair whose wall-clock ratio is the batching headline.
SPEEDUP_BASELINE = "test_sweep_per_job_parallel"
SPEEDUP_SUBJECT = "test_sweep_batched_parallel"
MIN_SPEEDUP = 1.5

#: The pair whose ratio is the shared-memory substrate headline.
SHM_BASELINE = "test_multi_trace_sweep_pickle"
SHM_SUBJECT = "test_multi_trace_sweep_shm"
MIN_SHM_SPEEDUP = 0.85

#: Substrate pairs whose ratios are the vectorized-kernel speedup headlines.
KERNEL_OP_BASELINE = "test_simulator_throughput_op_interpreter"
KERNEL_OP_SUBJECT = "test_simulator_throughput_op"
KERNEL_VC_BASELINE = "test_simulator_throughput_vc_interpreter"
KERNEL_VC_SUBJECT = "test_simulator_throughput_vc"
MIN_KERNEL_SPEEDUP = 1.5

#: Substrate pairs whose ratios are the compiled-steering-tier headlines.
#: The default benchmarks run the fused fast path; the ``_callback`` twins
#: pin ``fused_steering=False`` on the same kernel and trace.
FUSED_OP_BASELINE = "test_simulator_throughput_op_callback"
FUSED_OP_SUBJECT = "test_simulator_throughput_op"
FUSED_VC_BASELINE = "test_simulator_throughput_vc_callback"
FUSED_VC_SUBJECT = "test_simulator_throughput_vc"
MIN_FUSED_SPEEDUP = 1.05

#: The jitted-inner-loop headline; the subject only exists on numba-enabled
#: runners (``check_headline`` skips with a note when it is absent).
JIT_OP_BASELINE = "test_simulator_throughput_op_callback"
JIT_OP_SUBJECT = "test_simulator_throughput_op_jit"
JIT_VC_BASELINE = "test_simulator_throughput_vc_callback"
JIT_VC_SUBJECT = "test_simulator_throughput_vc_jit"
MIN_JIT_SPEEDUP = 2.0

#: The adaptive-savings headline: planned vs executed simulation runs of the
#: racing campaign, read from the benchmark's recorded extra_info counts.
ADAPTIVE_BENCH = "test_race_adaptive"
MIN_ADAPTIVE_SAVINGS = 3.0

#: The adaptivity-off no-regression pair: the adaptive machinery with its
#: stopping rule disabled must not cost wall-clock over the hand-rolled
#: exhaustive grid it replaces.
ADAPTIVE_OFF_BASELINE = "test_replicated_manual_grid"
ADAPTIVE_OFF_SUBJECT = "test_replicated_exhaustive_scheduler"
MIN_ADAPTIVE_OFF_SPEEDUP = 0.9

#: Exit code for a structurally broken bench JSON (fails CI unconditionally).
SCHEMA_ERROR_EXIT = 2


class SchemaError(ValueError):
    """A bench JSON file that cannot be meaningfully compared."""


def load_means(path: Path) -> dict:
    """``{benchmark name: mean seconds}`` from a pytest-benchmark JSON file.

    Validates the parts of the pytest-benchmark schema this script consumes
    and raises :class:`SchemaError` (with the offending file and field) on
    anything unusable -- truncated files, missing lists, entries without a
    name or a positive ``stats.mean``.
    """
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise SchemaError(f"{path}: cannot read bench JSON ({exc})") from exc
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(data, dict) or "benchmarks" not in data:
        raise SchemaError(f"{path}: missing the top-level 'benchmarks' list")
    entries = data["benchmarks"]
    if not isinstance(entries, list) or not entries:
        raise SchemaError(f"{path}: 'benchmarks' must be a non-empty list")
    means = {}
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            raise SchemaError(f"{path}: benchmarks[{position}] has no usable 'name'")
        name = entry["name"]
        stats = entry.get("stats")
        if not isinstance(stats, dict) or "mean" not in stats:
            raise SchemaError(f"{path}: {name} has no 'stats.mean'")
        try:
            mean = float(stats["mean"])
        except (TypeError, ValueError):
            raise SchemaError(f"{path}: {name} stats.mean {stats['mean']!r} is not a number")
        if not mean > 0:
            raise SchemaError(f"{path}: {name} stats.mean must be positive, got {mean!r}")
        means[name] = mean
    return means


def load_extra_info(path: Path) -> dict:
    """``{benchmark name: extra_info dict}`` from a pytest-benchmark JSON file.

    Tolerant where :func:`load_means` is strict: ``extra_info`` is optional
    per benchmark (older snapshots predate it), so entries without one simply
    map to ``{}``.  Structural problems -- unreadable file, missing list,
    nameless entries -- still raise :class:`SchemaError`.
    """
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise SchemaError(f"{path}: cannot read bench JSON ({exc})") from exc
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(data, dict) or not isinstance(data.get("benchmarks"), list):
        raise SchemaError(f"{path}: missing the top-level 'benchmarks' list")
    info = {}
    for position, entry in enumerate(data["benchmarks"]):
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            raise SchemaError(f"{path}: benchmarks[{position}] has no usable 'name'")
        extra = entry.get("extra_info")
        info[entry["name"]] = extra if isinstance(extra, dict) else {}
    return info


def run_fresh(output: Path) -> None:
    """Produce a fresh benchmark JSON by running the engine benchmarks."""
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_FILE),
        str(ADAPTIVE_BENCH_FILE),
        "--benchmark-only",
        f"--benchmark-json={output}",
        "-q",
    ]
    print("+ " + " ".join(command), flush=True)
    subprocess.run(command, check=True, cwd=REPO_ROOT)


def compare_means(snapshot: dict, fresh: dict, threshold: float) -> int:
    """Print the snapshot-vs-fresh table for one suite; return the warning count."""
    warnings = 0
    print(f"{'benchmark':<42} {'snapshot':>10} {'fresh':>10} {'throughput':>11}")
    for name in sorted(snapshot):
        if name not in fresh:
            print(f"{name:<42} missing from the fresh run")
            warnings += 1
            continue
        snap_mean, fresh_mean = snapshot[name], fresh[name]
        # Throughput ratio: >1 means faster than the snapshot.
        ratio = snap_mean / fresh_mean
        print(f"{name:<42} {snap_mean*1e3:>8.1f}ms {fresh_mean*1e3:>8.1f}ms {ratio:>10.2f}x")
        regression = (1.0 - ratio) * 100.0
        if regression > threshold:
            print(
                f"WARNING: {name} throughput regressed {regression:.0f}% "
                f"(>{threshold:.0f}% threshold) vs the committed snapshot"
            )
            warnings += 1
    missing = sorted(set(snapshot) - set(fresh))
    extra = sorted(set(fresh) - set(snapshot))
    for name in extra:
        print(f"note: {name} has no snapshot entry (new benchmark?)")
    if missing and extra:
        # A rename shows up as one name vanishing while another appears; the
        # vanished one would silently stop being regression-checked.
        print(
            "WARNING: benchmark names drifted between the snapshot and the "
            f"fresh run (missing: {', '.join(missing)}; new: {', '.join(extra)}) "
            "-- renamed benchmarks need the snapshot regenerated or they go "
            "unchecked"
        )
        warnings += 1
    return warnings


def check_headline(fresh: dict, baseline: str, subject: str, floor: float, label: str) -> int:
    """Print one headline ratio; return 1 if it warned, else 0."""
    if baseline not in fresh or subject not in fresh:
        print(f"note: {label} headline skipped ({baseline}/{subject} not both present)")
        return 0
    speedup = fresh[baseline] / fresh[subject]
    print(f"{label} speedup: {speedup:.2f}x (floor {floor:.2f}x)")
    if speedup < floor:
        print(
            f"WARNING: {label} speedup {speedup:.2f}x fell below the "
            f"{floor:.2f}x floor of the reference snapshot"
        )
        return 1
    return 0


def check_adaptive_savings(extra_info: dict) -> int:
    """Print the planned-vs-executed run-count headline; return 1 on warning.

    Unlike the wall-clock headlines this is a pure count ratio read from
    ``test_race_adaptive``'s recorded ``extra_info`` -- machine speed cannot
    move it, only a changed stopping decision can.  A racing benchmark that
    ran without recording its counts is broken tooling, so that raises
    :class:`SchemaError` rather than skipping.
    """
    if ADAPTIVE_BENCH not in extra_info:
        print(f"note: adaptive-savings headline skipped ({ADAPTIVE_BENCH} not present)")
        return 0
    counts = extra_info[ADAPTIVE_BENCH]
    try:
        planned = int(counts["planned_runs"])
        executed = int(counts["executed_runs"])
    except (KeyError, TypeError, ValueError):
        raise SchemaError(
            f"{ADAPTIVE_BENCH} ran without usable planned_runs/executed_runs "
            f"extra_info (got {counts!r})"
        )
    if executed <= 0 or planned < executed:
        raise SchemaError(
            f"{ADAPTIVE_BENCH} recorded impossible run counts: "
            f"planned={planned}, executed={executed}"
        )
    savings = planned / executed
    print(
        f"adaptive-savings run ratio: {savings:.2f}x "
        f"({planned} planned / {executed} executed, floor {MIN_ADAPTIVE_SAVINGS:.2f}x)"
    )
    if savings < MIN_ADAPTIVE_SAVINGS:
        print(
            f"WARNING: adaptive savings {savings:.2f}x fell below the "
            f"{MIN_ADAPTIVE_SAVINGS:.2f}x floor -- the racing scheduler is "
            "executing more of the grid than the reference stopping decisions"
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--snapshot",
        type=Path,
        default=SNAPSHOT_PATH,
        help="committed reference snapshot (default benchmarks/BENCH_engine.json)",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        default=None,
        help="fresh benchmark JSON to compare; omitted = run the benchmarks now",
    )
    parser.add_argument(
        "--substrate-fresh",
        type=Path,
        default=None,
        help=(
            "fresh substrate benchmark JSON (test_simulator_throughput.py run) to "
            "diff against benchmarks/BENCH_substrate.json; omitted = substrate "
            "suite not checked"
        ),
    )
    parser.add_argument(
        "--substrate-snapshot",
        type=Path,
        default=SUBSTRATE_SNAPSHOT_PATH,
        help="committed substrate snapshot (default benchmarks/BENCH_substrate.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=30.0,
        help="warn when throughput regressed by more than this percentage (default 30)",
    )
    parser.add_argument(
        "--strict", action="store_true", help="exit non-zero if any warning fired"
    )
    args = parser.parse_args(argv)

    try:
        snapshot = load_means(args.snapshot)
        if args.fresh is not None:
            fresh = load_means(args.fresh)
            fresh_extra = load_extra_info(args.fresh)
        else:
            with tempfile.TemporaryDirectory() as tmp:
                fresh_path = Path(tmp) / "fresh.json"
                run_fresh(fresh_path)
                fresh = load_means(fresh_path)
                fresh_extra = load_extra_info(fresh_path)
        substrate_snapshot = substrate_fresh = None
        if args.substrate_fresh is not None:
            substrate_snapshot = load_means(args.substrate_snapshot)
            substrate_fresh = load_means(args.substrate_fresh)
    except SchemaError as exc:
        # Broken tooling, not machine variance: fail regardless of --strict.
        print(f"SCHEMA ERROR: {exc}")
        return SCHEMA_ERROR_EXIT

    warnings = compare_means(snapshot, fresh, args.threshold)
    print()
    warnings += check_headline(
        fresh, SPEEDUP_BASELINE, SPEEDUP_SUBJECT, MIN_SPEEDUP, "batched-vs-per-job"
    )
    warnings += check_headline(
        fresh, SHM_BASELINE, SHM_SUBJECT, MIN_SHM_SPEEDUP, "shared-memory-vs-pickle"
    )
    warnings += check_headline(
        fresh,
        ADAPTIVE_OFF_BASELINE,
        ADAPTIVE_OFF_SUBJECT,
        MIN_ADAPTIVE_OFF_SPEEDUP,
        "adaptivity-off-overhead",
    )
    try:
        warnings += check_adaptive_savings(fresh_extra)
    except SchemaError as exc:
        print(f"SCHEMA ERROR: {exc}")
        return SCHEMA_ERROR_EXIT

    if substrate_fresh is not None:
        print()
        warnings += compare_means(substrate_snapshot, substrate_fresh, args.threshold)
        print()
        warnings += check_headline(
            substrate_fresh,
            KERNEL_OP_BASELINE,
            KERNEL_OP_SUBJECT,
            MIN_KERNEL_SPEEDUP,
            "vectorized-kernel-vs-interpreter (OP)",
        )
        warnings += check_headline(
            substrate_fresh,
            KERNEL_VC_BASELINE,
            KERNEL_VC_SUBJECT,
            MIN_KERNEL_SPEEDUP,
            "vectorized-kernel-vs-interpreter (VC)",
        )
        warnings += check_headline(
            substrate_fresh,
            FUSED_OP_BASELINE,
            FUSED_OP_SUBJECT,
            MIN_FUSED_SPEEDUP,
            "fused-steering-vs-callback (OP)",
        )
        warnings += check_headline(
            substrate_fresh,
            FUSED_VC_BASELINE,
            FUSED_VC_SUBJECT,
            MIN_FUSED_SPEEDUP,
            "fused-steering-vs-callback (VC)",
        )
        warnings += check_headline(
            substrate_fresh,
            JIT_OP_BASELINE,
            JIT_OP_SUBJECT,
            MIN_JIT_SPEEDUP,
            "jit-loop-vs-callback (OP)",
        )
        warnings += check_headline(
            substrate_fresh,
            JIT_VC_BASELINE,
            JIT_VC_SUBJECT,
            MIN_JIT_SPEEDUP,
            "jit-loop-vs-callback (VC)",
        )

    if warnings:
        print(f"\n{warnings} warning(s).")
        return 1 if args.strict else 0
    print("\nno regressions beyond threshold.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
