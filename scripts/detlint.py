#!/usr/bin/env python
"""Run the determinism lint from a checkout without installing the package.

Compatibility shim over the detlint pass only -- equivalent to
``PYTHONPATH=src python -m repro.analysis --pass detlint``.  The multi-pass
front end (detlint + parlint + lifelint) is ``python -m repro.analysis``;
see ``python scripts/detlint.py --list-rules`` for the detlint rule
catalogue and DESIGN.md §7 for the framework behind it.
"""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.analysis.detlint import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
